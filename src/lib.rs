//! Umbrella crate of the PolyUFC reproduction: re-exports the whole stack
//! and hosts the integration tests (`tests/`) and examples (`examples/`).
//!
//! The typical end-to-end use:
//!
//! ```
//! use polyufc::Pipeline;
//! use polyufc_machine::Platform;
//! use polyufc_workloads::polybench;
//!
//! // Calibrate rooflines for a platform and compile a kernel.
//! let pipeline = Pipeline::new(Platform::broadwell());
//! let out = pipeline.compile_affine(&polybench::gemm(64)).unwrap();
//! assert_eq!(out.scf.kernel_count(), 2);
//! for cap in &out.caps_ghz {
//!     assert!(*cap >= 1.2 && *cap <= 2.8);
//! }
//! ```
//!
//! Or from C source through the `cgeist` stand-in:
//!
//! ```
//! use polyufc_cgeist::parse_scop;
//!
//! let program = parse_scop(
//!     "double A[8]; #pragma scop\n\
//!      for (int i = 0; i < 8; i++) A[i] = A[i] * 2.0;\n\
//!      #pragma endscop",
//!     "scale",
//! ).unwrap();
//! assert_eq!(program.kernels.len(), 1);
//! ```

pub use polyufc as core;
pub use polyufc_cache as cache;
pub use polyufc_cgeist as cgeist;
pub use polyufc_ir as ir;
pub use polyufc_machine as machine;
pub use polyufc_pluto as pluto;
pub use polyufc_presburger as presburger;
pub use polyufc_roofline as roofline;
pub use polyufc_workloads as workloads;
