//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors a
//! tiny deterministic RNG exposing exactly the surface the simulator uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `RngExt::random`.
//! The generator is SplitMix64 — statistically solid for simulated
//! measurement noise and, crucially, **stable forever**, which the real
//! `StdRng` explicitly does not promise across releases.

/// Sources of raw 64-bit randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Typed sampling sugar (`rng.random::<f64>()`), mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// The standard distribution for a type (uniform over the type's natural
/// range; `[0, 1)` for floats).
pub trait Standard {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (Steele, Lea & Flood 2014).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt as _, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = r.random::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn splitmix64_reference_vector() {
        // Reference output for seed 1234567 from the published SplitMix64
        // algorithm; pins the stream so simulated noise never drifts.
        let mut r = StdRng::seed_from_u64(1234567);
        assert_eq!(r.random::<u64>(), 6457827717110365317);
        assert_eq!(r.random::<u64>(), 3203168211198807973);
    }
}
