//! No-op `Serialize`/`Deserialize` derives backing the offline serde stub.
//!
//! Emits empty marker-trait impls for the annotated type. Accepts (and
//! ignores) `#[serde(...)]` helper attributes. Generic types are rejected
//! with a clear error rather than silently miscompiled — none exist in
//! this workspace today.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Ok(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .unwrap(),
        Err(e) => e,
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Ok(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap(),
        Err(e) => e,
    }
}

/// Extracts the name of the struct/enum being derived for, rejecting
/// generic types (the stub cannot reproduce serde's bound inference).
fn type_name(input: TokenStream) -> Result<String, TokenStream> {
    let err = |msg: &str| -> TokenStream { format!("compile_error!({msg:?});").parse().unwrap() };
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(kw) = &tt {
            let kw = kw.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    _ => return Err(err("serde stub: expected a type name")),
                };
                if let Some(TokenTree::Punct(p)) = tokens.next() {
                    if p.as_char() == '<' {
                        return Err(err(
                            "serde stub: generic types are not supported by the offline derive",
                        ));
                    }
                }
                return Ok(name);
            }
        }
    }
    Err(err("serde stub: no struct or enum found in derive input"))
}
