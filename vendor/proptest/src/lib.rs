//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so the workspace vendors a
//! minimal property-testing harness covering the surface this repo uses:
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, numeric range
//! and tuple strategies, `Just`, `any::<T>()`, `prop_oneof!`, `prop_map`,
//! and `collection::vec`.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports its inputs (via the assert
//!   message) but is not minimized.
//! - **Deterministic seeding.** Each test's RNG is seeded from the test
//!   name, so failures reproduce exactly on every run and host.

pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 stream used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG seeded directly from `seed`.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// RNG seeded from a test's name (FNV-1a), so every test gets an
        /// independent but fully reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng::new(h)
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform double in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[lo, hi]` (inclusive), computed in i128 so
        /// any primitive integer range is safe.
        pub fn next_in_range(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo + 1) as u128;
            lo + (self.next_u64() as u128 % span) as i128
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking; a strategy
    /// simply samples from an RNG stream.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of its payload.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weightless union of boxed strategies; each sample picks one
    /// uniformly. Built by the `prop_oneof!` macro.
    pub struct Union<T> {
        /// The alternative strategies to choose between.
        pub options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let ix = rng.next_in_range(0, self.options.len() as i128 - 1) as usize;
            self.options[ix].sample(rng)
        }
    }

    /// Boxes a strategy as a trait object (helper for `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.next_in_range(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.next_in_range(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $ix:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$ix.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Draws an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy over every value of `T` (returned by [`any`]).
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi, "empty size range");
            let len = rng.next_in_range(self.size.lo as i128, self.size.hi as i128 - 1) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and length range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases; `prop_assert*`
/// failures report the case number and message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $parm = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body; ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "property {} failed on case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, msg,
                    );
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside `proptest!`, failing the current case with a
/// formatted message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `prop_assert!` for equality, with Debug output of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), lhs, rhs,
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), lhs, rhs),
            );
        }
    }};
}

/// `prop_assert!` for inequality, with Debug output of both sides.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
            ));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union {
            options: vec![$($crate::strategy::boxed($s)),+],
        }
    };
}
