//! Offline stand-in for the `serde` crate.
//!
//! The build container has no registry access, so the workspace vendors a
//! minimal stub that provides the *names* the codebase relies on —
//! `Serialize`/`Deserialize` marker traits and their derives — without any
//! actual serialization machinery. The repo only uses the derives as
//! forward-looking annotations (nothing serializes yet), so empty trait
//! impls are sufficient and keep the tree building fully offline.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
