//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so the workspace vendors a
//! small harness exposing the `Criterion`/`Bencher` API the benches use.
//! Instead of criterion's statistical machinery it runs a short warm-up,
//! then times a fixed-duration measurement loop and prints mean
//! time-per-iteration — enough to track performance PR-over-PR.

use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to each `criterion_group!` function.
pub struct Criterion {
    measure: Duration,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure: Duration::from_millis(600),
            warmup: Duration::from_millis(150),
        }
    }
}

impl Criterion {
    /// Runs `f` under a [`Bencher`] and prints the mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters as u32
        };
        println!("bench {id:<40} {per_iter:>12.2?}/iter ({} iters)", b.iters);
        self
    }
}

/// Timing loop driver passed to the closure of `bench_function`.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine` until the measurement budget is
    /// spent, keeping each return value alive via a sink read.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run without recording.
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            std::hint::black_box(routine());
        }
        // Measurement.
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measure {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// Declares a benchmark group: a runner function invoking each benchmark
/// with a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
