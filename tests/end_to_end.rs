//! Integration tests: the whole flow, from workload builders through
//! Pluto, PolyUFC-CM, the search, code generation, and execution on the
//! machine model.

use polyufc::{Objective, Pipeline};
use polyufc_ir::scf::ScfOp;
use polyufc_machine::{measure_kernel, ExecutionEngine, Platform, UfsDriver};
use polyufc_workloads::{ml_suite, polybench_suite, PolybenchSize};

/// Every PolyBench program compiles end-to-end on both platforms, with
/// caps inside the platform range and structure preserved.
#[test]
fn full_suite_compiles_on_both_platforms() {
    for plat in Platform::all() {
        let pipe = Pipeline::new(plat.clone());
        for w in polybench_suite(PolybenchSize::Mini) {
            let out = pipe
                .compile_affine(&w.program)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name, plat.name));
            assert_eq!(
                out.scf.kernel_count(),
                w.program.kernels.len(),
                "{}: kernels preserved",
                w.name
            );
            for &f in &out.caps_ghz {
                assert!(
                    f >= plat.uncore_min_ghz - 1e-9 && f <= plat.uncore_max_ghz + 1e-9,
                    "{}: cap {f} out of range",
                    w.name
                );
            }
            // Redundant-cap rewrite: consecutive kernels never get two
            // identical consecutive caps.
            let mut last = None;
            for op in &out.scf.ops {
                if let ScfOp::SetUncoreCap { mhz } = op {
                    assert_ne!(last, Some(*mhz), "{}: redundant cap left behind", w.name);
                    last = Some(*mhz);
                }
            }
        }
    }
}

/// The ML suite lowers and compiles end-to-end.
#[test]
fn ml_suite_compiles() {
    let pipe = Pipeline::new(Platform::raptor_lake());
    for w in ml_suite() {
        let out = pipe
            .compile_tensor(&w.graph, w.elem)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(!out.caps_ghz.is_empty(), "{}", w.name);
    }
}

/// Capped execution must never be meaningfully worse than the UFS
/// baseline in EDP (the deployable guarantee the switch guard provides),
/// checked noiselessly over the small suite.
#[test]
fn capped_never_worse_than_baseline() {
    for plat in Platform::all() {
        let pipe = Pipeline::new(plat.clone());
        let eng = ExecutionEngine::noiseless(plat.clone());
        for w in polybench_suite(PolybenchSize::Small) {
            let out = match pipe.compile_affine(&w.program) {
                Ok(o) => o,
                Err(_) => continue,
            };
            let counters: Vec<_> = out
                .optimized
                .kernels
                .iter()
                .map(|k| measure_kernel(&plat, &out.optimized, k))
                .collect();
            let capped = eng.run_scf(&out.scf, &counters);
            let baseline = UfsDriver::stock().run_baseline(&eng, &counters);
            assert!(
                capped.edp() <= baseline.edp() * 1.05,
                "{} on {}: capped EDP {:.3e} vs baseline {:.3e}",
                w.name,
                plat.name,
                capped.edp(),
                baseline.edp()
            );
        }
    }
}

/// Objectives behave as documented: the performance objective never
/// sacrifices time; the energy objective never uses more energy than the
/// EDP objective's pick (steady state, one CB and one BB kernel).
#[test]
fn objectives_order_sensibly() {
    let plat = Platform::broadwell();
    let eng = ExecutionEngine::noiseless(plat.clone());
    for w in polybench_suite(PolybenchSize::Small)
        .into_iter()
        .filter(|w| w.name == "gemm" || w.name == "mvt")
    {
        let mut results = Vec::new();
        for obj in [Objective::Performance, Objective::Energy, Objective::Edp] {
            let mut pipe = Pipeline::new(plat.clone()).with_objective(obj);
            pipe.cap_switch_guard = 0.0;
            let out = pipe.compile_affine(&w.program).unwrap();
            let counters: Vec<_> = out
                .optimized
                .kernels
                .iter()
                .map(|k| measure_kernel(&plat, &out.optimized, k))
                .collect();
            // Steady-state: per-kernel runs at the chosen caps.
            let mut time = 0.0;
            let mut energy = 0.0;
            for (c, &f) in counters.iter().zip(&out.caps_ghz) {
                let r = eng.run_kernel(c, f);
                time += r.time_s;
                energy += r.energy.total();
            }
            results.push((obj, time, energy));
        }
        let perf = results[0];
        let en = results[1];
        // Performance objective: within a whisker of the fastest.
        let fastest = results.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
        assert!(
            perf.1 <= fastest * 1.03,
            "{}: perf objective too slow",
            w.name
        );
        // Energy objective: no other objective strictly beats it on energy.
        let least = results.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
        assert!(
            en.2 <= least * 1.05,
            "{}: energy objective wasteful",
            w.name
        );
    }
}

/// Determinism: compiling twice produces identical caps; the machine's
/// noise is seeded and reproducible.
#[test]
fn compilation_and_measurement_deterministic() {
    let plat = Platform::raptor_lake();
    let pipe = Pipeline::new(plat.clone());
    let w = &polybench_suite(PolybenchSize::Mini)[0];
    let a = pipe.compile_affine(&w.program).unwrap();
    let b = pipe.compile_affine(&w.program).unwrap();
    assert_eq!(a.caps_ghz, b.caps_ghz);
    let eng = ExecutionEngine::new(plat.clone());
    let counters: Vec<_> = a
        .optimized
        .kernels
        .iter()
        .map(|k| measure_kernel(&plat, &a.optimized, k))
        .collect();
    let r1 = eng.run_scf(&a.scf, &counters);
    let r2 = eng.run_scf(&b.scf, &counters);
    assert_eq!(r1.time_s, r2.time_s);
    assert_eq!(r1.energy.total(), r2.energy.total());
}
