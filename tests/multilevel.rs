//! Integration tests of ML-PolyUFC: dialect lowering chains, phase
//! reports, and cap granularities (paper Sec. VI).

use polyufc::{Boundedness, CapGranularity, MlPolyUfc, Pipeline};
use polyufc_ir::lower::{lower_affine_to_scf, lower_tensor_to_linalg};
use polyufc_ir::tensor::{TensorGraph, TensorOp, TensorOpKind};
use polyufc_ir::types::ElemType;
use polyufc_machine::Platform;
use polyufc_workloads::ml::{sdpa_bert, sdpa_gemma2};

#[test]
fn bert_sdpa_reproduces_fig5_structure() {
    let ml = MlPolyUfc::new(Pipeline::new(Platform::raptor_lake()));
    let w = sdpa_bert();
    let rep = ml.phase_report(&w.graph, w.elem).unwrap();
    // torch level: a single op (coarse, hides phases).
    assert_eq!(rep.tensor.len(), 1);
    // linalg: CB matmul, 7-op middle region, CB matmul (Fig. 5).
    assert_eq!(rep.linalg.len(), 9);
    assert_eq!(rep.linalg[0].1, Boundedness::ComputeBound);
    assert_eq!(rep.linalg[8].1, Boundedness::ComputeBound);
    let mid_bb = rep.linalg[1..8]
        .iter()
        .filter(|(_, c)| *c == Boundedness::BandwidthBound)
        .count();
    assert!(
        mid_bb >= 5,
        "middle region must be dominated by BB ops, got {mid_bb}/7"
    );
}

#[test]
fn granularity_controls_cap_count() {
    let w = sdpa_gemma2();
    let plat = Platform::broadwell();
    let mut caps_per_gran = Vec::new();
    for gran in [
        CapGranularity::Tensor,
        CapGranularity::Linalg,
        CapGranularity::Affine,
    ] {
        let mut ml = MlPolyUfc::new(Pipeline::new(plat.clone()));
        ml.pipeline.cap_switch_guard = 0.0;
        ml.granularity = gran;
        let out = ml.compile(&w.graph, w.elem).unwrap();
        caps_per_gran.push(out.scf.cap_count());
        assert_eq!(out.scf.kernel_count(), 9);
    }
    // Tensor granularity collapses to a single cap; finer levels may use
    // more (never fewer).
    assert_eq!(caps_per_gran[0], 1);
    assert!(caps_per_gran[1] >= caps_per_gran[0]);
    assert_eq!(
        caps_per_gran[1], caps_per_gran[2],
        "linalg == affine for 1:1 lowering"
    );
}

#[test]
fn lowering_chain_preserves_flops() {
    // tensor -> linalg -> affine -> scf keeps total arithmetic intact.
    let mut g = TensorGraph::new("chain");
    g.push(TensorOp {
        name: "mm".into(),
        kind: TensorOpKind::MatMul { m: 32, n: 16, k: 8 },
        inputs: vec!["A".into(), "B".into()],
        output: "C".into(),
    });
    let lp = lower_tensor_to_linalg(&g, ElemType::F32);
    let linalg_flops: u128 = lp.ops.iter().map(|o| o.total_flops()).sum();
    let ap = lp.lower_to_affine();
    let affine_flops: i128 = ap.kernels.iter().map(|k| k.total_flops().unwrap()).sum();
    assert_eq!(linalg_flops as i128, affine_flops);
    let scf = lower_affine_to_scf(&ap);
    assert_eq!(scf.kernel_count(), ap.kernels.len());
}

#[test]
fn multi_op_graph_gets_per_op_groups() {
    // Two tensor ops: caps grouped per op at tensor granularity.
    let mut g = TensorGraph::new("two_ops");
    g.push(TensorOp {
        name: "attn".into(),
        kind: TensorOpKind::Sdpa {
            b: 1,
            h: 2,
            s: 32,
            d: 16,
        },
        inputs: vec!["Q".into(), "K".into(), "V".into()],
        output: "attn_out".into(),
    });
    g.push(TensorOp {
        name: "proj".into(),
        kind: TensorOpKind::MatMul {
            m: 64,
            n: 16,
            k: 16,
        },
        inputs: vec!["attn_flat".into(), "W".into()],
        output: "Y".into(),
    });
    let mut ml = MlPolyUfc::new(Pipeline::new(Platform::raptor_lake()));
    ml.pipeline.cap_switch_guard = 0.0;
    ml.granularity = CapGranularity::Tensor;
    let out = ml.compile(&g, ElemType::F32).unwrap();
    assert_eq!(out.scf.kernel_count(), 10);
    // At most one cap per tensor op after the redundancy rewrite.
    assert!(out.scf.cap_count() <= 2, "got {} caps", out.scf.cap_count());
}
