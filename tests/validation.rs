//! Cross-validation of the static stack against the exact simulators:
//! PolyUFC-CM vs. the trace-driven cache simulator, the parametric time
//! model vs. the machine, and static vs. measured operational intensity.

use polyufc::{ParametricModel, Pipeline};
use polyufc_machine::{measure_kernel, ExecutionEngine, Platform};
use polyufc_workloads::{polybench_suite, PolybenchSize};

/// Static OI must track measured OI within an order of magnitude on every
/// kernel, and within 2x on at least three quarters of the suite.
#[test]
fn static_oi_tracks_measured_oi() {
    let plat = Platform::broadwell();
    let pipe = Pipeline::new(plat.clone());
    let mut within_2x = 0;
    let mut total = 0;
    for w in polybench_suite(PolybenchSize::Small) {
        let out = match pipe.compile_affine(&w.program) {
            Ok(o) => o,
            Err(_) => continue,
        };
        let omega: f64 = out.cache_stats.iter().map(|s| s.flops).sum();
        let q_est: f64 = out.cache_stats.iter().map(|s| s.q_dram_bytes).sum();
        let mut q_meas = 0.0;
        for k in &out.optimized.kernels {
            let c = measure_kernel(&plat, &out.optimized, k);
            q_meas += (c.dram_fills * c.line_bytes) as f64;
        }
        let oi_est = omega / q_est.max(1.0);
        let oi_meas = omega / q_meas.max(1.0);
        let ratio = (oi_est / oi_meas).max(oi_meas / oi_est);
        assert!(
            ratio < 12.0,
            "{}: OI est {oi_est:.2} vs meas {oi_meas:.2} (x{ratio:.1})",
            w.name
        );
        total += 1;
        if ratio < 2.0 {
            within_2x += 1;
        }
    }
    assert!(
        within_2x * 4 >= total * 3,
        "only {within_2x}/{total} kernels within 2x OI accuracy"
    );
}

/// The parametric execution-time estimate must track the machine within a
/// factor band at both frequency extremes for most of the suite.
#[test]
fn model_time_tracks_machine() {
    let plat = Platform::raptor_lake();
    let pipe = Pipeline::new(plat.clone());
    let eng = ExecutionEngine::noiseless(plat.clone());
    let conc = plat.cores as f64;
    let mut good = 0;
    let mut total = 0;
    for w in polybench_suite(PolybenchSize::Small) {
        let out = match pipe.compile_affine(&w.program) {
            Ok(o) => o,
            Err(_) => continue,
        };
        for f in [plat.uncore_min_ghz, plat.uncore_max_ghz] {
            let mut t_est = 0.0;
            let mut t_hw = 0.0;
            for (k, st) in out.optimized.kernels.iter().zip(&out.cache_stats) {
                let pm =
                    ParametricModel::new(&pipe.roofline, st, k.outer_parallel().is_some(), conc);
                t_est += pm.exec_time(f);
                let c = measure_kernel(&plat, &out.optimized, k);
                t_hw += eng.run_kernel(&c, f).time_s;
            }
            total += 1;
            let ratio = (t_est / t_hw).max(t_hw / t_est);
            if ratio < 2.0 {
                good += 1;
            }
            assert!(
                ratio < 15.0,
                "{} at {f} GHz: est {t_est:.3e} vs hw {t_hw:.3e}",
                w.name
            );
        }
    }
    assert!(
        good * 4 >= total * 3,
        "only {good}/{total} time estimates within 2x"
    );
}

/// PolyUFC-CM's LLC miss counts vs. the exact simulator across the suite:
/// every kernel within an order of magnitude; most within 2x.
#[test]
fn cache_model_tracks_simulator() {
    let plat = Platform::broadwell();
    let pipe = Pipeline::new(plat.clone());
    let mut close = 0;
    let mut total = 0;
    for w in polybench_suite(PolybenchSize::Small) {
        let out = match pipe.compile_affine(&w.program) {
            Ok(o) => o,
            Err(_) => continue,
        };
        for (k, st) in out.optimized.kernels.iter().zip(&out.cache_stats) {
            let c = measure_kernel(&plat, &out.optimized, k);
            let est = st.levels.last().unwrap().misses.max(1.0);
            let meas = (c.dram_fills as f64).max(1.0);
            let ratio = (est / meas).max(meas / est);
            total += 1;
            if ratio < 2.0 {
                close += 1;
            }
            assert!(
                ratio < 60.0,
                "{}::{}: LLC misses est {est:.3e} vs sim {meas:.3e}",
                w.name,
                k.name
            );
        }
    }
    assert!(
        close * 2 >= total,
        "only {close}/{total} kernels within 2x LLC misses"
    );
}

/// The characterization threshold B^t(f) and the machine agree on deep
/// cases: a kernel far above the balance must not speed up with uncore
/// frequency; one far below must.
#[test]
fn boundedness_matches_machine_behavior() {
    let plat = Platform::broadwell();
    let pipe = Pipeline::new(plat.clone());
    let eng = ExecutionEngine::noiseless(plat.clone());
    for w in polybench_suite(PolybenchSize::Small) {
        if w.name != "gemm" && w.name != "mvt" {
            continue;
        }
        let out = pipe.compile_affine(&w.program).unwrap();
        let main = out
            .optimized
            .kernels
            .iter()
            .zip(&out.cache_stats)
            .max_by(|a, b| a.1.flops.partial_cmp(&b.1.flops).unwrap())
            .unwrap();
        let c = measure_kernel(&plat, &out.optimized, main.0);
        let t_lo = eng.run_kernel(&c, plat.uncore_min_ghz).time_s;
        let t_hi = eng.run_kernel(&c, plat.uncore_max_ghz).time_s;
        let oi = main.1.operational_intensity();
        let balance = pipe.roofline.time_balance(plat.uncore_max_ghz);
        if oi > 3.0 * balance {
            assert!(
                t_lo < t_hi * 1.25,
                "{}: deep CB but uncore-sensitive",
                w.name
            );
        }
        if oi < balance / 3.0 {
            assert!(
                t_hi < t_lo * 0.7,
                "{}: deep BB but uncore-insensitive",
                w.name
            );
        }
    }
}
