//! The textual affine-IR format must round-trip for every workload: print
//! → parse → print is a fixed point, and traces are preserved.

use polyufc_ir::interp::{interpret_program, TraceStats};
use polyufc_ir::lower::lower_tensor_to_linalg;
use polyufc_ir::textual::parse_affine_program;
use polyufc_workloads::{ml_suite, polybench_suite, PolybenchSize};

#[test]
fn polybench_suite_roundtrips() {
    for w in polybench_suite(PolybenchSize::Mini) {
        let text = w.program.to_string();
        let parsed =
            parse_affine_program(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", w.name));
        assert_eq!(parsed.to_string(), text, "{} must round-trip", w.name);
        let mut a = TraceStats::default();
        interpret_program(&w.program, &mut a);
        let mut b = TraceStats::default();
        interpret_program(&parsed, &mut b);
        assert_eq!(a, b, "{} trace preserved", w.name);
    }
}

#[test]
fn ml_suite_roundtrips() {
    for w in ml_suite() {
        let p = lower_tensor_to_linalg(&w.graph, w.elem).lower_to_affine();
        let text = p.to_string();
        let parsed = parse_affine_program(&text).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(parsed.to_string(), text, "{} must round-trip", w.name);
    }
}

#[test]
fn tiled_programs_roundtrip() {
    use polyufc_pluto::PlutoOptimizer;
    let w = polybench_suite(PolybenchSize::Small)
        .into_iter()
        .find(|w| w.name == "gemm")
        .unwrap();
    let (opt, _) = PlutoOptimizer::default().optimize(&w.program);
    let text = opt.to_string();
    let parsed = parse_affine_program(&text).unwrap();
    assert_eq!(
        parsed.to_string(),
        text,
        "tiled (min/max bounds) must round-trip"
    );
    let mut a = TraceStats::default();
    interpret_program(&opt, &mut a);
    let mut b = TraceStats::default();
    interpret_program(&parsed, &mut b);
    assert_eq!(a, b);
}
