//! Fidelity tests against facts the paper states explicitly: kernel
//! classifications (Sec. VII-D), search-space sizes (Sec. VII-F), the
//! sdpa phase structure (Fig. 5), and the cap-direction rules.

use polyufc::{Boundedness, Pipeline};
use polyufc_machine::Platform;
use polyufc_workloads::{polybench_suite, PolybenchSize};

/// Sec. VII-D / Fig. 6: the kernels the paper names as CB or BB on RPL
/// must classify identically here at the evaluation sizes. (Flop-weighted
/// program-level class, like the harnesses.)
#[test]
fn named_kernels_classify_like_the_paper() {
    let pipe = Pipeline::new(Platform::raptor_lake());
    let mut failures = Vec::new();
    for w in polybench_suite(PolybenchSize::Large) {
        let Some(expected) = w.paper_class else {
            continue;
        };
        let out = match pipe.compile_affine(&w.program) {
            Ok(o) => o,
            Err(e) => {
                failures.push(format!("{}: analysis failed: {e}", w.name));
                continue;
            }
        };
        let (mut cb, mut bb) = (0.0, 0.0);
        for (ch, st) in out.characterizations.iter().zip(&out.cache_stats) {
            match ch.class {
                Boundedness::ComputeBound => cb += st.flops,
                Boundedness::BandwidthBound => bb += st.flops,
            }
        }
        let got = if cb >= bb { "CB" } else { "BB" };
        if got != expected {
            failures.push(format!("{}: paper says {expected}, we say {got}", w.name));
        }
    }
    assert!(
        failures.is_empty(),
        "classification mismatches:\n{}",
        failures.join("\n")
    );
}

/// Sec. VII-F: 100 MHz precision gives ≈39 search steps on RPL.
#[test]
fn search_space_sizes_match_table3() {
    assert_eq!(Platform::raptor_lake().uncore_freqs().len(), 39);
    assert_eq!(Platform::broadwell().uncore_freqs().len(), 17);
}

/// The cap-direction rule of Sec. VI-C: a deep-CB kernel (gemm at the
/// evaluation size) receives a cap no higher than a deep-BB kernel (mvt),
/// on both platforms (unguarded steady-state plan).
#[test]
fn cb_caps_below_bb_caps() {
    use polyufc_workloads::polybench;
    for plat in Platform::all() {
        let mut pipe = Pipeline::new(plat.clone());
        pipe.cap_switch_guard = 0.0;
        let gemm = pipe.compile_affine(&polybench::gemm(512)).unwrap();
        let mvt = pipe.compile_affine(&polybench::mvt(2000)).unwrap();
        // The matmul nest is kernel 1; both mvt nests are BB.
        let cb_cap = gemm.caps_ghz[1];
        let bb_cap = mvt.caps_ghz.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            cb_cap <= bb_cap + 1e-9,
            "{}: gemm cap {cb_cap} must not exceed mvt cap {bb_cap}",
            plat.name
        );
        // And the deep-CB cap must actually be low on its platform.
        let span = plat.uncore_max_ghz - plat.uncore_min_ghz;
        assert!(
            cb_cap <= plat.uncore_min_ghz + span * 0.45,
            "{}: deep-CB cap {cb_cap} should be in the lower half",
            plat.name
        );
    }
}

/// The motivating Fig. 1 facts on BDW: BB kernels' caps land at the
/// bandwidth knee (≈2.5 GHz on our BDW), not at the extremes.
#[test]
fn bb_caps_land_at_the_bandwidth_knee() {
    let mut pipe = Pipeline::new(Platform::broadwell());
    pipe.cap_switch_guard = 0.0;
    for w in polybench_suite(PolybenchSize::Small) {
        if w.name != "mvt" && w.name != "gemver" {
            continue;
        }
        let out = pipe.compile_affine(&w.program).unwrap();
        for (k_idx, &cap) in out.caps_ghz.iter().enumerate() {
            let st = &out.cache_stats[k_idx];
            if st.flops < 1e5 {
                continue;
            }
            assert!(
                (2.2..=2.8).contains(&cap),
                "{} kernel {k_idx}: BB cap {cap} should sit at/near the 2.5 GHz knee",
                w.name
            );
        }
    }
}
