//! Cross-validation of the C frontend against the native workload
//! builders: the same kernel written as PolyBench-style C must produce an
//! identical access trace, the same polyhedral analysis results, and the
//! same uncore caps.

use polyufc::Pipeline;
use polyufc_cgeist::parse_scop;
use polyufc_ir::interp::{interpret_program, TraceStats};
use polyufc_machine::Platform;
use polyufc_workloads::polybench;

const GEMM_C: &str = r#"
    double A[96][96]; double B[96][96]; double C[96][96];
    #pragma scop
    for (int i = 0; i < 96; i++)
      for (int j = 0; j < 96; j++)
        C[i][j] = C[i][j] * beta;
    for (int i = 0; i < 96; i++)
      for (int j = 0; j < 96; j++)
        for (int k = 0; k < 96; k++)
          C[i][j] += A[i][k] * B[k][j];
    #pragma endscop
"#;

const MVT_C: &str = r#"
    double A[512][512];
    double x1[512]; double x2[512];
    double y1[512]; double y2[512];
    #pragma scop
    for (int i = 0; i < 512; i++)
      for (int j = 0; j < 512; j++)
        x1[i] = x1[i] + A[i][j] * y1[j];
    for (int i = 0; i < 512; i++)
      for (int j = 0; j < 512; j++)
        x2[i] = x2[i] + A[j][i] * y2[j];
    #pragma endscop
"#;

const TRISOLV_C: &str = r#"
    double L[512][512]; double x[512]; double b[512];
    #pragma scop
    for (int i = 0; i < 512; i++)
      x[i] = b[i];
    for (int i = 0; i < 512; i++)
      for (int j = 0; j < i; j++)
        x[i] = x[i] - L[i][j] * x[j];
    for (int i = 0; i < 512; i++)
      x[i] = x[i] / L[i][i];
    #pragma endscop
"#;

fn trace(p: &polyufc_ir::AffineProgram) -> TraceStats {
    let mut st = TraceStats::default();
    interpret_program(p, &mut st);
    st
}

#[test]
fn gemm_c_matches_builder_trace() {
    let c = parse_scop(GEMM_C, "gemm").unwrap();
    let native = polybench::gemm(96);
    let (a, b) = (trace(&c), trace(&native));
    assert_eq!(a.accesses, b.accesses);
    assert_eq!(a.reads, b.reads);
    assert_eq!(a.writes, b.writes);
    assert_eq!(a.flops, b.flops);
}

#[test]
fn mvt_c_matches_builder_trace() {
    let c = parse_scop(MVT_C, "mvt").unwrap();
    let native = polybench::mvt(512);
    let (a, b) = (trace(&c), trace(&native));
    assert_eq!(a.accesses, b.accesses);
    assert_eq!(a.flops, b.flops);
}

#[test]
fn trisolv_c_matches_builder_trace() {
    let c = parse_scop(TRISOLV_C, "trisolv").unwrap();
    let native = polybench::trisolv(512);
    let (a, b) = (trace(&c), trace(&native));
    assert_eq!(a.flops, b.flops);
    assert_eq!(a.accesses, b.accesses);
    assert_eq!(a.writes, b.writes);
}

#[test]
fn c_source_gets_same_caps_as_builder() {
    let plat = Platform::broadwell();
    let pipe = Pipeline::new(plat);
    let from_c = pipe
        .compile_affine(&parse_scop(MVT_C, "mvt").unwrap())
        .unwrap();
    let native = pipe.compile_affine(&polybench::mvt(512)).unwrap();
    assert_eq!(
        from_c.caps_ghz, native.caps_ghz,
        "frontend must not change decisions"
    );
    for (a, b) in from_c
        .characterizations
        .iter()
        .zip(&native.characterizations)
    {
        assert_eq!(a.class, b.class);
        assert!((a.oi - b.oi).abs() < 1e-9 * (1.0 + a.oi.abs()));
    }
}

#[test]
fn parsed_program_survives_pluto() {
    use polyufc_pluto::PlutoOptimizer;
    let p = parse_scop(GEMM_C, "gemm").unwrap();
    let (opt, report) = PlutoOptimizer::default().optimize(&p);
    assert!(report.decisions[1].tiled, "the matmul nest must tile");
    let (a, b) = (trace(&p), trace(&opt));
    assert_eq!(
        a.accesses, b.accesses,
        "tiling must preserve the trace multiset"
    );
}
