//! Quickstart: compile a GEMM with PolyUFC for the simulated Broadwell
//! platform, inspect the characterization and the chosen uncore cap, and
//! compare the capped "run" against the stock UFS driver baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use polyufc::{Objective, Pipeline};
use polyufc_machine::{measure_kernel, ExecutionEngine, Platform, UfsDriver};
use polyufc_workloads::polybench;

fn main() {
    // 1. Pick a platform; pipeline construction calibrates the performance
    //    and power rooflines by one-time microbenchmarking.
    let platform = Platform::broadwell();
    let pipeline = Pipeline::new(platform.clone()).with_objective(Objective::Edp);
    println!(
        "calibrated {}: peak {:.0} Gflop/s, balance {:.1} FpB at {:.1} GHz",
        platform.name,
        pipeline.roofline.peak_flops / 1e9,
        pipeline.roofline.time_balance(platform.uncore_max_ghz),
        platform.uncore_max_ghz
    );

    // 2. Compile: Pluto tiling/parallelization, PolyUFC-CM cache analysis,
    //    roofline characterization, POLYUFC-SEARCH, cap insertion.
    let program = polybench::gemm(512);
    let out = pipeline
        .compile_affine(&program)
        .expect("analysis succeeds");
    for (ch, res) in out.characterizations.iter().zip(&out.search) {
        println!(
            "kernel {:<12} OI {:>8.2} FpB  class {}  cap {:.1} GHz ({} search steps)",
            ch.kernel, ch.oi, ch.class, res.f_ghz, res.steps
        );
    }
    println!("\ncompile-time breakdown: preprocess {} µs, Pluto {} µs, PolyUFC-CM {} µs, steps 4-6 {} µs",
        out.report.preprocess_us, out.report.pluto_us, out.report.polyufc_cm_us, out.report.steps_4_6_us);
    println!("\ngenerated scf program:\n{}", out.scf);

    // 3. "Run" on the machine model and compare with the stock driver.
    let engine = ExecutionEngine::new(platform.clone());
    let counters: Vec<_> = out
        .optimized
        .kernels
        .iter()
        .map(|k| measure_kernel(&platform, &out.optimized, k))
        .collect();
    let capped = engine.run_scf(&out.scf, &counters);
    let baseline = UfsDriver::stock().run_baseline(&engine, &counters);
    println!(
        "baseline (UFS @ {:.1} GHz): {:.3} ms, {:.3} J, EDP {:.3e}",
        baseline.uncore_ghz,
        baseline.time_s * 1e3,
        baseline.energy.total(),
        baseline.edp()
    );
    println!(
        "PolyUFC capped:             {:.3} ms, {:.3} J, EDP {:.3e}",
        capped.time_s * 1e3,
        capped.energy.total(),
        capped.edp()
    );
    println!(
        "EDP improvement: {:+.1}%",
        (1.0 - capped.edp() / baseline.edp()) * 100.0
    );
}
