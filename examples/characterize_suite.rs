//! Roofline characterization of the PolyBench suite: operational
//! intensity from PolyUFC-CM vs. machine counters, and the CB/BB split,
//! on both simulated platforms (the Fig. 6 view in miniature).
//!
//! Run with: `cargo run --release --example characterize_suite [mini|small]`

use polyufc::{characterize_kernel, Pipeline};
use polyufc_machine::{measure_kernel, Platform};
use polyufc_workloads::{polybench_suite, PolybenchSize};

fn main() {
    let size = match std::env::args().nth(1).as_deref() {
        Some("mini") => PolybenchSize::Mini,
        _ => PolybenchSize::Small,
    };
    for platform in Platform::all() {
        let pipeline = Pipeline::new(platform.clone());
        let f_ref = platform.uncore_max_ghz;
        println!(
            "\n=== {} (balance {:.2} FpB at {:.1} GHz) ===",
            platform.name,
            pipeline.roofline.time_balance(f_ref),
            f_ref
        );
        println!(
            "{:<14} {:>10} {:>10} {:>6} {:>10}",
            "kernel", "OI est", "OI meas", "class", "peak frac"
        );
        let (mut cb, mut bb) = (0, 0);
        for w in polybench_suite(size) {
            let out = match pipeline.compile_affine(&w.program) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("  {}: analysis failed: {e}", w.name);
                    continue;
                }
            };
            // Program-level OI: aggregate over kernels.
            let omega: f64 = out.cache_stats.iter().map(|s| s.flops).sum();
            let q: f64 = out.cache_stats.iter().map(|s| s.q_dram_bytes).sum();
            let mut meas_omega = 0.0;
            let mut meas_q = 0.0;
            for k in &out.optimized.kernels {
                let c = measure_kernel(&platform, &out.optimized, k);
                meas_omega += c.flops as f64;
                meas_q += (c.dram_fills * c.line_bytes) as f64;
            }
            let agg = polyufc_cache::KernelCacheStats {
                levels: out.cache_stats[0].levels.clone(),
                cold_lines: 0.0,
                q_dram_bytes: q,
                flops: omega,
                total_accesses: 0.0,
            };
            let ch = characterize_kernel(w.name, &agg, &pipeline.roofline, f_ref);
            match ch.class {
                polyufc::Boundedness::ComputeBound => cb += 1,
                polyufc::Boundedness::BandwidthBound => bb += 1,
            }
            println!(
                "{:<14} {:>10.2} {:>10.2} {:>6} {:>9.0}%",
                w.name,
                ch.oi,
                meas_omega / meas_q.max(1.0),
                ch.class,
                ch.peak_fraction * 100.0
            );
        }
        println!("split: {cb} CB / {bb} BB");
    }
}
