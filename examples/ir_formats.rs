//! The IR exchange formats (paper Fig. 3): the same kernel printed as
//! textual affine IR (round-trippable) and as OpenSCoP, the polyhedral
//! interchange format the paper's flow uses between tools.
//!
//! Run with: `cargo run --release --example ir_formats`

use polyufc_cgeist::parse_scop;
use polyufc_ir::openscop::emit_kernel;
use polyufc_ir::textual::parse_affine_program;

const SRC: &str = r#"
    double L[32][32]; double x[32]; double b[32];
    #pragma scop
    for (int i = 0; i < 32; i++)
      for (int j = 0; j < i; j++)
        x[i] = x[i] - L[i][j] * x[j];
    #pragma endscop
"#;

fn main() {
    let program = parse_scop(SRC, "trisolv_sub").expect("valid SCoP");

    println!("== textual affine IR (parseable back) ==");
    let text = program.to_string();
    println!("{text}");
    let reparsed = parse_affine_program(&text).expect("round-trip");
    assert_eq!(reparsed.to_string(), text);
    println!("(round-trip verified: print ∘ parse ∘ print is a fixed point)\n");

    println!("== OpenSCoP ==");
    println!("{}", emit_kernel(&program, &program.kernels[0]));
}
