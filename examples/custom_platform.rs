//! Retargetability (paper abstract: "retargetable across multiple
//! micro-architectures"): define a custom platform, calibrate its
//! rooflines from scratch, and watch the same kernel receive a different
//! cap than on the stock platforms.
//!
//! Run with: `cargo run --release --example custom_platform`

use polyufc::Pipeline;
use polyufc_cache::{CacheHierarchy, CacheLevelConfig};
use polyufc_machine::Platform;
use polyufc_workloads::polybench;

fn main() {
    // A hypothetical low-power edge server: few cores, narrow uncore
    // range, small LLC, slow DRAM.
    let edge = Platform {
        name: "EDGE".into(),
        cores: 4,
        threads: 8,
        core_freq_ghz: 2.4,
        uncore_min_ghz: 0.8,
        uncore_max_ghz: 2.0,
        uncore_step_ghz: 0.1,
        hierarchy: CacheHierarchy::new(vec![
            CacheLevelConfig {
                size_bytes: 32 << 10,
                line_bytes: 64,
                assoc: 8,
                shared: false,
            },
            CacheLevelConfig {
                size_bytes: 512 << 10,
                line_bytes: 64,
                assoc: 8,
                shared: false,
            },
            CacheLevelConfig {
                size_bytes: 4 << 20,
                line_bytes: 64,
                assoc: 16,
                shared: true,
            },
        ]),
        flops_per_cycle: 8.0,
        private_hit_latency_ns: vec![1.5, 4.0],
        llc_latency: (30.0, 6.0),
        dram_latency: (35.0, 70.0),
        dram_bw_peak_gbps: 25.0,
        dram_bw_slope: 14.0,
        mlp: 10.0,
        p_static_w: 6.0,
        core_dyn_w: 2.5,
        e_flop_j: 5.0e-11,
        uncore_alpha_w_per_ghz: 4.0,
        uncore_gamma_w: 2.0,
        e_dram_byte_j: 6.0e-11,
        cap_switch_us: 25.0,
        has_uncore_rapl_zone: true,
    };

    let program = polybench::gemm(512);
    for platform in [Platform::broadwell(), Platform::raptor_lake(), edge] {
        let pipeline = Pipeline::new(platform.clone());
        let out = pipeline.compile_affine(&program).expect("analysis");
        let ch = &out.characterizations[1]; // the matmul nest
        println!(
            "{:<5} balance {:>6.2} FpB  gemm OI {:>6.2}  class {}  cap {:.1} GHz (range {:.1}-{:.1})",
            platform.name,
            ch.balance,
            ch.oi,
            ch.class,
            out.caps_ghz[1],
            platform.uncore_min_ghz,
            platform.uncore_max_ghz
        );
    }
    println!("\nThe same kernel is characterized against each platform's own measured");
    println!("rooflines, so the cap adapts to the machine — no per-platform code.");
}
