//! The paper's Fig. 2 entry point: a C kernel (SCoP) compiled through the
//! whole flow — cgeist-style parsing, Pluto optimization, PolyUFC-CM
//! analysis, cap search, and execution on the machine model.
//!
//! Run with: `cargo run --release --example compile_c_kernel`

use polyufc::Pipeline;
use polyufc_cgeist::parse_scop;
use polyufc_machine::{measure_kernel, ExecutionEngine, Platform, UfsDriver};

const SOURCE: &str = r#"
    double A[4000][4000];
    double x1[4000]; double x2[4000];
    double y1[4000]; double y2[4000];

    #pragma scop
    for (int i = 0; i < 4000; i++)
      for (int j = 0; j < 4000; j++)
        x1[i] += A[i][j] * y1[j];
    for (int i = 0; i < 4000; i++)
      for (int j = 0; j < 4000; j++)
        x2[i] += A[j][i] * y2[j];
    #pragma endscop
"#;

fn main() {
    let program = parse_scop(SOURCE, "mvt").expect("valid SCoP");
    println!(
        "parsed `mvt` from C: {} arrays, {} loop nests\n",
        program.arrays.len(),
        program.kernels.len()
    );
    println!("{program}");

    let platform = Platform::broadwell();
    let pipeline = Pipeline::new(platform.clone());
    let out = pipeline.compile_affine(&program).expect("analysis");
    for (ch, cap) in out.characterizations.iter().zip(&out.caps_ghz) {
        println!(
            "kernel {:<10} OI {:>6.2} FpB  {}  cap {:.1} GHz",
            ch.kernel, ch.oi, ch.class, cap
        );
    }

    let engine = ExecutionEngine::new(platform.clone());
    let counters: Vec<_> = out
        .optimized
        .kernels
        .iter()
        .map(|k| measure_kernel(&platform, &out.optimized, k))
        .collect();
    let capped = engine.run_scf(&out.scf, &counters);
    let baseline = UfsDriver::stock().run_baseline(&engine, &counters);
    println!(
        "\nbaseline EDP {:.3e}, capped EDP {:.3e} ({:+.1}%)",
        baseline.edp(),
        capped.edp(),
        (1.0 - capped.edp() / baseline.edp()) * 100.0
    );
}
