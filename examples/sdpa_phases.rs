//! ML-PolyUFC on a transformer attention block: multi-level CB/BB phase
//! analysis (Fig. 5) and cap application at tensor vs. linalg granularity
//! (Sec. VI-B), for BERT-shaped scaled dot-product attention.
//!
//! Run with: `cargo run --release --example sdpa_phases`

use polyufc::{CapGranularity, MlPolyUfc, PhaseReport, Pipeline};
use polyufc_machine::{measure_kernel, ExecutionEngine, Platform};
use polyufc_workloads::ml::sdpa_bert;

fn main() {
    let platform = Platform::raptor_lake();
    let w = sdpa_bert();
    let ml = MlPolyUfc::new(Pipeline::new(platform.clone()));

    // Multi-level phase report: one torch op hides a CB -> BB* -> CB
    // structure that only the linalg/affine levels expose.
    let phases = ml.phase_report(&w.graph, w.elem).expect("analysis");
    println!(
        "torch  level phases: {}",
        PhaseReport::phase_string(&phases.tensor)
    );
    println!(
        "linalg level phases: {}",
        PhaseReport::phase_string(&phases.linalg)
    );
    println!(
        "affine level phases: {}",
        PhaseReport::phase_string(&phases.affine)
    );

    // Cap application granularity trade-off.
    let engine = ExecutionEngine::new(platform.clone());
    for gran in [CapGranularity::Tensor, CapGranularity::Linalg] {
        let mut ml = MlPolyUfc::new(Pipeline::new(platform.clone()));
        ml.granularity = gran;
        let out = ml.compile(&w.graph, w.elem).expect("analysis");
        let counters: Vec<_> = out
            .optimized
            .kernels
            .iter()
            .map(|k| measure_kernel(&platform, &out.optimized, k))
            .collect();
        let run = engine.run_scf(&out.scf, &counters);
        println!(
            "\n{:?} granularity: {} cap calls over {} kernels",
            gran,
            out.scf.cap_count(),
            out.scf.kernel_count()
        );
        for (cap, k) in out.scf.kernels_with_caps() {
            println!("  {:>4} MHz  {}", cap.unwrap_or(0), k.name);
        }
        println!(
            "  run: {:.3} ms, {:.3} J, EDP {:.3e}",
            run.time_s * 1e3,
            run.energy.total(),
            run.edp()
        );
    }
}
