//! Polyhedral dependence analysis: dependence relations between accesses
//! of a kernel, their distance (delta) sets, and the permutability /
//! parallelism queries that drive tiling and parallelization.

use polyufc_ir::affine::AffineKernel;
use polyufc_presburger::{BasicMap, BasicSet, LinExpr, Map, Set, Space};

/// The delta (dependence distance) sets of one kernel, with convenience
/// queries. All queries are conservative under solver-budget exhaustion:
/// an undecidable query is treated as "dependence present".
#[derive(Debug, Clone)]
pub struct DepSummary {
    depth: usize,
    /// One delta set per dependent access pair (possibly unioned pieces).
    pub deltas: Vec<Set>,
    /// Whether any query hit the solver budget (results then conservative).
    pub budget_exceeded: bool,
}

/// Builds the dependence summary of a kernel: for every pair of accesses to
/// the same array with at least one write, the set of iteration-space
/// distance vectors `i' - i` over pairs `i ≺ i'` (or `i ⪯ i'` when the
/// source statement precedes the destination statement textually) touching
/// the same element.
pub fn analyze_kernel(kernel: &AffineKernel) -> DepSummary {
    let depth = kernel.depth();
    let mut summary = DepSummary {
        depth,
        deltas: Vec::new(),
        budget_exceeded: false,
    };
    if depth == 0 {
        return summary;
    }
    let domain = kernel.domain();
    let dom_basic = &domain.basics()[0];

    let accesses: Vec<(usize, usize)> = kernel
        .statements
        .iter()
        .enumerate()
        .flat_map(|(si, s)| (0..s.accesses.len()).map(move |ai| (si, ai)))
        .collect();

    for &(si, ai) in &accesses {
        for &(sj, aj) in &accesses {
            let a1 = &kernel.statements[si].accesses[ai];
            let a2 = &kernel.statements[sj].accesses[aj];
            if a1.array != a2.array || (!a1.is_write && !a2.is_write) {
                continue;
            }
            // Equal-element relation { i -> i' : A1(i) == A2(i') }.
            let mut rel = BasicMap::universe(Space::map(0, depth, depth));
            for (e1, e2) in a1.indices.iter().zip(&a2.indices) {
                // e1 over in-dims (vars 0..depth), e2 shifted to out-dims.
                let e2s = e2.shift_vars(0, depth);
                rel.basic_set_mut().add_eq(e2s - e1.clone());
            }
            let rel = match rel
                .intersect_domain(dom_basic)
                .and_then(|r| r.intersect_range(dom_basic))
            {
                Ok(r) => r,
                Err(_) => {
                    summary.budget_exceeded = true;
                    continue;
                }
            };
            // Order: strict lexicographic, plus equality when the source
            // statement textually precedes the destination.
            let mut order_pieces = polyufc_presburger::lex_lt_map(0, depth);
            if si < sj {
                let id = BasicMap::identity(0, depth);
                order_pieces = order_pieces
                    .union_disjoint(&Map::from_basic(id))
                    .expect("same space");
            }
            for piece in order_pieces.basics() {
                let combined = match intersect_maps(&rel, piece) {
                    Some(c) => c,
                    None => {
                        summary.budget_exceeded = true;
                        continue;
                    }
                };
                let delta = combined.deltas();
                match prune_empty(&delta) {
                    Some(true) => {}
                    Some(false) => summary.deltas.push(Set::from_basic(delta)),
                    None => {
                        summary.budget_exceeded = true;
                        summary.deltas.push(Set::from_basic(delta));
                    }
                }
            }
        }
    }
    summary
}

/// Intersects two basic maps over the same space by merging constraints.
fn intersect_maps(a: &BasicMap, b: &BasicMap) -> Option<BasicMap> {
    a.as_basic_set()
        .intersect(b.as_basic_set())
        .ok()
        .map(BasicMap::from_basic_set)
}

/// `Some(is_empty)` or `None` if undecidable within budget.
fn prune_empty(b: &BasicSet) -> Option<bool> {
    b.is_empty().ok()
}

impl DepSummary {
    /// Nesting depth of the analyzed kernel.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether the kernel carries no dependences at all.
    pub fn is_dependence_free(&self) -> bool {
        self.deltas.is_empty() && !self.budget_exceeded
    }

    /// Whether a delta with `δ_level <= -1` exists in any dependence
    /// (conservatively `true` on solver failure).
    pub fn can_be_negative_at(&self, level: usize) -> bool {
        for s in &self.deltas {
            let mut probe = BasicSet::universe(s.space().clone());
            probe.add_ge0(-LinExpr::var(level) - LinExpr::constant(1));
            match s
                .intersect(&Set::from_basic(probe))
                .and_then(|x| x.is_empty())
            {
                Ok(true) => {}
                _ => return true,
            }
        }
        false
    }

    /// Whether the full band `0..depth` is fully permutable: every delta is
    /// component-wise non-negative.
    pub fn fully_permutable(&self) -> bool {
        (0..self.depth).all(|d| !self.can_be_negative_at(d))
    }

    /// Whether loop `level` is parallel: no dependence has
    /// `δ_0 = .. = δ_{level-1} = 0` and `δ_level != 0`.
    pub fn loop_parallel(&self, level: usize) -> bool {
        for s in &self.deltas {
            for sign in [1i64, -1] {
                let mut probe = BasicSet::universe(s.space().clone());
                for d in 0..level {
                    probe.add_eq(LinExpr::var(d));
                }
                probe.add_ge0(LinExpr::var(level) * sign - LinExpr::constant(1));
                match s
                    .intersect(&Set::from_basic(probe))
                    .and_then(|x| x.is_empty())
                {
                    Ok(true) => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// The most negative value `δ_level` can take, probed down to `-limit`
    /// (`Some(0)` if it cannot be negative). Returns `None` if undecidable
    /// or below the probe limit — callers should then give up on skewing.
    pub fn min_delta_at(&self, level: usize, limit: i64) -> Option<i64> {
        let mut worst = 0i64;
        for s in &self.deltas {
            let mut k = 0i64;
            loop {
                let mut probe = BasicSet::universe(s.space().clone());
                probe.add_ge0(-LinExpr::var(level) - LinExpr::constant(k + 1));
                match s
                    .intersect(&Set::from_basic(probe))
                    .and_then(|x| x.is_empty())
                {
                    Ok(true) => break,
                    Ok(false) => {
                        k += 1;
                        if k > limit {
                            return None;
                        }
                    }
                    Err(_) => return None,
                }
            }
            worst = worst.max(k);
        }
        Some(-worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_ir::affine::{Access, AffineKernel, AffineProgram, Loop, Statement};
    use polyufc_ir::types::ElemType;

    fn matmul_kernel() -> AffineKernel {
        let mut p = AffineProgram::new("mm");
        let a = p.add_array("A", vec![8, 8], ElemType::F64);
        let b = p.add_array("B", vec![8, 8], ElemType::F64);
        let c = p.add_array("C", vec![8, 8], ElemType::F64);
        let (vi, vj, vk) = (LinExpr::var(0), LinExpr::var(1), LinExpr::var(2));
        AffineKernel {
            name: "mm".into(),
            loops: vec![Loop::range(8), Loop::range(8), Loop::range(8)],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![
                    Access::read(a, vec![vi.clone(), vk.clone()]),
                    Access::read(b, vec![vk, vj.clone()]),
                    Access::read(c, vec![vi.clone(), vj.clone()]),
                    Access::write(c, vec![vi, vj]),
                ],
                flops: 2,
            }],
        }
    }

    /// jacobi-1d-style: `for t { for i { A[i] = f(A[i-1], A[i], A[i+1]) } }`
    /// (in-place to create the classic (1,-1) dependence).
    fn stencil_kernel() -> AffineKernel {
        let mut p = AffineProgram::new("st");
        let a = p.add_array("A", vec![16], ElemType::F64);
        let vi = LinExpr::var(1);
        AffineKernel {
            name: "st".into(),
            loops: vec![
                Loop::range(4),
                Loop::new(
                    polyufc_ir::affine::Bound::constant(1),
                    polyufc_ir::affine::Bound::constant(15),
                ),
            ],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![
                    Access::read(a, vec![vi.clone() - LinExpr::constant(1)]),
                    Access::read(a, vec![vi.clone()]),
                    Access::read(a, vec![vi.clone() + LinExpr::constant(1)]),
                    Access::write(a, vec![vi]),
                ],
                flops: 3,
            }],
        }
    }

    #[test]
    fn matmul_permutable_and_parallel() {
        let d = analyze_kernel(&matmul_kernel());
        assert!(!d.is_dependence_free()); // C[i][j] reduction on k
        assert!(d.fully_permutable());
        assert!(d.loop_parallel(0));
        assert!(d.loop_parallel(1));
        assert!(!d.loop_parallel(2)); // reduction loop
    }

    #[test]
    fn stencil_not_permutable_needs_skew() {
        let d = analyze_kernel(&stencil_kernel());
        assert!(!d.fully_permutable());
        assert!(d.can_be_negative_at(1));
        assert!(!d.loop_parallel(0));
        assert!(!d.loop_parallel(1));
        assert_eq!(d.min_delta_at(1, 4), Some(-1));
    }

    #[test]
    fn independent_copy_is_dependence_free() {
        let mut p = AffineProgram::new("cp");
        let a = p.add_array("A", vec![8], ElemType::F64);
        let b = p.add_array("B", vec![8], ElemType::F64);
        let k = AffineKernel {
            name: "cp".into(),
            loops: vec![Loop::range(8)],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![
                    Access::read(a, vec![LinExpr::var(0)]),
                    Access::write(b, vec![LinExpr::var(0)]),
                ],
                flops: 0,
            }],
        };
        let d = analyze_kernel(&k);
        assert!(d.is_dependence_free());
        assert!(d.loop_parallel(0));
        assert!(d.fully_permutable());
    }
}
