//! Loop transformations: skewing (to make stencil bands permutable) and
//! rectangular tiling of fully permutable bands.

use polyufc_ir::affine::{AffineKernel, Bound, Loop};
use polyufc_presburger::LinExpr;

/// Skews loop `inner` by `factor` with respect to loop `outer`
/// (`i_inner' = i_inner + factor * i_outer`), rewriting bounds and accesses
/// so the kernel's semantics are unchanged. Used to turn negative stencil
/// dependence components non-negative before tiling.
///
/// # Panics
///
/// Panics if `outer >= inner` does not hold or the indices are out of
/// range.
pub fn skew_loop(kernel: &AffineKernel, outer: usize, inner: usize, factor: i64) -> AffineKernel {
    assert!(
        outer < inner && inner < kernel.depth(),
        "skew requires outer < inner < depth"
    );
    let mut k = kernel.clone();
    // Old iterator: i_inner = i_inner' - factor * i_outer.
    let replacement = LinExpr::var(inner) - LinExpr::var(outer) * factor;

    // Rewrite accesses of all statements.
    for s in &mut k.statements {
        for a in &mut s.accesses {
            for e in &mut a.indices {
                *e = e.substitute(inner, &replacement);
            }
        }
    }
    // Rewrite bounds of loops deeper than `inner` that reference it.
    for l in k.loops.iter_mut().skip(inner + 1) {
        for e in l.lb.exprs.iter_mut().chain(l.ub.exprs.iter_mut()) {
            *e = e.substitute(inner, &replacement);
        }
    }
    // The skewed loop's own bounds shift by factor * i_outer. (Its bounds
    // reference only iterators < inner, which are unchanged.)
    let shift = LinExpr::var(outer) * factor;
    for e in k.loops[inner].lb.exprs.iter_mut() {
        *e = e.clone() + shift.clone();
    }
    for e in k.loops[inner].ub.exprs.iter_mut() {
        *e = e.clone() + shift.clone();
    }
    k
}

/// Rectangularly tiles all loops of a (fully permutable) band with a single
/// tile size, producing a `2n`-deep kernel: `n` tile loops followed by `n`
/// point loops (Pluto's default shape, tile size 32).
///
/// Tile-loop ranges are derived from the per-iterator interval of the
/// iteration domain; point loops carry the original (rewritten) bounds
/// intersected with their tile, so non-rectangular domains remain exact.
///
/// Returns `None` if the iteration domain's per-iterator intervals cannot
/// be bounded (empty or unbounded domain).
pub fn tile_kernel(kernel: &AffineKernel, tile: i64) -> Option<AffineKernel> {
    assert!(tile >= 2, "tile size must be at least 2");
    let n = kernel.depth();
    if n == 0 {
        return None;
    }
    // Per-iterator intervals from the domain.
    let domain = kernel.domain();
    let basic = &domain.basics()[0];
    let iv = basic.var_intervals().ok().flatten()?;
    let mut ranges = Vec::with_capacity(n);
    for v in iv.iter().take(n) {
        match v {
            (Some(lo), Some(hi)) if lo <= hi => ranges.push((*lo, *hi)),
            _ => return None,
        }
    }

    let mut k = AffineKernel {
        name: kernel.name.clone(),
        loops: Vec::with_capacity(2 * n),
        statements: kernel.statements.clone(),
    };
    // Remap original iterator d -> point variable n + d.
    let remap = |e: &LinExpr| e.shift_vars(0, n);

    // Tile loops.
    for (d, &(lo, hi)) in ranges.iter().enumerate() {
        let t_lo = lo.div_euclid(tile);
        let t_hi = hi.div_euclid(tile) + 1; // exclusive
        let mut l = Loop::range(0);
        l.lb = Bound::constant(t_lo);
        l.ub = Bound::constant(t_hi);
        l.parallel = kernel.loops[d].parallel;
        k.loops.push(l);
    }
    // Point loops.
    for (d, orig) in kernel.loops.iter().enumerate() {
        let mut lb: Vec<LinExpr> = orig.lb.exprs.iter().map(remap).collect();
        lb.push(LinExpr::var(d) * tile);
        let mut ub: Vec<LinExpr> = orig.ub.exprs.iter().map(remap).collect();
        ub.push(LinExpr::var(d) * tile + LinExpr::constant(tile));
        k.loops.push(Loop {
            lb: Bound { exprs: lb },
            ub: Bound { exprs: ub },
            parallel: false,
        });
    }
    // Remap statement accesses.
    for s in &mut k.statements {
        for a in &mut s.accesses {
            for e in &mut a.indices {
                *e = remap(e);
            }
        }
    }
    Some(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_ir::affine::{Access, AffineProgram, Statement};
    use polyufc_ir::types::ElemType;

    fn square_kernel(n: i64) -> (AffineProgram, AffineKernel) {
        let mut p = AffineProgram::new("sq");
        let a = p.add_array("A", vec![n as usize, n as usize], ElemType::F64);
        let k = AffineKernel {
            name: "sq".into(),
            loops: vec![Loop::range(n), Loop::range(n)],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![Access::write(a, vec![LinExpr::var(0), LinExpr::var(1)])],
                flops: 1,
            }],
        };
        p.kernels.push(k.clone());
        (p, k)
    }

    #[test]
    fn tiling_preserves_domain_size() {
        let (_, k) = square_kernel(100);
        let t = tile_kernel(&k, 32).unwrap();
        assert_eq!(t.depth(), 4);
        assert_eq!(t.domain_size().unwrap(), 100 * 100);
    }

    #[test]
    fn tiling_preserves_trace_multiset() {
        use polyufc_ir::interp::{interpret_kernel, TraceStats};
        let (mut p, k) = square_kernel(50);
        let t = tile_kernel(&k, 32).unwrap();
        let mut s1 = TraceStats::default();
        interpret_kernel(&p, &k, &mut s1);
        p.kernels[0] = t.clone();
        let mut s2 = TraceStats::default();
        interpret_kernel(&p, &t, &mut s2);
        assert_eq!(s1.accesses, s2.accesses);
        assert_eq!(s1.flops, s2.flops);
        assert_eq!(s1.bytes, s2.bytes);
    }

    #[test]
    fn tiling_triangular_domain_exact() {
        // for i in 0..40 { for j in 0..=i } — 820 points.
        let k = AffineKernel {
            name: "tri".into(),
            loops: vec![
                Loop::range(40),
                Loop::new(
                    Bound::constant(0),
                    Bound::expr(LinExpr::var(0) + LinExpr::constant(1)),
                ),
            ],
            statements: vec![],
        };
        let t = tile_kernel(&k, 16).unwrap();
        assert_eq!(t.domain_size().unwrap(), 820);
    }

    #[test]
    fn skew_preserves_points_and_accesses() {
        use polyufc_ir::interp::{interpret_kernel, TraceStats};
        // Stencil-shaped: for t in 0..4, i in 1..15: A[i-1], A[i], A[i+1], write A[i].
        let mut p = AffineProgram::new("st");
        let a = p.add_array("A", vec![16], ElemType::F64);
        let vi = LinExpr::var(1);
        let k = AffineKernel {
            name: "st".into(),
            loops: vec![
                Loop::range(4),
                Loop::new(Bound::constant(1), Bound::constant(15)),
            ],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![
                    Access::read(a, vec![vi.clone() - LinExpr::constant(1)]),
                    Access::read(a, vec![vi.clone()]),
                    Access::read(a, vec![vi.clone() + LinExpr::constant(1)]),
                    Access::write(a, vec![vi]),
                ],
                flops: 3,
            }],
        };
        let sk = skew_loop(&k, 0, 1, 1);
        assert_eq!(sk.domain_size().unwrap(), k.domain_size().unwrap());
        p.kernels.push(k.clone());
        let mut s1 = TraceStats::default();
        interpret_kernel(&p, &k, &mut s1);
        let mut s2 = TraceStats::default();
        interpret_kernel(&p, &sk, &mut s2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn skew_then_tile_is_exact() {
        let k = AffineKernel {
            name: "st".into(),
            loops: vec![
                Loop::range(8),
                Loop::new(Bound::constant(1), Bound::constant(31)),
            ],
            statements: vec![],
        };
        let sk = skew_loop(&k, 0, 1, 1);
        let t = tile_kernel(&sk, 8).unwrap();
        assert_eq!(t.domain_size().unwrap(), 8 * 30);
    }

    #[test]
    fn tile_keeps_parallel_marks_on_tile_loops() {
        let (_, mut k) = square_kernel(64);
        k.loops[0].parallel = true;
        let t = tile_kernel(&k, 32).unwrap();
        assert!(t.loops[0].parallel);
        assert!(!t.loops[2].parallel);
    }
}
