//! A Pluto-style polyhedral optimizer: dependence analysis, legality-checked
//! rectangular tiling (default tile size 32, matching the paper's baseline
//! configuration), skewing to enable stencil tiling, and outer-parallel
//! loop detection.
//!
//! The paper uses Pluto v0.11.4 as the performance-optimizing front stage:
//! every evaluated kernel is "Pluto tiled-parallel" before PolyUFC analyzes
//! it. This crate reproduces that stage on the [`polyufc_ir`] affine
//! dialect.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod deps;
pub mod optimizer;
pub mod transform;

pub use deps::{analyze_kernel, DepSummary};
pub use optimizer::{KernelDecision, PlutoOptimizer, PlutoReport};
pub use transform::{skew_loop, tile_kernel};
