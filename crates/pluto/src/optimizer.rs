//! The Pluto-style driver: per-kernel dependence analysis, optional
//! skewing, legality-checked tiling, and parallel-loop marking.

use std::time::Instant;

use polyufc_ir::affine::{AffineKernel, AffineProgram};

use crate::deps::analyze_kernel;
use crate::transform::{skew_loop, tile_kernel};

/// Configuration of the optimizer. Defaults match the paper's baseline:
/// Pluto v0.11.4 with tile size 32, tiling and parallelization on.
#[derive(Debug, Clone)]
pub struct PlutoOptimizer {
    /// Rectangular tile size.
    pub tile_size: i64,
    /// Whether to tile permutable bands.
    pub enable_tiling: bool,
    /// Whether to mark parallel loops.
    pub enable_parallel: bool,
    /// Skip tiling for kernels whose iteration domain is smaller than
    /// this (tiling tiny kernels only adds loop overhead).
    pub min_points_to_tile: i128,
}

impl Default for PlutoOptimizer {
    fn default() -> Self {
        PlutoOptimizer {
            tile_size: 32,
            enable_tiling: true,
            enable_parallel: true,
            min_points_to_tile: 4096,
        }
    }
}

/// What the optimizer did to one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelDecision {
    /// Kernel name.
    pub name: String,
    /// Whether a skew was applied (outer, inner, factor).
    pub skewed: Option<(usize, usize, i64)>,
    /// Whether the kernel was tiled.
    pub tiled: bool,
    /// Parallel loop indices (in the transformed kernel).
    pub parallel_loops: Vec<usize>,
    /// Whether dependence analysis hit its budget (conservative fallback).
    pub analysis_conservative: bool,
    /// Wall-clock time spent on this kernel, in microseconds.
    pub micros: u128,
}

/// Per-program optimization report (feeds the Table IV compile-time
/// breakdown).
#[derive(Debug, Clone, Default)]
pub struct PlutoReport {
    /// One decision per kernel, in program order.
    pub decisions: Vec<KernelDecision>,
}

impl PlutoReport {
    /// Total optimizer time in microseconds.
    pub fn total_micros(&self) -> u128 {
        self.decisions.iter().map(|d| d.micros).sum()
    }
}

impl PlutoOptimizer {
    /// Optimizes every kernel of a program, returning the transformed
    /// program and a report of the decisions taken.
    pub fn optimize(&self, program: &AffineProgram) -> (AffineProgram, PlutoReport) {
        let mut out = program.clone();
        let mut report = PlutoReport::default();
        for k in &mut out.kernels {
            let started = Instant::now();
            let (nk, mut dec) = self.optimize_kernel(k);
            *k = nk;
            dec.micros = started.elapsed().as_micros();
            report.decisions.push(dec);
        }
        debug_assert_eq!(out.validate(), Ok(()));
        (out, report)
    }

    /// Optimizes a single kernel.
    pub fn optimize_kernel(&self, kernel: &AffineKernel) -> (AffineKernel, KernelDecision) {
        let mut dec = KernelDecision {
            name: kernel.name.clone(),
            skewed: None,
            tiled: false,
            parallel_loops: Vec::new(),
            analysis_conservative: false,
            micros: 0,
        };
        let mut k = kernel.clone();
        // Clear any pre-existing parallel marks; we recompute from deps.
        for l in &mut k.loops {
            l.parallel = false;
        }
        let mut deps = analyze_kernel(&k);
        dec.analysis_conservative = deps.budget_exceeded;

        // Skew to enable tiling if some inner level can be negative.
        if !deps.fully_permutable() && k.depth() >= 2 {
            for inner in 1..k.depth() {
                if deps.can_be_negative_at(inner) {
                    if let Some(min_d) = deps.min_delta_at(inner, 8) {
                        if min_d < 0 {
                            let factor = -min_d;
                            k = skew_loop(&k, 0, inner, factor);
                            dec.skewed = Some((0, inner, factor));
                        }
                    }
                }
            }
            deps = analyze_kernel(&k);
            dec.analysis_conservative |= deps.budget_exceeded;
        }

        // Mark parallel loops on the (possibly skewed) kernel.
        let parallel: Vec<bool> = (0..k.depth())
            .map(|d| self.enable_parallel && deps.loop_parallel(d))
            .collect();
        for (l, &p) in k.loops.iter_mut().zip(&parallel) {
            l.parallel = p;
        }

        // Tile fully permutable bands.
        let big_enough = k
            .domain_size()
            .map(|s| s >= self.min_points_to_tile)
            .unwrap_or(false);
        if self.enable_tiling && k.depth() >= 2 && big_enough && deps.fully_permutable() {
            if let Some(tiled) = tile_kernel(&k, self.tile_size) {
                k = tiled;
                dec.tiled = true;
            }
        }
        dec.parallel_loops = k
            .loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.parallel)
            .map(|(i, _)| i)
            .collect();
        (k, dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_ir::affine::{Access, Bound, Loop, Statement};
    use polyufc_ir::types::ElemType;
    use polyufc_presburger::LinExpr;

    fn matmul_program(n: usize) -> AffineProgram {
        let mut p = AffineProgram::new("mm");
        let a = p.add_array("A", vec![n, n], ElemType::F64);
        let b = p.add_array("B", vec![n, n], ElemType::F64);
        let c = p.add_array("C", vec![n, n], ElemType::F64);
        let (vi, vj, vk) = (LinExpr::var(0), LinExpr::var(1), LinExpr::var(2));
        p.kernels.push(AffineKernel {
            name: "mm".into(),
            loops: vec![Loop::range(n as i64); 3],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![
                    Access::read(a, vec![vi.clone(), vk.clone()]),
                    Access::read(b, vec![vk, vj.clone()]),
                    Access::read(c, vec![vi.clone(), vj.clone()]),
                    Access::write(c, vec![vi, vj]),
                ],
                flops: 2,
            }],
        });
        p
    }

    #[test]
    fn matmul_gets_tiled_and_parallel() {
        let p = matmul_program(64);
        let (opt, report) = PlutoOptimizer::default().optimize(&p);
        let d = &report.decisions[0];
        assert!(d.tiled);
        assert!(d.skewed.is_none());
        let k = &opt.kernels[0];
        assert_eq!(k.depth(), 6);
        // Tile loops for i and j are parallel, k is not.
        assert!(k.loops[0].parallel && k.loops[1].parallel && !k.loops[2].parallel);
        // Domain preserved.
        assert_eq!(k.domain_size().unwrap(), 64 * 64 * 64);
    }

    #[test]
    fn small_kernels_left_untiled() {
        let p = matmul_program(8);
        let (opt, report) = PlutoOptimizer::default().optimize(&p);
        assert!(!report.decisions[0].tiled);
        assert_eq!(opt.kernels[0].depth(), 3);
    }

    #[test]
    fn stencil_skewed_then_tiled() {
        let mut p = AffineProgram::new("j1d");
        let a = p.add_array("A", vec![128], ElemType::F64);
        let vi = LinExpr::var(1);
        p.kernels.push(AffineKernel {
            name: "j1d".into(),
            loops: vec![
                Loop::range(64),
                Loop::new(Bound::constant(1), Bound::constant(127)),
            ],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![
                    Access::read(a, vec![vi.clone() - LinExpr::constant(1)]),
                    Access::read(a, vec![vi.clone()]),
                    Access::read(a, vec![vi.clone() + LinExpr::constant(1)]),
                    Access::write(a, vec![vi]),
                ],
                flops: 3,
            }],
        });
        let (opt, report) = PlutoOptimizer::default().optimize(&p);
        let d = &report.decisions[0];
        assert_eq!(d.skewed, Some((0, 1, 1)));
        assert!(d.tiled);
        assert_eq!(opt.kernels[0].domain_size().unwrap(), 64 * 126);
    }

    #[test]
    fn tiling_can_be_disabled() {
        let p = matmul_program(64);
        let opt = PlutoOptimizer {
            enable_tiling: false,
            ..Default::default()
        };
        let (out, report) = opt.optimize(&p);
        assert!(!report.decisions[0].tiled);
        assert_eq!(out.kernels[0].depth(), 3);
        assert!(out.kernels[0].loops[0].parallel);
    }

    #[test]
    fn optimized_trace_equals_original() {
        use polyufc_ir::interp::{interpret_program, TraceStats};
        let p = matmul_program(40);
        let (opt, _) = PlutoOptimizer::default().optimize(&p);
        let mut s1 = TraceStats::default();
        interpret_program(&p, &mut s1);
        let mut s2 = TraceStats::default();
        interpret_program(&opt, &mut s2);
        assert_eq!(s1, s2);
    }
}
