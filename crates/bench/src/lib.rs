//! Shared helpers for the figure/table harness binaries: end-to-end
//! workload evaluation (compile with PolyUFC, "run" on the machine model,
//! compare against the stock UFS driver baseline) and small table/stat
//! utilities.

#![warn(missing_docs)]

use polyufc::{Boundedness, Error, Pipeline, PipelineOutput};
use polyufc_ir::affine::AffineProgram;
use polyufc_machine::{
    ExecutionEngine, FaultPlan, GuardReport, GuardedCapRuntime, KernelCounters, RunResult,
    UfsDriver,
};
use polyufc_workloads::PolybenchSize;

/// The outcome of evaluating one workload on one platform.
#[derive(Debug)]
pub struct Eval {
    /// Workload name.
    pub name: String,
    /// Platform name.
    pub platform: String,
    /// Pipeline output (characterizations, caps, compile report, ...).
    pub out: PipelineOutput,
    /// Per-kernel machine counters (the PAPI stand-in).
    pub counters: Vec<KernelCounters>,
    /// Run with PolyUFC's caps (deployable: includes cap-switch
    /// overheads; short kernels inherit the ambient frequency per the
    /// switch guard).
    pub capped: RunResult,
    /// Steady-state run: every kernel at its searched cap with switch
    /// overheads amortized away — the paper's regime, where kernels run
    /// for seconds and the ~20-35 µs switches vanish.
    pub steady: RunResult,
    /// Caps chosen without the switch guard (the steady-state plan).
    pub steady_caps_ghz: Vec<f64>,
    /// Run under the stock UFS driver.
    pub baseline: RunResult,
    /// The guard's decisions when the capped run went through a
    /// `GuardedCapRuntime` (`--guard on`); `None` for unguarded runs.
    pub guard: Option<GuardReport>,
}

impl Eval {
    /// Program-level class: CB iff the flop-weighted majority of kernels
    /// is CB.
    pub fn class(&self) -> Boundedness {
        let (mut cb, mut bb) = (0.0, 0.0);
        for (ch, st) in self.out.characterizations.iter().zip(&self.out.cache_stats) {
            match ch.class {
                Boundedness::ComputeBound => cb += st.flops,
                Boundedness::BandwidthBound => bb += st.flops,
            }
        }
        if cb >= bb {
            Boundedness::ComputeBound
        } else {
            Boundedness::BandwidthBound
        }
    }

    /// Static OI over the whole program (Σ Ω / Σ Q).
    pub fn static_oi(&self) -> f64 {
        let omega: f64 = self.out.cache_stats.iter().map(|s| s.flops).sum();
        let q: f64 = self.out.cache_stats.iter().map(|s| s.q_dram_bytes).sum();
        if q > 0.0 {
            omega / q
        } else {
            f64::INFINITY
        }
    }

    /// Measured OI from the machine counters.
    pub fn measured_oi(&self) -> f64 {
        let omega: f64 = self.counters.iter().map(|c| c.flops as f64).sum();
        let q: f64 = self
            .counters
            .iter()
            .map(|c| (c.dram_fills * c.line_bytes) as f64)
            .sum();
        if q > 0.0 {
            omega / q
        } else {
            f64::INFINITY
        }
    }

    /// Relative time improvement of the capped run vs. baseline
    /// (positive = faster).
    pub fn time_improvement(&self) -> f64 {
        1.0 - self.capped.time_s / self.baseline.time_s
    }

    /// Relative energy improvement (positive = less energy).
    pub fn energy_improvement(&self) -> f64 {
        1.0 - self.capped.energy.total() / self.baseline.energy.total()
    }

    /// Relative EDP improvement (positive = better).
    pub fn edp_improvement(&self) -> f64 {
        1.0 - self.capped.edp() / self.baseline.edp()
    }

    /// Steady-state EDP improvement (switch overheads amortized).
    pub fn steady_edp_improvement(&self) -> f64 {
        1.0 - self.steady.edp() / self.baseline.edp()
    }

    /// Steady-state time improvement.
    pub fn steady_time_improvement(&self) -> f64 {
        1.0 - self.steady.time_s / self.baseline.time_s
    }

    /// Steady-state energy improvement.
    pub fn steady_energy_improvement(&self) -> f64 {
        1.0 - self.steady.energy.total() / self.baseline.energy.total()
    }
}

/// Compiles and "runs" one affine program on one platform, with and
/// without PolyUFC caps.
///
/// # Errors
///
/// Propagates pipeline analysis failures.
pub fn evaluate(
    pipe: &Pipeline,
    engine: &ExecutionEngine,
    program: &AffineProgram,
    name: &str,
) -> Result<Eval, Error> {
    evaluate_guarded(pipe, engine, program, name, false)
}

/// [`evaluate`], optionally routing the capped run through a
/// [`GuardedCapRuntime`] fed with the pipeline's static `T`/`E`
/// predictions. With `guard` off this is exactly the historical
/// evaluation (byte-identical results); with it on, `Eval::capped`
/// carries the guarded run and `Eval::guard` the full decision report.
///
/// # Errors
///
/// Propagates pipeline analysis failures.
pub fn evaluate_guarded(
    pipe: &Pipeline,
    engine: &ExecutionEngine,
    program: &AffineProgram,
    name: &str,
    guard: bool,
) -> Result<Eval, Error> {
    let out = pipe.compile_affine(program)?;
    // Kernel counters come from independent trace simulations;
    // `measure_program` fans them out across cores (input-ordered) and
    // applies the engine's fault plan (pristine by default).
    let counters: Vec<KernelCounters> = engine.measure_program(&out.optimized);
    let (capped, guard_report) = if guard {
        let predictions = pipe.cap_predictions(&out);
        let runtime = GuardedCapRuntime::new(engine);
        let (r, report) = runtime.run_scf(&out.scf, &counters, &predictions);
        (r, Some(report))
    } else {
        (engine.run_scf(&out.scf, &counters), None)
    };
    let baseline = UfsDriver::stock().run_baseline(engine, &counters);
    // Steady state: caps without the switch guard, no switch costs. With
    // the guard disabled the pipeline's cap loop always takes the searched
    // frequency verbatim (fallback kernels already carry the max-frequency
    // reset in their search result), so the steady plan is exactly the
    // per-kernel search outcome — no second `compile_affine` needed.
    let steady_caps_ghz: Vec<f64> = out.search.iter().map(|r| r.f_ghz).collect();
    let mut time = 0.0;
    let mut energy = polyufc_machine::EnergyBreakdown::default();
    let mut weighted_f = 0.0;
    for (c, &f) in counters.iter().zip(&steady_caps_ghz) {
        let r = engine.run_kernel(c, f);
        time += r.time_s;
        energy = energy.add(&r.energy);
        weighted_f += f * r.time_s;
    }
    let steady = RunResult {
        time_s: time,
        energy,
        avg_power_w: energy.total() / time.max(1e-12),
        uncore_ghz: if time > 0.0 { weighted_f / time } else { 0.0 },
        guard: None,
    };
    Ok(Eval {
        name: name.to_string(),
        platform: engine.platform.name.clone(),
        out,
        counters,
        capped,
        steady,
        steady_caps_ghz,
        baseline,
        guard: guard_report,
    })
}

/// Geometric mean of strictly positive values (non-positive entries are
/// clamped to a small epsilon, matching common benchmarking practice for
/// "geomean improvement" over ratios).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let s: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Reads the size preset from argv: either positional (`fig6 large`) or
/// via the `--size` flag (`fig6 --size large`, `fig6 --size=large`).
/// Accepted presets are `mini`, `small`, `large`, `xl` (alias
/// `extralarge`); no argument defaults to large — the evaluation setting.
/// An unrecognized preset is a hard error listing the supported sizes,
/// rather than a silent fall-through to large.
///
/// Other `--flag value` pairs (e.g. fig6's `--only <kernel>`) are skipped,
/// so binaries may parse additional flags from the same argv.
pub fn size_from_args() -> PolybenchSize {
    let mut args = std::env::args().skip(1);
    let mut spelled: Option<String> = None;
    while let Some(a) = args.next() {
        if a == "--size" {
            spelled = args.next();
            break;
        } else if let Some(v) = a.strip_prefix("--size=") {
            spelled = Some(v.to_string());
            break;
        } else if a.starts_with("--") {
            // Another binary-specific flag; skip it and its value.
            if !a.contains('=') {
                args.next();
            }
        } else {
            spelled = Some(a);
            break;
        }
    }
    match spelled.as_deref() {
        None => PolybenchSize::Large,
        Some(s) => parse_size(s).unwrap_or_else(|| {
            eprintln!("unknown size '{s}' (expected mini|small|large|xl|extralarge)");
            std::process::exit(2);
        }),
    }
}

/// Parses one size preset name; `None` if unrecognized.
pub fn parse_size(s: &str) -> Option<PolybenchSize> {
    match s {
        "mini" => Some(PolybenchSize::Mini),
        "small" => Some(PolybenchSize::Small),
        "large" => Some(PolybenchSize::Large),
        "xl" | "extralarge" => Some(PolybenchSize::ExtraLarge),
        _ => None,
    }
}

/// Reports the process-wide measured-counter cache statistics on stderr
/// (stderr so the figure tables on stdout stay byte-identical across
/// runs: the hit/miss split can vary with parallel scheduling when two
/// workers race to measure the same point).
pub fn report_measure_cache() {
    let st = polyufc_machine::measure_cache_stats();
    eprintln!(
        "[measure-cache] {} hits / {} misses ({:.0}% hit rate, {} entries, {} clears)",
        st.hits,
        st.misses,
        st.hit_rate() * 100.0,
        st.len,
        st.evictions
    );
}

/// Reads the value of a `--flag value` / `--flag=value` pair from argv
/// (e.g. fig6's `--only <kernel>`); `None` when the flag is absent.
pub fn flag_from_args(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    let prefix = format!("{flag}=");
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        } else if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

/// Reads the `--fault-plan <spec>` flag from argv into a [`FaultPlan`];
/// absent means pristine (no faults). A malformed spec is a hard error —
/// silently running a robustness experiment without its faults would be
/// worse than refusing to run.
pub fn fault_plan_from_args() -> FaultPlan {
    match flag_from_args("--fault-plan") {
        None => FaultPlan::pristine(),
        Some(spec) => FaultPlan::parse_spec(&spec).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
    }
}

/// Reads the `--guard on|off` flag from argv; absent means off (the
/// historical unguarded path). The flag takes an explicit value because
/// `size_from_args` treats every `--flag` as value-bearing.
pub fn guard_from_args() -> bool {
    match flag_from_args("--guard").as_deref() {
        None | Some("off") | Some("0") | Some("false") => false,
        Some("on") | Some("1") | Some("true") => true,
        Some(other) => {
            eprintln!("--guard: expected on|off, got '{other}'");
            std::process::exit(2);
        }
    }
}

/// Renders a fixed-width table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    println!("{}", line.join("  "));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a fraction as a signed percentage.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_machine::Platform;
    use polyufc_workloads::polybench;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn evaluate_small_gemm() {
        let plat = Platform::broadwell();
        let pipe = Pipeline::new(plat.clone());
        let eng = ExecutionEngine::noiseless(plat);
        let e = evaluate(&pipe, &eng, &polybench::gemm(96), "gemm").unwrap();
        assert_eq!(e.class(), Boundedness::ComputeBound);
        assert!(e.static_oi() > 1.0);
        assert!(e.capped.time_s > 0.0 && e.baseline.time_s > 0.0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.123), "+12.3%");
        assert_eq!(pct(-0.05), "-5.0%");
    }
}
