//! Static-verifier sweep: lints every PolyBench and ML workload at the
//! chosen size, asserts all of them come out clean (the suites must never
//! ship a program the verifier rejects), and reports the lint wall-clock
//! next to the compile time with the in-pipeline verify gate off and on —
//! the overhead column backs the "verification is cheap" claim in
//! EXPERIMENTS.md.
//!
//! Exit status is non-zero if any workload fails any pass, making this a
//! CI gate as well as a benchmark.

use std::time::Instant;

use polyufc::Pipeline;
use polyufc_analysis::{Analyzer, ModelCounts};
use polyufc_bench::{print_table, size_from_args};
use polyufc_cache::{AssocMode, CacheModel};
use polyufc_ir::lower::lower_tensor_to_linalg;
use polyufc_machine::Platform;
use polyufc_workloads::{ml_suite, polybench_suite};

struct Row {
    name: String,
    clean: bool,
    rendered: String,
    diags: usize,
    lint_us: u128,
    compile_off_us: u128,
    compile_on_us: u128,
}

fn main() {
    let size = size_from_args();
    let plat = Platform::broadwell();

    let mut programs: Vec<(String, polyufc_ir::affine::AffineProgram)> = Vec::new();
    for w in polybench_suite(size) {
        programs.push((w.name.to_string(), w.program));
    }
    for w in ml_suite() {
        programs.push((
            w.name.to_string(),
            lower_tensor_to_linalg(&w.graph, w.elem).lower_to_affine(),
        ));
    }

    let model = CacheModel::new(plat.hierarchy.clone(), AssocMode::SetAssociative);
    let line_bytes = plat.hierarchy.line_bytes();
    let rows: Vec<Row> = polyufc_par::par_map(&programs, |(name, program)| {
        // Full lint: structural, bounds, races, plus the model audit when
        // the cache model accepts the program.
        let t0 = Instant::now();
        let report = match model.analyze_program(program) {
            Ok(stats) => {
                let counts: Vec<ModelCounts> = stats
                    .iter()
                    .map(|(kernel, s)| ModelCounts {
                        kernel: kernel.clone(),
                        total_accesses: s.total_accesses,
                        flops: s.flops,
                        cold_lines: s.cold_lines,
                    })
                    .collect();
                Analyzer::new().analyze_with_model(program, &counts, line_bytes)
            }
            Err(_) => Analyzer::new().analyze(program),
        };
        let lint_us = t0.elapsed().as_micros();

        let t0 = Instant::now();
        let off = Pipeline::new(plat.clone())
            .with_verify(false)
            .compile_affine(program);
        let compile_off_us = t0.elapsed().as_micros();
        let t0 = Instant::now();
        let on = Pipeline::new(plat.clone()).compile_affine(program);
        let compile_on_us = t0.elapsed().as_micros();

        Row {
            name: name.clone(),
            clean: report.is_clean() && off.is_ok() && on.is_ok(),
            rendered: report.render_text(),
            diags: report.diagnostics.len(),
            lint_us,
            compile_off_us,
            compile_on_us,
        }
    });

    println!("# Static-verifier sweep ({} workloads)", rows.len());
    let ms = |us: u128| format!("{:.2}", us as f64 / 1000.0);
    let mut table = Vec::new();
    let mut dirty = 0usize;
    let (mut lint_tot, mut off_tot, mut on_tot) = (0u128, 0u128, 0u128);
    for r in &rows {
        let overhead = if r.compile_off_us > 0 {
            format!(
                "{:+.1}%",
                (r.compile_on_us as f64 / r.compile_off_us as f64 - 1.0) * 100.0
            )
        } else {
            "-".into()
        };
        table.push(vec![
            r.name.clone(),
            if r.clean {
                "clean".into()
            } else {
                "DIRTY".into()
            },
            r.diags.to_string(),
            ms(r.lint_us),
            ms(r.compile_off_us),
            ms(r.compile_on_us),
            overhead,
        ]);
        if !r.clean {
            dirty += 1;
        }
        lint_tot += r.lint_us;
        off_tot += r.compile_off_us;
        on_tot += r.compile_on_us;
    }
    print_table(
        &[
            "workload",
            "verdict",
            "diags",
            "lint ms",
            "compile ms",
            "compile+verify ms",
            "overhead",
        ],
        &table,
    );
    println!(
        "total: lint {} ms, compile {} ms, compile+verify {} ms ({:+.1}% overhead)",
        ms(lint_tot),
        ms(off_tot),
        ms(on_tot),
        if off_tot > 0 {
            (on_tot as f64 / off_tot as f64 - 1.0) * 100.0
        } else {
            0.0
        }
    );
    if dirty > 0 {
        eprintln!("{dirty} workload(s) failed the static verifier:");
        for r in rows.iter().filter(|r| !r.clean) {
            eprint!("{}", r.rendered);
        }
        std::process::exit(1);
    }
}
