//! Static-verifier sweep: lints every PolyBench and ML workload at the
//! chosen size, asserts all of them come out clean (the suites must never
//! ship a program the verifier rejects), and reports the lint wall-clock
//! next to the compile time with the in-pipeline verify gate off and on —
//! the overhead column backs the "verification is cheap" claim in
//! EXPERIMENTS.md.
//!
//! Exit status is non-zero if any workload fails any pass, making this a
//! CI gate as well as a benchmark.

use std::time::Instant;

use polyufc::Pipeline;
use polyufc_analysis::{AnalysisStats, Analyzer, ModelCounts};
use polyufc_bench::{flag_from_args, print_table, size_from_args};
use polyufc_cache::{AssocMode, CacheModel};
use polyufc_ir::lower::lower_tensor_to_linalg;
use polyufc_machine::Platform;
use polyufc_workloads::{ml_suite, polybench_suite};

struct Row {
    name: String,
    clean: bool,
    rendered: String,
    diags: usize,
    lint_us: u128,
    compile_off_us: u128,
    compile_on_us: u128,
    stats: AnalysisStats,
}

/// Reads the `--per-pass on|off` flag; absent means off (the historical
/// output). Value-bearing because `size_from_args` treats every `--flag`
/// as taking a value.
fn per_pass_from_args() -> bool {
    match flag_from_args("--per-pass").as_deref() {
        None | Some("off") | Some("0") | Some("false") => false,
        Some("on") | Some("1") | Some("true") => true,
        Some(other) => {
            eprintln!("--per-pass: expected on|off, got '{other}'");
            std::process::exit(2);
        }
    }
}

fn main() {
    let size = size_from_args();
    let per_pass = per_pass_from_args();
    let plat = Platform::broadwell();

    let mut programs: Vec<(String, polyufc_ir::affine::AffineProgram)> = Vec::new();
    for w in polybench_suite(size) {
        programs.push((w.name.to_string(), w.program));
    }
    for w in ml_suite() {
        programs.push((
            w.name.to_string(),
            lower_tensor_to_linalg(&w.graph, w.elem).lower_to_affine(),
        ));
    }

    let model = CacheModel::new(plat.hierarchy.clone(), AssocMode::SetAssociative);
    let line_bytes = plat.hierarchy.line_bytes();
    let rows: Vec<Row> = polyufc_par::par_map(&programs, |(name, program)| {
        // Full lint: structural, bounds, races, plus the model audit when
        // the cache model accepts the program.
        let t0 = Instant::now();
        let report = match model.analyze_program(program) {
            Ok(stats) => {
                let counts: Vec<ModelCounts> = stats
                    .iter()
                    .map(|(kernel, s)| ModelCounts {
                        kernel: kernel.clone(),
                        total_accesses: s.total_accesses,
                        flops: s.flops,
                        cold_lines: s.cold_lines,
                    })
                    .collect();
                Analyzer::new().analyze_with_model(program, &counts, line_bytes)
            }
            Err(_) => Analyzer::new().analyze(program),
        };
        let lint_us = t0.elapsed().as_micros();

        let t0 = Instant::now();
        let off = Pipeline::new(plat.clone())
            .with_verify(false)
            .compile_affine(program);
        let compile_off_us = t0.elapsed().as_micros();
        let t0 = Instant::now();
        let on = Pipeline::new(plat.clone()).compile_affine(program);
        let compile_on_us = t0.elapsed().as_micros();

        Row {
            name: name.clone(),
            clean: report.is_clean() && off.is_ok() && on.is_ok(),
            rendered: report.render_text(),
            diags: report.diagnostics.len(),
            lint_us,
            compile_off_us,
            compile_on_us,
            stats: report.stats,
        }
    });

    println!("# Static-verifier sweep ({} workloads)", rows.len());
    let ms = |us: u128| format!("{:.2}", us as f64 / 1000.0);
    let mut table = Vec::new();
    let mut dirty = 0usize;
    let (mut lint_tot, mut off_tot, mut on_tot) = (0u128, 0u128, 0u128);
    for r in &rows {
        let overhead = if r.compile_off_us > 0 {
            format!(
                "{:+.1}%",
                (r.compile_on_us as f64 / r.compile_off_us as f64 - 1.0) * 100.0
            )
        } else {
            "-".into()
        };
        table.push(vec![
            r.name.clone(),
            if r.clean {
                "clean".into()
            } else {
                "DIRTY".into()
            },
            r.diags.to_string(),
            ms(r.lint_us),
            ms(r.compile_off_us),
            ms(r.compile_on_us),
            overhead,
        ]);
        if !r.clean {
            dirty += 1;
        }
        lint_tot += r.lint_us;
        off_tot += r.compile_off_us;
        on_tot += r.compile_on_us;
    }
    print_table(
        &[
            "workload",
            "verdict",
            "diags",
            "lint ms",
            "compile ms",
            "compile+verify ms",
            "overhead",
        ],
        &table,
    );
    println!(
        "total: lint {} ms, compile {} ms, compile+verify {} ms ({:+.1}% overhead)",
        ms(lint_tot),
        ms(off_tot),
        ms(on_tot),
        if off_tot > 0 {
            (on_tot as f64 / off_tot as f64 - 1.0) * 100.0
        } else {
            0.0
        }
    );
    if per_pass {
        // Per-pass wall-clock breakdown of the full lint, plus the
        // batched-solver accounting (emptiness checks per batch show how
        // much arena setup the batching amortizes).
        println!("\n# Per-pass lint breakdown (µs) and batched-solver accounting");
        let mut table = Vec::new();
        for r in &rows {
            let s = &r.stats;
            table.push(vec![
                r.name.clone(),
                s.verify_us.to_string(),
                s.bounds_us.to_string(),
                s.races_us.to_string(),
                s.audit_us.to_string(),
                format!("{}/{}", s.emptiness_batches, s.emptiness_checks),
                (s.peak_arena_bytes / 1024).to_string(),
            ]);
        }
        print_table(
            &[
                "workload",
                "verify µs",
                "bounds µs",
                "race µs",
                "audit µs",
                "batches/checks",
                "arena KiB",
            ],
            &table,
        );
    }
    if dirty > 0 {
        eprintln!("{dirty} workload(s) failed the static verifier:");
        for r in rows.iter().filter(|r| !r.clean) {
            eprint!("{}", r.rendered);
        }
        std::process::exit(1);
    }
}
