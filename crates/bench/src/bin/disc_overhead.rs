//! Sec. VII-F: cap-switch overheads of inter-kernel capping on the
//! multi-kernel sdpa (Gemma-2) benchmark — per-switch cost (35 µs BDW /
//! 21 µs RPL), cumulative overhead, and the granularity trade-off
//! (tensor-level = 1 cap, linalg-level = per-op caps).

use polyufc::{CapGranularity, MlPolyUfc, Pipeline};
use polyufc_bench::pct;
use polyufc_machine::{measure_kernel, ExecutionEngine, Platform, UfsDriver};
use polyufc_workloads::ml::{sdpa_bert, sdpa_gemma2};

fn main() {
    for w in [sdpa_gemma2(), sdpa_bert()] {
        run_case(&w);
    }
}

fn run_case(w: &polyufc_workloads::MlWorkload) {
    for plat in Platform::all() {
        println!(
            "\n# Sec. VII-F — cap overheads for {} on {}",
            w.name, plat.name
        );
        println!("per-switch cost: {:.0} µs", plat.cap_switch_us);
        let eng = ExecutionEngine::new(plat.clone());
        for gran in [CapGranularity::Linalg, CapGranularity::Tensor] {
            let mut ml = MlPolyUfc::new(Pipeline::new(plat.clone()));
            // Per-kernel caps regardless of kernel length: this harness
            // quantifies the switch overhead itself (the guard would hide
            // it on these short kernels).
            ml.pipeline.cap_switch_guard = 0.0;
            ml.granularity = gran;
            let out = ml.compile(&w.graph, w.elem).expect("analysis");
            let counters: Vec<_> = out
                .optimized
                .kernels
                .iter()
                .map(|k| measure_kernel(&plat, &out.optimized, k))
                .collect();
            let capped = eng.run_scf(&out.scf, &counters);
            let baseline = UfsDriver::stock().run_baseline(&eng, &counters);
            // Count actual switches (cap changes) during execution.
            let mut switches = 0;
            let mut current = None;
            for (cap, _) in out.scf.kernels_with_caps() {
                if cap != current {
                    switches += 1;
                    current = cap;
                }
            }
            let overhead_us = switches as f64 * plat.cap_switch_us;
            println!(
                "{:?} granularity: {} kernels, {} cap calls, {} switches -> {:.0} µs cumulative overhead",
                gran,
                out.scf.kernel_count(),
                out.scf.cap_count(),
                switches,
                overhead_us
            );
            println!(
                "  time {:.3} ms (baseline {:.3} ms), EDP vs baseline: {}",
                capped.time_s * 1e3,
                baseline.time_s * 1e3,
                pct(1.0 - capped.edp() / baseline.edp())
            );
        }
        println!("(paper: ≈1 ms cumulative on BDW / ≈0.8 ms on RPL for its 28-kernel sdpa;");
        println!(" our lowering yields 9 linalg kernels per sdpa, so cumulative overhead scales accordingly)");
    }
}
