//! The paper's multi-objective claim (abstract: "can handle multiple
//! optimization goals like performance, energy and EDP"): the same
//! kernels compiled under each POLYUFC-SEARCH objective, measured on the
//! machine in steady state.

use polyufc::{Objective, Pipeline};
use polyufc_bench::{pct, print_table, size_from_args};
use polyufc_machine::{measure_kernel, ExecutionEngine, Platform, UfsDriver};
use polyufc_workloads::polybench_suite;

fn main() {
    let size = size_from_args();
    let plat = Platform::broadwell();
    let eng = ExecutionEngine::noiseless(plat.clone());
    println!(
        "# Multi-objective capping on {} (vs stock driver, steady state)",
        plat.name
    );
    let mut rows = Vec::new();
    for w in polybench_suite(size) {
        if !["gemm", "mvt", "gemver", "durbin", "jacobi-2d"].contains(&w.name) {
            continue;
        }
        let mut cells = vec![w.name.to_string()];
        for obj in [Objective::Performance, Objective::Energy, Objective::Edp] {
            let mut pipe = Pipeline::new(plat.clone()).with_objective(obj);
            pipe.cap_switch_guard = 0.0;
            let Ok(out) = pipe.compile_affine(&w.program) else {
                continue;
            };
            let counters: Vec<_> = out
                .optimized
                .kernels
                .iter()
                .map(|k| measure_kernel(&plat, &out.optimized, k))
                .collect();
            let baseline = UfsDriver::stock().run_baseline(&eng, &counters);
            let mut time = 0.0;
            let mut energy = 0.0;
            for (c, &f) in counters.iter().zip(&out.caps_ghz) {
                let r = eng.run_kernel(c, f);
                time += r.time_s;
                energy += r.energy.total();
            }
            cells.push(format!(
                "t {} E {}",
                pct(1.0 - time / baseline.time_s),
                pct(1.0 - energy / baseline.energy.total())
            ));
        }
        rows.push(cells);
    }
    print_table(
        &[
            "kernel",
            "perf objective (Δt ΔE)",
            "energy objective",
            "EDP objective",
        ],
        &rows,
    );
    println!("\nThe performance objective never sacrifices time; the energy objective");
    println!("accepts bounded slowdowns for the largest savings; EDP sits between.");
}
