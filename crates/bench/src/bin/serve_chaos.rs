//! Chaos harness for the self-healing `polyufc serve` daemon.
//!
//! Each scenario boots a fresh in-process [`Server`] with a seeded
//! [`ChaosPlan`] and drives well-formed traffic whose correct bodies
//! are known in advance (daemon dispatch is byte-deterministic, so the
//! expected reply is exactly `oneshot_response` for the same request).
//! **Availability** is the fraction of requests answered byte-identical
//! to that pristine body within three retries of typed retryable errors
//! (`deadline_exceeded`, `internal`, `overloaded`). A 10-second read
//! timeout on every client doubles as the deadlock detector: a missing
//! reply aborts the harness, it is never scored as a slow success.
//!
//! Scenarios: `pristine` (chaos off — must be byte-identical with zero
//! retries and zero injections), `slow`, `hung`, `panic`, `socket`,
//! `standard` (the documented mixed matrix), `disconnect` (harness-
//! driven mid-request hangups), `storm` (a SIGUSR1 signal storm over
//! pristine traffic, exercising every EINTR path), and `quarantine`
//! (an always-panicking kernel must trip the circuit breaker into
//! typed `quarantined` rejections).
//!
//! Usage: `serve_chaos [mini|small|large|xl] [BENCH_chaos.json]`. At
//! `mini` the gates are enforced (exit 1): fault-free scenarios need
//! availability 1.0, faulted ones ≥ 99%, the hung scenario must
//! replace at least one stalled worker, and post-chaos recovery probes
//! must round-trip a cold compile promptly.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use polyufc_bench::{print_table, size_from_args};
use polyufc_serve::json::push_escaped;
use polyufc_serve::{
    oneshot_response, ChaosPlan, CompileOptions, CompileRequest, Engine, EngineConfig, Listen,
    Server, ServerConfig, ShutdownHandle, SourceFormat,
};
use polyufc_workloads::{polybench_suite, PolybenchSize};

/// Workloads mirroring `serve_loadtest`: blas, composition, stencil.
const WORKLOADS: &[&str] = &["gemm", "mvt", "jacobi-2d"];

/// Client threads per scenario.
const CLIENTS: usize = 4;

/// Retries a client grants a request that drew a typed retryable error.
const RETRIES: usize = 3;

/// Master seed for every scenario's fault plan (deterministic runs).
const SEED: u64 = 0xC4A05;

/// One wire request line for a workload source at a given epsilon.
fn compile_line(source: &str, epsilon: f64) -> String {
    let mut s = String::with_capacity(source.len() + 96);
    s.push_str("{\"op\":\"compile\",\"format\":\"ir\",\"epsilon\":");
    s.push_str(&format!("{epsilon}"));
    s.push_str(",\"source\":");
    push_escaped(&mut s, source);
    s.push('}');
    s
}

/// The pristine body the daemon must produce for (source, epsilon).
fn expected_body(source: &str, epsilon: f64) -> String {
    oneshot_response(&CompileRequest {
        format: SourceFormat::TextualIr,
        source: source.to_string(),
        name: "request".to_string(),
        opts: CompileOptions {
            epsilon,
            ..CompileOptions::default()
        },
    })
}

/// A daemon started for one scenario, drained on drop.
struct Daemon {
    addr: String,
    engine: Arc<Engine>,
    stop: ShutdownHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    fn start(cfg: EngineConfig) -> Daemon {
        let server = Server::bind(&ServerConfig {
            listen: Listen::Tcp("127.0.0.1:0".to_string()),
            engine: cfg,
        })
        .expect("bind chaos daemon");
        let addr = server.local_addr().expect("tcp addr").to_string();
        let engine = server.engine();
        let stop = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run().expect("server run"));
        Daemon {
            addr,
            engine,
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop.shutdown();
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread");
        }
    }
}

/// Typed errors a client may retry; anything else is a scored failure.
fn is_retryable(reply: &str) -> bool {
    reply.contains("\"code\":\"deadline_exceeded\"")
        || reply.contains("\"code\":\"internal\"")
        || reply.contains("\"code\":\"overloaded\"")
}

/// Drives `(line, expected)` pairs across [`CLIENTS`] connections, one
/// request in flight per connection, retrying typed retryable errors up
/// to [`RETRIES`] times. Returns (ok, retried, failed, wall seconds).
fn drive_chaos(addr: &str, items: &[(String, String)]) -> (usize, usize, usize, f64) {
    let items = Arc::new(items.to_vec());
    let tallies: Arc<Mutex<(usize, usize, usize)>> = Arc::new(Mutex::new((0, 0, 0)));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let items = Arc::clone(&items);
        let tallies = Arc::clone(&tallies);
        let addr = addr.to_string();
        handles.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(&addr).expect("connect");
            stream.set_nodelay(true).ok();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .expect("read timeout");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let (mut ok, mut retried, mut failed) = (0usize, 0usize, 0usize);
            let mut reply = String::new();
            for (line, expected) in items.iter().skip(c).step_by(CLIENTS) {
                let mut done = false;
                for attempt in 0..=RETRIES {
                    writer.write_all(line.as_bytes()).expect("send");
                    writer.write_all(b"\n").expect("send");
                    reply.clear();
                    match reader.read_line(&mut reply) {
                        Ok(0) => panic!("daemon closed the connection mid-scenario"),
                        Ok(_) => {}
                        // The deadlock detector: a reply that never comes
                        // is a harness abort, not a scored failure.
                        Err(e) => panic!("no reply within 10s (deadlock?): {e}"),
                    }
                    let got = reply.trim_end();
                    if got == expected {
                        ok += 1;
                        if attempt > 0 {
                            retried += 1;
                        }
                        done = true;
                        break;
                    }
                    if !is_retryable(got) {
                        break;
                    }
                }
                if !done {
                    failed += 1;
                }
            }
            let mut t = tallies.lock().unwrap();
            t.0 += ok;
            t.1 += retried;
            t.2 += failed;
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    let wall = t0.elapsed().as_secs_f64();
    let (ok, retried, failed) = *tallies.lock().unwrap();
    (ok, retried, failed, wall)
}

/// Per-scenario results: table row, gate inputs, JSON fields.
struct Scenario {
    name: &'static str,
    requests: usize,
    retried: usize,
    failed: usize,
    availability: f64,
    min_availability: f64,
    wall_s: f64,
    deadlines: u64,
    workers_replaced: u64,
    quarantined_total: u64,
    injections: u64,
}

impl Scenario {
    fn passed(&self) -> bool {
        self.availability >= self.min_availability
    }
}

fn scenario(
    name: &'static str,
    min_availability: f64,
    daemon: &Daemon,
    items: &[(String, String)],
) -> Scenario {
    let (ok, retried, failed, wall_s) = drive_chaos(&daemon.addr, items);
    assert_eq!(ok + failed, items.len(), "every request must be scored");
    let cache = daemon.engine.cache_stats();
    Scenario {
        name,
        requests: items.len(),
        retried,
        failed,
        availability: ok as f64 / items.len().max(1) as f64,
        min_availability,
        wall_s,
        deadlines: daemon.engine.deadlines_fired(),
        workers_replaced: daemon.engine.workers_replaced(),
        quarantined_total: cache.quarantined_total,
        injections: daemon.engine.chaos().injections_charged(),
    }
}

/// Sends one fresh cold compile and requires a prompt byte-correct
/// reply (with retries): proves the daemon recovered from the chaos it
/// just absorbed rather than limping on wedged workers.
fn recovery_probe(daemon: &Daemon, source: &str, epsilon: f64) -> bool {
    let items = vec![(
        compile_line(source, epsilon),
        expected_body(source, epsilon),
    )];
    let t0 = Instant::now();
    let (ok, _, _, _) = drive_chaos(&daemon.addr, &items);
    ok == 1 && t0.elapsed() < Duration::from_secs(5)
}

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn kill(pid: i32, sig: i32) -> i32;
    fn getpid() -> i32;
}

extern "C" fn sigusr1_noop(_sig: i32) {}

const SIGUSR1: i32 = 10;

fn main() {
    // Injected worker panics are contained by the engine (the worker is
    // caught, the flight gets a typed error); silence their backtraces
    // so real failures stand out in CI logs.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("chaos: injected"));
        if !injected {
            default_hook(info);
        }
    }));

    let size = size_from_args();
    let json_path = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .nth(1);

    let sources: Vec<String> = polybench_suite(size)
        .into_iter()
        .filter(|w| WORKLOADS.contains(&w.name))
        .map(|w| format!("{}", w.program))
        .collect();
    assert_eq!(
        sources.len(),
        WORKLOADS.len(),
        "chaos workloads missing from the polybench suite"
    );

    // Expected bodies are memoized across scenarios: every scenario
    // reuses the same epsilon series, so each distinct request pays one
    // oneshot compile here and zero during the timed drives.
    let memo: Mutex<HashMap<String, Arc<String>>> = Mutex::new(HashMap::new());
    let pair = |source: &str, epsilon: f64| -> (String, String) {
        let line = compile_line(source, epsilon);
        let mut m = memo.lock().unwrap();
        let body = m
            .entry(line.clone())
            .or_insert_with(|| Arc::new(expected_body(source, epsilon)))
            .clone();
        (line, body.as_str().to_string())
    };
    // Cold requests get distinct artifact keys via epsilon perturbation
    // (every one pays a compile — the fault injection point); warm
    // requests repeat the base epsilon and ride the artifact cache.
    let traffic = |cold_per_source: usize, warm_reps: usize| -> Vec<(String, String)> {
        let mut items = Vec::new();
        let rounds = cold_per_source.max(warm_reps);
        for r in 0..rounds {
            for src in &sources {
                if r < cold_per_source {
                    items.push(pair(src, 1e-3 * (1.0 + (r + 1) as f64 * 1e-6)));
                }
                if r < warm_reps {
                    items.push(pair(src, 1e-3));
                }
            }
        }
        items
    };

    // Fixed worker count so fault arithmetic (how many wedged workers
    // the deadline watchdog must replace) does not depend on the box.
    let base_cfg = || {
        let mut cfg = EngineConfig::default();
        cfg.workers = 4;
        cfg.queue_cap = cfg.queue_cap.max(1024);
        cfg
    };
    let deadline = Duration::from_millis(250);

    let light = traffic(8, 8);
    let heavy = traffic(34, 16);

    let mut scenarios: Vec<Scenario> = Vec::new();
    let mut recovery_ok = true;

    // pristine: chaos off must be byte-identical with zero retries.
    {
        let d = Daemon::start(base_cfg());
        let mut s = scenario("pristine", 1.0, &d, &light);
        if s.retried != 0 || s.injections != 0 {
            eprintln!(
                "FAIL: pristine scenario saw {} retries / {} injections",
                s.retried, s.injections
            );
            s.availability = 0.0;
        }
        scenarios.push(s);
    }

    // slow: latency injection only; nothing trips the deadline.
    {
        let mut cfg = base_cfg();
        cfg.chaos = ChaosPlan::slow_compiles(SEED, 0.25, 8);
        cfg.deadline = Some(Duration::from_secs(2));
        let d = Daemon::start(cfg);
        scenarios.push(scenario("slow", 1.0, &d, &light));
    }

    // hung: wedged workers must be deadline-aborted, detached, and
    // replaced; retried requests then land on healthy workers.
    {
        let mut cfg = base_cfg();
        cfg.chaos = ChaosPlan::hung_compiles(SEED ^ 1, 0.08, 1000);
        cfg.deadline = Some(deadline);
        cfg.quarantine_threshold = 10;
        let d = Daemon::start(cfg);
        let s = scenario("hung", 0.99, &d, &heavy);
        if s.workers_replaced == 0 {
            eprintln!("FAIL: hung scenario replaced no workers (no hang injected?)");
            recovery_ok = false;
        }
        if !recovery_probe(&d, &sources[0], 1e-3 * (1.0 + 0.5e-6)) {
            eprintln!("FAIL: no prompt cold compile after the hung scenario");
            recovery_ok = false;
        }
        scenarios.push(s);
    }

    // panic: contained worker panics surface as typed `internal` errors
    // and retries succeed against rebuilt sessions.
    {
        let mut cfg = base_cfg();
        cfg.chaos = ChaosPlan::panicking_compiles(SEED ^ 2, 0.08);
        cfg.quarantine_threshold = 10;
        let d = Daemon::start(cfg);
        scenarios.push(scenario("panic", 0.99, &d, &heavy));
    }

    // socket: short reads/writes drag the reactor through every
    // partial-I/O resume path; replies must stay byte-perfect.
    {
        let mut cfg = base_cfg();
        cfg.chaos = ChaosPlan::socket_faults(SEED ^ 3, 0.35);
        let d = Daemon::start(cfg);
        scenarios.push(scenario("socket", 1.0, &d, &light));
    }

    // standard: the documented mixed matrix, everything at once.
    {
        let mut cfg = base_cfg();
        cfg.chaos = ChaosPlan::standard_matrix(SEED ^ 4);
        cfg.deadline = Some(deadline);
        cfg.quarantine_threshold = 10;
        let d = Daemon::start(cfg);
        let s = scenario("standard", 0.99, &d, &heavy);
        if !recovery_probe(&d, &sources[1], 1e-3 * (1.0 + 0.5e-6)) {
            eprintln!("FAIL: no prompt cold compile after the standard matrix");
            recovery_ok = false;
        }
        scenarios.push(s);
    }

    // disconnect: abrupt client hangups (half a request; a pipelined
    // window abandoned before its replies) must not wedge the reactor.
    {
        let d = Daemon::start(base_cfg());
        for k in 0..12 {
            if let Ok(mut s) = TcpStream::connect(&d.addr) {
                let line = light[k % light.len()].0.as_bytes();
                let _ = s.write_all(&line[..line.len() / 2]);
            }
        }
        if let Ok(mut s) = TcpStream::connect(&d.addr) {
            let mut batch = String::new();
            for (line, _) in light.iter().take(8) {
                batch.push_str(line);
                batch.push('\n');
            }
            let _ = s.write_all(batch.as_bytes());
        }
        std::thread::sleep(Duration::from_millis(50));
        scenarios.push(scenario("disconnect", 1.0, &d, &light));
    }

    // storm: a SIGUSR1 storm peppers every thread with EINTR while
    // pristine traffic flows; glibc restarts reads, the reactor's
    // epoll/accept/eventfd retry loops must absorb the rest.
    {
        unsafe {
            signal(SIGUSR1, sigusr1_noop as *const () as usize);
        }
        let d = Daemon::start(base_cfg());
        let stop = Arc::new(AtomicBool::new(false));
        let storm = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    unsafe {
                        kill(getpid(), SIGUSR1);
                    }
                    std::thread::sleep(Duration::from_micros(250));
                }
            })
        };
        let s = scenario("storm", 1.0, &d, &light);
        stop.store(true, Ordering::Relaxed);
        storm.join().expect("storm thread");
        if !recovery_probe(&d, &sources[2], 1e-3 * (1.0 + 0.5e-6)) {
            eprintln!("FAIL: no prompt cold compile after the signal storm");
            recovery_ok = false;
        }
        scenarios.push(s);
    }

    // quarantine: a kernel that panics on every compile must trip the
    // circuit breaker into cached typed rejections after N strikes.
    {
        let mut cfg = base_cfg();
        cfg.chaos = ChaosPlan::panicking_compiles(SEED ^ 5, 1.0);
        cfg.quarantine_threshold = 2;
        let d = Daemon::start(cfg);
        let line = compile_line(&sources[0], 1e-3 * (1.0 + 0.25e-6));
        let stream = TcpStream::connect(&d.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let t0 = Instant::now();
        let mut good = true;
        let mut reply = String::new();
        for (i, want) in ["internal", "internal", "quarantined", "quarantined"]
            .iter()
            .enumerate()
        {
            writer.write_all(line.as_bytes()).expect("send");
            writer.write_all(b"\n").expect("send");
            reply.clear();
            reader.read_line(&mut reply).expect("reply");
            let code = format!("\"code\":\"{want}\"");
            if !reply.contains(&code) {
                eprintln!(
                    "FAIL: quarantine request {i} wanted {want}, got {}",
                    reply.trim_end()
                );
                good = false;
            }
        }
        let cache = d.engine.cache_stats();
        if cache.quarantined < 1 || cache.quarantine_hits < 2 {
            eprintln!(
                "FAIL: quarantine counters quarantined={} hits={}",
                cache.quarantined, cache.quarantine_hits
            );
            good = false;
        }
        scenarios.push(Scenario {
            name: "quarantine",
            requests: 4,
            retried: 0,
            failed: if good { 0 } else { 4 },
            availability: if good { 1.0 } else { 0.0 },
            min_availability: 1.0,
            wall_s: t0.elapsed().as_secs_f64(),
            deadlines: d.engine.deadlines_fired(),
            workers_replaced: d.engine.workers_replaced(),
            quarantined_total: cache.quarantined_total,
            injections: d.engine.chaos().injections_charged(),
        });
    }

    let availability_ok = scenarios.iter().all(|s| s.passed());

    println!("== polyufc serve chaos matrix ({CLIENTS} clients, seed {SEED:#x}) ==");
    let rows: Vec<Vec<String>> = scenarios
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.requests.to_string(),
                format!("{:.4}", s.availability),
                s.retried.to_string(),
                s.failed.to_string(),
                s.injections.to_string(),
                s.deadlines.to_string(),
                s.workers_replaced.to_string(),
                s.quarantined_total.to_string(),
                format!("{:.2}", s.wall_s),
            ]
        })
        .collect();
    print_table(
        &[
            "scenario",
            "requests",
            "availability",
            "retried",
            "failed",
            "injections",
            "deadlines",
            "replaced",
            "quarantined",
            "wall s",
        ],
        &rows,
    );
    println!("availability_ok: {availability_ok}");
    println!("recovery_ok: {recovery_ok}");

    if let Some(path) = json_path {
        // Hand-rolled JSON, like bench_harness: the offline serde
        // stand-in has no serializer and the schema is flat.
        let mut json = String::new();
        json.push_str("{\n  \"schema\": \"polyufc-bench-chaos/1\",\n");
        json.push_str(&format!("  \"seed\": {SEED},\n"));
        json.push_str(&format!("  \"clients\": {CLIENTS},\n"));
        json.push_str(&format!("  \"retries\": {RETRIES},\n"));
        json.push_str("  \"scenarios\": [\n");
        for (i, s) in scenarios.iter().enumerate() {
            let comma = if i + 1 < scenarios.len() { "," } else { "" };
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"requests\": {}, \"availability\": {:.4}, \"retried\": {}, \"failed\": {}, \"injections\": {}, \"deadlines\": {}, \"workers_replaced\": {}, \"quarantined_total\": {}, \"wall_s\": {:.3}}}{comma}\n",
                s.name,
                s.requests,
                s.availability,
                s.retried,
                s.failed,
                s.injections,
                s.deadlines,
                s.workers_replaced,
                s.quarantined_total,
                s.wall_s,
            ));
        }
        json.push_str("  ],\n");
        json.push_str(&format!("  \"availability_ok\": {availability_ok},\n"));
        json.push_str(&format!("  \"recovery_ok\": {recovery_ok}\n"));
        json.push_str("}\n");
        std::fs::write(&path, json).expect("write chaos bench json");
        println!("wrote {path}");
    }

    if matches!(size, PolybenchSize::Mini) && (!availability_ok || !recovery_ok) {
        std::process::exit(1);
    }
}
