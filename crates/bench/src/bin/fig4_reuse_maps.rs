//! Fig. 4: forward/backward reuse maps of the example two-statement
//! affine program, computed with the exact Presburger formulation
//! (access maps with line/set dimensions, lexicographic orders), and the
//! resulting miss counts validated against the trace simulator.

use polyufc_cache::exact::analyze_exact;
use polyufc_cache::{CacheHierarchy, CacheLevelConfig, CacheSim};
use polyufc_ir::affine::{Access, AffineKernel, AffineProgram, Loop, Statement};
use polyufc_ir::types::ElemType;
use polyufc_presburger::LinExpr;

fn main() {
    // Code 4(a): s0 reads B[d], s1 writes B[d+1].
    let n = 16i64;
    let mut p = AffineProgram::new("fig4");
    let b = p.add_array("B", vec![n as usize + 1], ElemType::F64);
    p.kernels.push(AffineKernel {
        name: "fig4".into(),
        loops: vec![Loop::range(n)],
        statements: vec![
            Statement {
                name: "s0".into(),
                accesses: vec![Access::read(b, vec![LinExpr::var(0)])],
                flops: 1,
            },
            Statement {
                name: "s1".into(),
                accesses: vec![Access::write(
                    b,
                    vec![LinExpr::var(0) + LinExpr::constant(1)],
                )],
                flops: 1,
            },
        ],
    });

    let level = CacheLevelConfig {
        size_bytes: 4 * 64,
        line_bytes: 64,
        assoc: 2,
        shared: false,
    };
    println!("# Fig. 4 — exact reuse analysis of the example program");
    println!("cache level: {level}");
    println!("\naccess relation {{ (d, pos) -> (line, set) }}:");
    let ex = analyze_exact(&p, &p.kernels[0], &level, 100_000).expect("exact analysis");
    for (t, line, set) in &ex.trace {
        println!("  S{}(d={})  ->  line {line}, set {set}", t[1], t[0]);
    }
    println!("\nforward reuse pairs F (next access to the same line):");
    for (a, bb) in &ex.forward_pairs {
        println!("  S{}(d={})  ->  S{}(d={})", a[1], a[0], bb[1], bb[0]);
    }
    println!("\nbackward reuse pairs B (previous access to the same line):");
    for (a, bb) in ex.backward_pairs.iter().take(6) {
        println!("  S{}(d={})  ->  S{}(d={})", a[1], a[0], bb[1], bb[0]);
    }
    if ex.backward_pairs.len() > 6 {
        println!("  ... ({} total)", ex.backward_pairs.len());
    }
    println!("\ncold misses      = {}", ex.cold_misses);
    println!("capacity/conflict = {}", ex.capacity_conflict_misses);
    println!("total misses      = {}", ex.total_misses());

    let h = CacheHierarchy::new(vec![level]);
    let mut sim = CacheSim::new(&h, &p);
    polyufc_ir::interp::interpret_program(&p, &mut sim);
    println!("\ntrace simulator   = {} misses", sim.stats.misses[0]);
    assert_eq!(
        ex.total_misses(),
        sim.stats.misses[0],
        "exact model must match simulation"
    );
    println!("exact formulation matches the simulator. ✓");
}
