//! Fig. 7: time, energy, and EDP of PolyUFC-capped programs vs. the stock
//! Intel UFS driver baseline, on both platforms, over the full evaluation
//! suite; PolyBench geomean EDP improvement per platform (paper: 12% on
//! BDW, 10.6% on RPL; up to 42% CB / 54% BB overall, ε = 1e-3).

use polyufc::Pipeline;
use polyufc_bench::{
    evaluate_guarded, fault_plan_from_args, geomean, guard_from_args, pct, print_table,
    size_from_args,
};
use polyufc_ir::lower::lower_tensor_to_linalg;
use polyufc_machine::{ExecutionEngine, Platform};
use polyufc_workloads::{ml_suite, polybench_suite};

fn main() {
    let size = size_from_args();
    let fault = fault_plan_from_args();
    let guard = guard_from_args();
    for plat in Platform::all() {
        let pipe = Pipeline::new(plat.clone());
        let eng = ExecutionEngine::new(plat.clone()).with_fault_plan(fault.clone());
        println!(
            "\n# Fig. 7 — vs. Intel UFS baseline on {} (ε = 1e-3)",
            plat.name
        );
        if !fault.is_pristine() {
            println!("(fault plan: {})", fault.spec_string());
        }

        let mut rows = Vec::new();
        let mut pb_edp_ratio = Vec::new();
        let mut best_cb: (f64, String) = (0.0, String::new());
        let mut best_bb: (f64, String) = (0.0, String::new());

        let mut programs: Vec<(String, bool, polyufc_ir::affine::AffineProgram)> = Vec::new();
        for w in polybench_suite(size) {
            programs.push((w.name.to_string(), true, w.program));
        }
        for w in ml_suite() {
            programs.push((
                w.name.to_string(),
                false,
                lower_tensor_to_linalg(&w.graph, w.elem).lower_to_affine(),
            ));
        }

        // Independent evaluation points: fan out, then build rows from the
        // input-ordered results so the table is byte-identical to a serial
        // run.
        let evals = polyufc_par::par_map(&programs, |(name, _, program)| {
            evaluate_guarded(&pipe, &eng, program, name, guard)
        });
        let mut guard_lines = Vec::new();
        for ((name, is_pb, _), result) in programs.iter().zip(evals) {
            let e = match result {
                Ok(e) => e,
                Err(err) => {
                    eprintln!("skipping {name}: {err}");
                    continue;
                }
            };
            let caps: Vec<String> = e
                .steady_caps_ghz
                .iter()
                .map(|f| format!("{f:.1}"))
                .collect();
            let edp_impr = e.steady_edp_improvement();
            if *is_pb {
                pb_edp_ratio.push(e.steady.edp() / e.baseline.edp());
            }
            let class = e.class();
            match class {
                polyufc::Boundedness::ComputeBound if edp_impr > best_cb.0 => {
                    best_cb = (edp_impr, name.clone());
                }
                polyufc::Boundedness::BandwidthBound if edp_impr > best_bb.0 => {
                    best_bb = (edp_impr, name.clone());
                }
                _ => {}
            }
            if let Some(rep) = &e.guard {
                guard_lines.push(format!("  {:<20} {}", name, rep.one_line()));
            }
            rows.push(vec![
                name.clone(),
                format!("{class}"),
                summarize_caps(&caps),
                pct(e.steady_time_improvement()),
                pct(e.steady_energy_improvement()),
                pct(edp_impr),
                pct(e.edp_improvement()),
            ]);
        }
        print_table(
            &[
                "kernel",
                "class",
                "caps (GHz)",
                "Δtime",
                "Δenergy",
                "ΔEDP",
                "ΔEDP(deploy)",
            ],
            &rows,
        );
        println!(
            "\nPolyBench geomean EDP improvement (steady state): {} (paper: 12% BDW, 10.6% RPL)",
            pct(1.0 - geomean(&pb_edp_ratio))
        );
        println!("(`deploy` includes cap-switch overheads on these scaled-down kernels;");
        println!(" the paper's kernels run for seconds, making the steady-state column the comparable one)");
        println!("best CB improvement: {} ({})", pct(best_cb.0), best_cb.1);
        println!("best BB improvement: {} ({})", pct(best_bb.0), best_bb.1);
        if guard {
            println!("\n## Guard decisions ({})", plat.name);
            for line in &guard_lines {
                println!("{line}");
            }
        }
    }
    polyufc_bench::report_measure_cache();
}

fn summarize_caps(caps: &[String]) -> String {
    if caps.len() <= 3 {
        caps.join(",")
    } else {
        let uniq: std::collections::BTreeSet<_> = caps.iter().collect();
        format!(
            "{} kernels, caps {{{}}}",
            caps.len(),
            uniq.into_iter().cloned().collect::<Vec<_>>().join(",")
        )
    }
}
