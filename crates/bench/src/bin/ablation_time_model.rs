//! Ablation: the paper's additive execution-time model (Eqn. 2,
//! `T = T^Ω + T^Q`) vs. the bounded-overlap default — prediction error
//! against the machine and the effect on chosen caps.

use polyufc::{ParametricModel, Pipeline};
use polyufc_bench::{print_table, size_from_args};
use polyufc_machine::{measure_kernel, ExecutionEngine, Platform};
use polyufc_workloads::polybench_suite;

fn main() {
    let size = size_from_args();
    let plat = Platform::broadwell();
    let pipe = Pipeline::new(plat.clone());
    let eng = ExecutionEngine::noiseless(plat.clone());
    let conc = plat.cores as f64;
    let f = plat.uncore_max_ghz;

    println!(
        "# Ablation — additive (paper Eqn. 2) vs overlap time model on {}",
        plat.name
    );
    let mut rows = Vec::new();
    let mut err_add = Vec::new();
    let mut err_ovl = Vec::new();
    for w in polybench_suite(size) {
        let out = match pipe.compile_affine(&w.program) {
            Ok(o) => o,
            Err(_) => continue,
        };
        let mut t_hw = 0.0;
        let mut t_add = 0.0;
        let mut t_ovl = 0.0;
        for (k, st) in out.optimized.kernels.iter().zip(&out.cache_stats) {
            let c = measure_kernel(&plat, &out.optimized, k);
            t_hw += eng.run_kernel(&c, f).time_s;
            let pm = ParametricModel::new(&pipe.roofline, st, k.outer_parallel().is_some(), conc);
            t_add += pm.exec_time_additive(f);
            t_ovl += pm.exec_time(f);
        }
        let ea = (t_add / t_hw - 1.0).abs();
        let eo = (t_ovl / t_hw - 1.0).abs();
        err_add.push(ea);
        err_ovl.push(eo);
        rows.push(vec![
            w.name.to_string(),
            format!("{:.3e}", t_hw),
            format!("{:.3e} ({:+.0}%)", t_add, (t_add / t_hw - 1.0) * 100.0),
            format!("{:.3e} ({:+.0}%)", t_ovl, (t_ovl / t_hw - 1.0) * 100.0),
        ]);
    }
    print_table(&["kernel", "t machine", "t additive", "t overlap"], &rows);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nmean |error|: additive {:.1}%, overlap {:.1}%",
        mean(&err_add) * 100.0,
        mean(&err_ovl) * 100.0
    );
    println!("(the overlap model is the default; the additive Eqn. 2 over-penalizes CB kernels");
    println!(" at low uncore frequencies and biases the search toward higher caps)");
}
