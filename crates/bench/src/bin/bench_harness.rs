//! Meta-harness: runs the figure/table harness binaries, times each one,
//! and emits `BENCH_harness.json` with per-harness wall-clock so the
//! suite's performance trajectory is tracked PR-over-PR in CI.
//!
//! Usage: `bench_harness [mini|small|large|xl] [out.json]` — the size
//! preset is forwarded to every harness (CI uses `mini` to stay fast).
//! Each harness runs under a wall-clock deadline (default 900 s, override
//! with `POLYUFC_HARNESS_TIMEOUT_S`); a harness that exceeds it is killed
//! and recorded with status `timeout` so one hang cannot stall the suite.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// The harnesses whose end-to-end wall-clock the perf trajectory tracks —
/// the parallel-evaluation suite plus the cold-count microbenchmark.
const HARNESSES: &[&str] = &[
    "fig1_freq_sweep",
    "fig6_characterization",
    "fig7_edp",
    "table4_compile_time",
    "baseline_dufs",
    "robustness_matrix",
    "count_microbench",
    "lint_sweep",
    "sim_microbench",
    "serve_loadtest",
    "serve_chaos",
];

/// Default per-harness wall-clock deadline, seconds. Generous: the `xl`
/// preset legitimately runs for minutes; the deadline exists to catch
/// hangs, not slow-but-progressing runs.
const DEFAULT_TIMEOUT_S: u64 = 900;

/// Runs one harness binary to completion or the deadline, whichever comes
/// first. Returns (wall-clock seconds, status string).
fn run_with_deadline(bin: &PathBuf, size: &str, deadline: Duration) -> (f64, String) {
    let t0 = Instant::now();
    let mut child = match Command::new(bin)
        .arg(size)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => return (t0.elapsed().as_secs_f64(), format!("spawn failed: {e}")),
    };
    loop {
        match child.try_wait() {
            Ok(Some(s)) => {
                let wall = t0.elapsed().as_secs_f64();
                let status = if s.success() {
                    "ok".to_string()
                } else {
                    format!("exit {}", s.code().unwrap_or(-1))
                };
                return (wall, status);
            }
            Ok(None) => {
                if t0.elapsed() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return (t0.elapsed().as_secs_f64(), "timeout".to_string());
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return (t0.elapsed().as_secs_f64(), format!("wait failed: {e}"));
            }
        }
    }
}

fn main() {
    let size = match std::env::args().nth(1).as_deref() {
        Some("mini") | None => "mini",
        Some("small") => "small",
        Some("large") => "large",
        Some("xl") | Some("extralarge") => "xl",
        Some(other) => {
            eprintln!("unknown size '{other}' (expected mini|small|large|xl)");
            std::process::exit(2);
        }
    };
    let out_path = std::env::args()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| "BENCH_harness.json".into());

    // Sibling binaries live next to this one in target/<profile>/.
    let bin_dir: PathBuf = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();

    let deadline = Duration::from_secs(
        std::env::var("POLYUFC_HARNESS_TIMEOUT_S")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_TIMEOUT_S),
    );

    let mut entries = Vec::new();
    let t_suite = Instant::now();
    for name in HARNESSES {
        let bin = bin_dir.join(name);
        if !bin.exists() {
            eprintln!("{name}: missing (build with `cargo build --release` first)");
            entries.push((name.to_string(), 0.0, "missing".to_string()));
            continue;
        }
        let (wall, status) = run_with_deadline(&bin, size, deadline);
        println!("{name:<24} {wall:>8.2}s  {status}");
        entries.push((name.to_string(), wall, status));
    }
    let total = t_suite.elapsed().as_secs_f64();

    // Hand-rolled JSON: the offline serde stand-in has no serializer, and
    // the schema is flat enough not to need one.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"polyufc-bench-harness/1\",\n");
    json.push_str(&format!("  \"size\": \"{size}\",\n"));
    json.push_str(&format!(
        "  \"threads\": {},\n",
        polyufc_par::worker_count()
    ));
    json.push_str(&format!("  \"total_wall_s\": {total:.3},\n"));
    json.push_str("  \"harnesses\": [\n");
    for (i, (name, wall, status)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"wall_s\": {wall:.3}, \"status\": \"{status}\"}}{comma}\n"
        ));
    }
    json.push_str("  ]\n}\n");

    let mut f = std::fs::File::create(&out_path).expect("create BENCH_harness.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_harness.json");
    println!("\nwrote {} ({total:.2}s total)", out_path.display());

    if entries.iter().any(|(_, _, s)| s != "ok" && s != "missing") {
        std::process::exit(1);
    }
}
