//! Robustness matrix: seeded fault scenarios × {unguarded, guarded}
//! capped runs, each compared against the stock UFS driver under the
//! *same* faults. The table quantifies the guarded runtime's contract:
//! under injected counter noise, dropped/stuck cap writes, thermal
//! throttling, and flaky measurement reads, guarded EDP stays within a
//! small bound of the stock governor (graceful degradation), while the
//! unguarded run can be arbitrarily hurt by a cap that never landed.
//!
//! Usage: `robustness_matrix [mini|small|large|xl]` (seeds are fixed at
//! 42, so the table is reproducible run-to-run).

use polyufc::Pipeline;
use polyufc_bench::{pct, print_table, size_from_args};
use polyufc_ir::lower::lower_tensor_to_linalg;
use polyufc_machine::{ExecutionEngine, FaultPlan, GuardedCapRuntime, Platform, UfsDriver};
use polyufc_workloads::ml::sdpa_bert;
use polyufc_workloads::polybench;

/// The standard scenario set (all seeded at 42): a clean control row and
/// one scenario per fault class, plus the combined standard matrix. The
/// third field is the enforced guarded-EDP bound vs stock (as a ratio):
///
/// * recoverable scenarios (clean/noise/standard/thermal) get the tight
///   10% degradation bound — retries recover dropped writes, so the
///   guard should track (or beat) the stock driver;
/// * `stuck` (100% stuck writes) is unrecoverable by construction: every
///   capped kernel pays the full retry + release overhead before running
///   at stock frequency. On this harness's millisecond-scale kernels
///   that overhead is a visible fraction (bounded at 25%); the paper's
///   seconds-scale kernels amortize it below 0.1%;
/// * `flaky` is informational only (`None`): a timed-out measurement
///   stalls the *observed* wall-clock itself, and the stall hits stock
///   and capped runs at different frequency points, so their EDPs are
///   incomparable by construction, not by any fault of the guard.
const SCENARIOS: &[(&str, &str, Option<f64>)] = &[
    ("clean", "pristine", Some(1.10)),
    ("noise", "seed=42,noise=0.05,outlier=0.02", Some(1.10)),
    ("standard", "standard,seed=42", Some(1.10)),
    ("stuck", "stuck,seed=42", Some(1.25)),
    ("thermal", "thermal,seed=42", Some(1.10)),
    ("flaky", "flaky,seed=42", None),
];

fn main() {
    let size = size_from_args();
    let plat = Platform::broadwell();
    let pipe = Pipeline::new(plat.clone());

    let sdpa = {
        let w = sdpa_bert();
        lower_tensor_to_linalg(&w.graph, w.elem).lower_to_affine()
    };
    let programs = vec![
        ("gemm (CB)", polybench::gemm(size.n3())),
        ("mvt (BB)", polybench::mvt(size.n2())),
        ("sdpa-bert (phases)", sdpa),
    ];

    println!("# Robustness matrix on {} (seed 42)", plat.name);
    println!("(EDP ratios vs the stock driver under the same fault plan; guarded");
    println!(" should stay near the stock bound even when the unguarded run drifts)");

    // Compile once per workload — the static plan does not depend on the
    // fault scenario; only measurement and execution do.
    let compiled = polyufc_par::par_map(&programs, |(_, program)| pipe.compile_affine(program));
    let mut prepared = Vec::new();
    for ((name, _), result) in programs.iter().zip(compiled) {
        match result {
            Ok(out) => {
                let predictions = pipe.cap_predictions(&out);
                prepared.push((*name, out, predictions));
            }
            Err(e) => eprintln!("skipping {name}: {e}"),
        }
    }

    let mut rows = Vec::new();
    let mut worst_margin = f64::NEG_INFINITY;
    let mut violations = Vec::new();
    let mut fallbacks = 0usize;
    for (scenario, spec, bound) in SCENARIOS {
        let plan = FaultPlan::parse_spec(spec).expect("scenario spec must parse");
        let eng = ExecutionEngine::new(plat.clone()).with_fault_plan(plan);
        for (name, out, predictions) in &prepared {
            let counters = eng.measure_program(&out.optimized);
            let stock = UfsDriver::stock().run_baseline(&eng, &counters);
            let unguarded = eng.run_scf(&out.scf, &counters);
            let (guarded, report) =
                GuardedCapRuntime::new(&eng).run_scf(&out.scf, &counters, predictions);
            let g_ratio = guarded.edp() / stock.edp();
            if let Some(b) = bound {
                worst_margin = worst_margin.max(g_ratio - b);
                if g_ratio > *b {
                    violations.push(format!(
                        "{scenario}/{name}: guarded {:.1}% over stock (bound {:.0}%)",
                        (g_ratio - 1.0) * 100.0,
                        (b - 1.0) * 100.0
                    ));
                }
            }
            if report.fell_back {
                fallbacks += 1;
            }
            rows.push(vec![
                scenario.to_string(),
                name.to_string(),
                format!("{:.3e}", stock.edp()),
                pct(1.0 - unguarded.edp() / stock.edp()),
                pct(1.0 - g_ratio),
                format!(
                    "{}r/{}t{}",
                    report.retries(),
                    report.timeouts(),
                    if report.fell_back { " FALLBACK" } else { "" }
                ),
            ]);
        }
    }
    print_table(
        &[
            "scenario",
            "workload",
            "stock EDP",
            "ΔEDP unguarded",
            "ΔEDP guarded",
            "guard activity",
        ],
        &rows,
    );
    if violations.is_empty() {
        println!(
            "\nall bounded scenarios within their degradation bound (worst margin {:+.1}pp)",
            worst_margin * 100.0
        );
    } else {
        println!("\nDEGRADATION BOUND VIOLATIONS:");
        for v in &violations {
            println!("  {v}");
        }
    }
    println!("(bounds: 10% for recoverable scenarios, 25% retry-overhead bound for");
    println!(" 100%-stuck writes on these millisecond kernels; flaky is informational —");
    println!(" a timed-out read stalls the observed wall-clock itself, so stock and");
    println!(" capped EDPs are incomparable there)");
    println!("guard fallbacks across the matrix: {fallbacks}");
    polyufc_bench::report_measure_cache();
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
