//! Cold-count microbenchmark: wall-clock of a single cache-miss Presburger
//! count per shape class, comparing the production path (closed-form
//! symbolic layer first) against the enumerating fallback it replaced.
//!
//! The shape classes mirror what the cache model feeds the counter —
//! boxes, triangles (cholesky/lu/trisolv), bands (jacobi stencils), tiled
//! domains with tails (Pluto output), and strided sets (div constraints).
//! Extents follow the size preset, so `large` exercises the paper's
//! triangular `N = 512` acceptance shape and `xl` the paper-scale
//! `N >= 4000` domains.
//!
//! Usage: `count_microbench [mini|small|large|xl]`

use std::time::Instant;

use polyufc_bench::{print_table, size_from_args};
use polyufc_presburger::{
    count_basic_enumerative, symbolic_count, BasicSet, CountLimit, LinExpr, Set, Space,
};
use polyufc_workloads::PolybenchSize;

/// One benchmark shape: a name and the set to count.
struct Shape {
    name: String,
    set: BasicSet,
}

fn shapes(size: PolybenchSize) -> Vec<Shape> {
    let n3 = size.n3() as i64;
    let n2 = size.n2() as i64;
    let n1 = size.n1() as i64;
    let mut out = Vec::new();

    // 3-D box (gemm-like rectangular domain).
    let mut b = BasicSet::universe(Space::set(0, 3));
    for d in 0..3 {
        b.add_range(d, 0, n3 - 1);
    }
    out.push(Shape {
        name: format!("box3d n={n3}"),
        set: b,
    });

    // Triangle { 0 <= j <= i < n } — the acceptance shape at large
    // (n3 = 512).
    let mut b = BasicSet::universe(Space::set(0, 2));
    b.add_range(0, 0, n3 - 1);
    b.add_ge0(LinExpr::var(1));
    b.add_ge0(LinExpr::var(0) - LinExpr::var(1));
    out.push(Shape {
        name: format!("triangle n={n3}"),
        set: b,
    });

    // Band |i - j| <= 2 inside an n2 box (stencil dependence shape).
    let mut b = BasicSet::universe(Space::set(0, 2));
    b.add_range(0, 0, n2 - 1);
    b.add_range(1, 0, n2 - 1);
    b.add_ge0(LinExpr::var(0) - LinExpr::var(1) + LinExpr::constant(2));
    b.add_ge0(LinExpr::var(1) - LinExpr::var(0) + LinExpr::constant(2));
    out.push(Shape {
        name: format!("band n={n2}"),
        set: b,
    });

    // Tiled 1-D domain with a tail: { [t,i] : 0 <= i < n2, 32t <= i <
    // 32t+32 } (the Pluto tile/point-loop shape).
    let tiles = (n2 - 1).div_euclid(32);
    let mut b = BasicSet::universe(Space::set(0, 2));
    b.add_range(1, 0, n2 - 1);
    b.add_range(0, 0, tiles);
    b.add_ge0(LinExpr::var(1) - LinExpr::var(0) * 32);
    b.add_ge0(LinExpr::var(0) * 32 + LinExpr::constant(31) - LinExpr::var(1));
    out.push(Shape {
        name: format!("tile n={n2}"),
        set: b,
    });

    // Strided set { 0 <= i < n1, i mod 4 == 0 } via a determined div.
    let mut b = BasicSet::universe(Space::set(0, 1));
    b.add_range(0, 0, n1 - 1);
    let q = b.add_div(LinExpr::var(0), 4);
    b.add_eq(LinExpr::var(0) - LinExpr::var(q) * 4);
    out.push(Shape {
        name: format!("stride n={n1}"),
        set: b,
    });

    out
}

/// Best-of-`reps` wall-clock of `f`, in microseconds.
fn time_us<T>(reps: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
        last = Some(v);
    }
    (best, last.expect("reps >= 1"))
}

fn main() {
    let size = size_from_args();
    let reps = 3;
    println!("# Cold Presburger count per shape class (best of {reps}, µs)");

    let mut rows = Vec::new();
    let mut triangle_speedup = None;
    for shape in shapes(size) {
        // Production path: symbolic first, enumerating fallback — exactly
        // what Set::count does on a cache miss.
        let set = Set::from_basic(shape.set.clone());
        let (prod_us, prod_count) = time_us(reps, || {
            set.count_with_limit(CountLimit::default()).expect("count")
        });
        // The pre-symbolic behaviour: enumeration only.
        let (enum_us, enum_count) = time_us(reps, || {
            count_basic_enumerative(&shape.set, CountLimit::default()).expect("enumerative count")
        });
        assert_eq!(
            prod_count, enum_count,
            "strategy mismatch on {}",
            shape.name
        );
        let in_fragment = symbolic_count(&shape.set).is_some();
        let speedup = enum_us / prod_us.max(1e-3);
        if shape.name.starts_with("triangle") {
            triangle_speedup = Some(speedup);
        }
        rows.push(vec![
            shape.name.clone(),
            format!("{prod_count}"),
            format!("{prod_us:.1}"),
            format!("{enum_us:.1}"),
            format!("{speedup:.1}x"),
            if in_fragment {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    print_table(
        &[
            "shape",
            "points",
            "symbolic-first",
            "enumerative",
            "speedup",
            "in fragment",
        ],
        &rows,
    );

    if let Some(s) = triangle_speedup {
        println!("\ntriangle cold-count speedup: {s:.1}x (acceptance: >= 10x at large)");
    }
}
