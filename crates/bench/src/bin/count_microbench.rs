//! Cold-count microbenchmark: wall-clock of a single cache-miss Presburger
//! count per shape class, comparing the production path (closed-form
//! symbolic layer first) against the enumerating fallback it replaced.
//!
//! The shape classes mirror what the cache model feeds the counter —
//! boxes, triangles (cholesky/lu/trisolv), bands (jacobi stencils), tiled
//! domains with tails (Pluto output), and strided sets (div constraints).
//! Extents follow the size preset, so `large` exercises the paper's
//! triangular `N = 512` acceptance shape and `xl` the paper-scale
//! `N >= 4000` domains.
//!
//! Usage: `count_microbench [mini|small|large|xl]`

use std::time::Instant;

use polyufc_bench::{geomean, print_table, size_from_args};
use polyufc_presburger::{
    count_basic_enumerative, force_presburger_path, reference, symbolic_count, BasicSet, Context,
    CountLimit, Emptiness, LinExpr, PresburgerPath, Set, Space,
};
use polyufc_workloads::PolybenchSize;

/// One benchmark shape: a name, the set to count, and the extent of its
/// first dimension (used to derive the batched-emptiness query sweep).
struct Shape {
    name: String,
    set: BasicSet,
    extent0: i64,
}

fn shapes(size: PolybenchSize) -> Vec<Shape> {
    let n3 = size.n3() as i64;
    let n2 = size.n2() as i64;
    let n1 = size.n1() as i64;
    let mut out = Vec::new();

    // 3-D box (gemm-like rectangular domain).
    let mut b = BasicSet::universe(Space::set(0, 3));
    for d in 0..3 {
        b.add_range(d, 0, n3 - 1);
    }
    out.push(Shape {
        name: format!("box3d n={n3}"),
        set: b,
        extent0: n3,
    });

    // Triangle { 0 <= j <= i < n } — the acceptance shape at large
    // (n3 = 512).
    let mut b = BasicSet::universe(Space::set(0, 2));
    b.add_range(0, 0, n3 - 1);
    b.add_ge0(LinExpr::var(1));
    b.add_ge0(LinExpr::var(0) - LinExpr::var(1));
    out.push(Shape {
        name: format!("triangle n={n3}"),
        set: b,
        extent0: n3,
    });

    // Band |i - j| <= 2 inside an n2 box (stencil dependence shape).
    let mut b = BasicSet::universe(Space::set(0, 2));
    b.add_range(0, 0, n2 - 1);
    b.add_range(1, 0, n2 - 1);
    b.add_ge0(LinExpr::var(0) - LinExpr::var(1) + LinExpr::constant(2));
    b.add_ge0(LinExpr::var(1) - LinExpr::var(0) + LinExpr::constant(2));
    out.push(Shape {
        name: format!("band n={n2}"),
        set: b,
        extent0: n2,
    });

    // Tiled 1-D domain with a tail: { [t,i] : 0 <= i < n2, 32t <= i <
    // 32t+32 } (the Pluto tile/point-loop shape).
    let tiles = (n2 - 1).div_euclid(32);
    let mut b = BasicSet::universe(Space::set(0, 2));
    b.add_range(1, 0, n2 - 1);
    b.add_range(0, 0, tiles);
    b.add_ge0(LinExpr::var(1) - LinExpr::var(0) * 32);
    b.add_ge0(LinExpr::var(0) * 32 + LinExpr::constant(31) - LinExpr::var(1));
    out.push(Shape {
        name: format!("tile n={n2}"),
        set: b,
        extent0: tiles + 1,
    });

    // Strided set { 0 <= i < n1, i mod 4 == 0 } via a determined div.
    let mut b = BasicSet::universe(Space::set(0, 1));
    b.add_range(0, 0, n1 - 1);
    let q = b.add_div(LinExpr::var(0), 4);
    b.add_eq(LinExpr::var(0) - LinExpr::var(q) * 4);
    out.push(Shape {
        name: format!("stride n={n1}"),
        set: b,
        extent0: n1,
    });

    out
}

/// Best-of-`reps` wall-clock of `f`, in microseconds.
fn time_us<T>(reps: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
        last = Some(v);
    }
    (best, last.expect("reps >= 1"))
}

fn main() {
    let size = size_from_args();
    let reps = 5;
    println!("# Cold Presburger count per shape class (best of {reps}, µs)");

    let mut rows = Vec::new();
    let mut triangle_speedup = None;
    for shape in shapes(size) {
        // Production path: symbolic first, enumerating fallback — exactly
        // what Set::count does on a cache miss.
        let set = Set::from_basic(shape.set.clone());
        let (prod_us, prod_count) = time_us(reps, || {
            set.count_with_limit(CountLimit::default()).expect("count")
        });
        // The pre-symbolic behaviour: enumeration only.
        let (enum_us, enum_count) = time_us(reps, || {
            count_basic_enumerative(&shape.set, CountLimit::default()).expect("enumerative count")
        });
        assert_eq!(
            prod_count, enum_count,
            "strategy mismatch on {}",
            shape.name
        );
        let in_fragment = symbolic_count(&shape.set).is_some();
        let speedup = enum_us / prod_us.max(1e-3);
        if shape.name.starts_with("triangle") {
            triangle_speedup = Some(speedup);
        }
        rows.push(vec![
            shape.name.clone(),
            format!("{prod_count}"),
            format!("{prod_us:.1}"),
            format!("{enum_us:.1}"),
            format!("{speedup:.1}x"),
            if in_fragment {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    print_table(
        &[
            "shape",
            "points",
            "symbolic-first",
            "enumerative",
            "speedup",
            "in fragment",
        ],
        &rows,
    );

    if let Some(s) = triangle_speedup {
        println!("\ntriangle cold-count speedup: {s:.1}x (acceptance: >= 10x at large)");
    }

    // Flat-arena core vs. the frozen per-constraint reference core, A/B'd
    // in-process through the path lever. Both paths answer the identical
    // query (`Set::count_with_limit` on a cache miss); only the solver
    // substrate differs.
    println!("\n# Flat arena core vs. frozen reference core (best of {reps}, µs)");
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for shape in shapes(size) {
        let set = Set::from_basic(shape.set.clone());
        force_presburger_path(Some(PresburgerPath::Flat));
        let (flat_us, flat_count) = time_us(reps, || {
            set.count_with_limit(CountLimit::default()).expect("count")
        });
        force_presburger_path(Some(PresburgerPath::Legacy));
        let (legacy_us, legacy_count) = time_us(reps, || {
            set.count_with_limit(CountLimit::default())
                .expect("legacy count")
        });
        force_presburger_path(None);
        assert_eq!(
            flat_count, legacy_count,
            "flat/legacy mismatch on {}",
            shape.name
        );
        let speedup = legacy_us / flat_us.max(1e-3);
        speedups.push(speedup);
        rows.push(vec![
            shape.name,
            format!("{flat_count}"),
            format!("{flat_us:.1}"),
            format!("{legacy_us:.1}"),
            format!("{speedup:.2}x"),
        ]);
    }
    print_table(&["shape", "points", "flat", "legacy", "speedup"], &rows);
    println!(
        "\nflat-vs-legacy geomean speedup: {:.2}x over {} shapes",
        geomean(&speedups),
        speedups.len()
    );

    // Batched emptiness: the workload the arena rewrite targets. The
    // analysis passes (race, bounds, ir-verify) ask hundreds of emptiness
    // questions per compile; `Context::check_all` answers them on one
    // bulk-reset arena, where the pre-rewrite architecture ran the
    // per-constraint reference solver once per query. Each shape sweeps a
    // moving cut `i0 >= k` across (and past) its first dimension, so the
    // batch mixes non-empty and empty systems like a real dependence sweep.
    let checks_per_shape = 256usize;
    println!(
        "\n# Batched emptiness: Context::check_all vs per-query reference core \
         (best of {reps}, µs per {checks_per_shape} checks)"
    );
    let mut rows = Vec::new();
    let mut empt_speedups = Vec::new();
    for shape in shapes(size) {
        // Sweep past the extent by 25% so ~1 in 5 queries is empty.
        let sweep = shape.extent0 + shape.extent0 / 4 + 1;
        let queries: Vec<BasicSet> = (0..checks_per_shape)
            .map(|k| {
                let mut b = shape.set.clone();
                b.add_ge0(LinExpr::var(0) - LinExpr::constant(k as i64 % sweep));
                b
            })
            .collect();
        let (flat_us, flat_nonempty) = time_us(reps, || {
            let mut ctx = Context::new();
            ctx.check_all(queries.iter())
                .iter()
                .filter(|e| matches!(e, Emptiness::NonEmpty))
                .count()
        });
        let (legacy_us, legacy_nonempty) = time_us(reps, || {
            queries
                .iter()
                .filter(|q| !reference::is_empty(q).expect("reference emptiness"))
                .count()
        });
        assert_eq!(
            flat_nonempty, legacy_nonempty,
            "emptiness verdict mismatch on {}",
            shape.name
        );
        let speedup = legacy_us / flat_us.max(1e-3);
        empt_speedups.push(speedup);
        rows.push(vec![
            shape.name,
            format!("{flat_nonempty}/{checks_per_shape}"),
            format!("{flat_us:.1}"),
            format!("{legacy_us:.1}"),
            format!("{speedup:.2}x"),
        ]);
    }
    print_table(&["shape", "non-empty", "flat", "legacy", "speedup"], &rows);
    println!(
        "\nbatched-emptiness geomean speedup: {:.2}x over {} shapes",
        geomean(&empt_speedups),
        empt_speedups.len()
    );

    // Witness sampling: the analysis passes extract a concrete violating
    // iteration from every non-empty relation (`Context::sample`), which
    // the rewrite moved onto the shared arena's dense-row search. Same
    // query sweep as the emptiness batch; the sampled points are pinned
    // equal across cores (shared deterministic search order).
    println!(
        "\n# Witness sampling: Context::sample vs per-query reference core \
         (best of {reps}, µs per {checks_per_shape} samples)"
    );
    let mut rows = Vec::new();
    let mut sample_speedups = Vec::new();
    for shape in shapes(size) {
        let sweep = shape.extent0 + shape.extent0 / 4 + 1;
        let queries: Vec<BasicSet> = (0..checks_per_shape)
            .map(|k| {
                let mut b = shape.set.clone();
                b.add_ge0(LinExpr::var(0) - LinExpr::constant(k as i64 % sweep));
                b
            })
            .collect();
        let (flat_us, flat_pts) = time_us(reps, || {
            let mut ctx = Context::new();
            queries
                .iter()
                .map(|q| ctx.sample(q).expect("flat sample"))
                .collect::<Vec<_>>()
        });
        let (legacy_us, legacy_pts) = time_us(reps, || {
            queries
                .iter()
                .map(|q| reference::sample(q).expect("reference sample"))
                .collect::<Vec<_>>()
        });
        assert_eq!(flat_pts, legacy_pts, "witness mismatch on {}", shape.name);
        let found = flat_pts.iter().filter(|p| p.is_some()).count();
        let speedup = legacy_us / flat_us.max(1e-3);
        sample_speedups.push(speedup);
        rows.push(vec![
            shape.name,
            format!("{found}/{checks_per_shape}"),
            format!("{flat_us:.1}"),
            format!("{legacy_us:.1}"),
            format!("{speedup:.2}x"),
        ]);
    }
    print_table(&["shape", "witnesses", "flat", "legacy", "speedup"], &rows);
    println!(
        "\nwitness-sampling geomean speedup: {:.2}x over {} shapes",
        geomean(&sample_speedups),
        sample_speedups.len()
    );

    // Acceptance metric: geomean over the operations the flat rewrite
    // replaced (emptiness and sampling; counting shares the symbolic
    // polysum layer with the frozen core by construction, so its A/B
    // isolates construction overhead and is reported separately above).
    let core: Vec<f64> = empt_speedups
        .iter()
        .chain(&sample_speedups)
        .copied()
        .collect();
    println!(
        "rewritten-core geomean (batched emptiness + witness sampling): {:.2}x \
         (acceptance: >= 5x)",
        geomean(&core)
    );
}
