//! Fig. 6 (+ Table I): roofline characterization of every evaluation
//! workload on both platforms — static OI vs. measured OI, CB/BB class,
//! estimated vs. "hardware" performance and power at the maximum uncore
//! frequency, and the CB/BB split of the PolyBench suite.

use polyufc::{Boundedness, ParametricModel, Pipeline};
use polyufc_bench::{evaluate, fault_plan_from_args, flag_from_args, print_table, size_from_args};
use polyufc_ir::lower::lower_tensor_to_linalg;
use polyufc_machine::{ExecutionEngine, Platform};
use polyufc_workloads::{ml_suite, polybench_suite};

fn main() {
    let size = size_from_args();
    // `--only <workload>` restricts the characterization to one point —
    // the CI Large-size smoke uses `--size large --only gemm`.
    let only = flag_from_args("--only");
    let fault = fault_plan_from_args();
    for plat in Platform::all() {
        let pipe = Pipeline::new(plat.clone());
        let eng = ExecutionEngine::new(plat.clone()).with_fault_plan(fault.clone());

        println!("\n# Fig. 6 — characterization on {}", plat.name);
        if !fault.is_pristine() {
            println!("(fault plan: {})", fault.spec_string());
        }
        println!("## Table I constants (calibrated rooflines)");
        let r = &pipe.roofline;
        println!(
            "t_FPU        = {:.3e} s/flop (peak {:.1} Gflop/s)",
            r.t_fpu(),
            r.peak_flops / 1e9
        );
        println!(
            "B^t_DRAM     = {:.2} FpB at f_max, {:.2} FpB at f_min",
            r.time_balance(plat.uncore_max_ghz),
            r.time_balance(plat.uncore_min_ghz)
        );
        println!(
            "e_FPU        = {:.3e} J/flop; p̂_FPU = {:.1} W",
            r.e_fpu, r.p_hat_fpu
        );
        println!("p_con        = {:.1} W", r.p_con);
        println!(
            "P̂_DRAM(f)    = {:.2}·f + {:.2} W",
            r.p_dram_fit.0, r.p_dram_fit.1
        );
        println!(
            "M^t(f)       = {:.2}/f + {:.2} ns",
            r.miss_t_fit.0 * 1e9,
            r.miss_t_fit.1 * 1e9
        );
        println!(
            "M^p(f)       = {:.3e}·f + {:.3e} J/B",
            r.miss_p_fit.0, r.miss_p_fit.1
        );

        let mut rows = Vec::new();
        let mut cb = 0;
        let mut bb = 0;
        let mut perf_errs = Vec::new();
        let f_max = plat.uncore_max_ghz;
        let conc = plat.cores as f64;

        let mut programs: Vec<(String, polyufc_ir::affine::AffineProgram)> = Vec::new();
        for w in polybench_suite(size) {
            programs.push((w.name.to_string(), w.program));
        }
        for w in ml_suite() {
            programs.push((
                w.name.to_string(),
                lower_tensor_to_linalg(&w.graph, w.elem).lower_to_affine(),
            ));
        }
        if let Some(only) = &only {
            programs.retain(|(name, _)| name == only);
            if programs.is_empty() {
                eprintln!("--only {only}: no such workload");
                std::process::exit(2);
            }
        }

        // Every (workload) point is independent: fan the evaluations out
        // and render the table sequentially from the input-ordered
        // results, so the output is byte-identical to a serial run.
        let evals = polyufc_par::par_map(&programs, |(name, program)| {
            evaluate(&pipe, &eng, program, name)
        });
        for ((name, _), result) in programs.iter().zip(evals) {
            let e = match result {
                Ok(e) => e,
                Err(err) => {
                    eprintln!("skipping {name}: {err}");
                    continue;
                }
            };
            match e.class() {
                Boundedness::ComputeBound => cb += 1,
                Boundedness::BandwidthBound => bb += 1,
            }
            // Estimated vs measured performance and power at f_max
            // (whole program; power is time-weighted over kernels).
            let mut t_est = 0.0;
            let mut e_est = 0.0;
            let mut p_peak: f64 = 0.0;
            for (k, st) in e.out.optimized.kernels.iter().zip(&e.out.cache_stats) {
                let pm =
                    ParametricModel::new(&pipe.roofline, st, k.outer_parallel().is_some(), conc);
                t_est += pm.exec_time(f_max);
                e_est += pm.energy(f_max);
                p_peak = p_peak.max(pm.peak_power(f_max));
            }
            let p_est = e_est / t_est.max(1e-15);
            let flops: f64 = e.counters.iter().map(|c| c.flops as f64).sum();
            let perf_est = flops / t_est;
            let perf_meas = flops / e.baseline.time_s;
            let err = (perf_est / perf_meas - 1.0).abs();
            perf_errs.push(err);
            rows.push(vec![
                name.clone(),
                format!("{}", e.class()),
                format!("{:.2}", e.static_oi()),
                format!("{:.2}", e.measured_oi()),
                format!("{:.2}", perf_est / 1e9),
                format!("{:.2}", perf_meas / 1e9),
                format!("{:.0}%", err * 100.0),
                format!("{:.1}", p_est),
                format!("{:.1}", e.baseline.avg_power_w),
                format!("{:.1}", p_peak),
            ]);
        }
        print_table(
            &[
                "kernel",
                "class",
                "OI(est)",
                "OI(meas)",
                "Gflops(est)",
                "Gflops(meas)",
                "perf err",
                "P(est) W",
                "P(meas) W",
                "P̂ ceiling W",
            ],
            &rows,
        );
        println!(
            "\nCB/BB split: {cb} CB, {bb} BB (paper on RPL: 13 CB + 9 BB of 22 PolyBench kernels)"
        );
        println!(
            "median perf estimation error: {:.1}% (paper: <7% for conv2d-convnext)",
            median(&mut perf_errs) * 100.0
        );
    }
    polyufc_bench::report_measure_cache();
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if xs.is_empty() {
        0.0
    } else {
        xs[xs.len() / 2]
    }
}
