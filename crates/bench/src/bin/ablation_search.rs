//! Ablation: POLYUFC-SEARCH's binary search vs. the exhaustive 0.1 GHz
//! scan — result parity and evaluation counts (the paper reduces the
//! space to ≈39 steps; bisection needs ~⌈log₂ 39⌉ probes).

use polyufc::{search::scan_cap, search_cap, Objective, ParametricModel, Pipeline};
use polyufc_bench::{print_table, size_from_args};
use polyufc_machine::Platform;
use polyufc_workloads::polybench_suite;

fn main() {
    let size = size_from_args();
    for plat in Platform::all() {
        let pipe = Pipeline::new(plat.clone());
        println!(
            "\n# Ablation — binary search vs exhaustive scan on {}",
            plat.name
        );
        let mut rows = Vec::new();
        let mut agree = 0;
        let mut total = 0;
        let conc = plat.cores as f64;
        for w in polybench_suite(size) {
            let out = match pipe.compile_affine(&w.program) {
                Ok(o) => o,
                Err(_) => continue,
            };
            for (k, st) in out.optimized.kernels.iter().zip(&out.cache_stats) {
                let pm =
                    ParametricModel::new(&pipe.roofline, st, k.outer_parallel().is_some(), conc);
                let fast = search_cap(&pm, &plat.uncore_freqs(), Objective::Edp, 1e-3);
                let slow = scan_cap(&pm, &plat.uncore_freqs(), Objective::Edp, 1e-3);
                total += 1;
                let quality = pm.edp(fast.f_ghz) / pm.edp(slow.f_ghz);
                if quality <= 1.005 {
                    agree += 1;
                }
                rows.push(vec![
                    format!("{}::{}", w.name, k.name),
                    format!("{:.1}", fast.f_ghz),
                    format!("{:.1}", slow.f_ghz),
                    format!("{}", fast.steps),
                    format!("{}", slow.steps),
                    format!("{:.3}", quality),
                ]);
            }
        }
        print_table(
            &[
                "kernel",
                "binary cap",
                "scan cap",
                "binary evals",
                "scan evals",
                "EDP ratio",
            ],
            &rows,
        );
        println!("\nnear-optimal (≤0.5% EDP loss): {agree}/{total} kernels");
    }
}
