//! Extra comparison (Sec. VIII context): PolyUFC's static inter-kernel
//! capping vs. a reactive DUFS governor vs. the stock max-frequency
//! driver, on representative CB and BB kernels. Compiler-driven capping
//! wins on short kernels and phase changes because it has no control-loop
//! latency (the paper's Sec. VII-F argument, quantified).

use polyufc::Pipeline;
use polyufc_bench::{fault_plan_from_args, guard_from_args, pct, print_table, size_from_args};
use polyufc_ir::lower::lower_tensor_to_linalg;
use polyufc_machine::{DufsGovernor, ExecutionEngine, GuardedCapRuntime, Platform, UfsDriver};
use polyufc_workloads::ml::sdpa_bert;
use polyufc_workloads::polybench;

fn main() {
    let size = size_from_args();
    let fault = fault_plan_from_args();
    let guard = guard_from_args();
    let plat = Platform::broadwell();
    let pipe = Pipeline::new(plat.clone());
    let eng = ExecutionEngine::new(plat.clone()).with_fault_plan(fault.clone());

    let sdpa = {
        let w = sdpa_bert();
        lower_tensor_to_linalg(&w.graph, w.elem).lower_to_affine()
    };
    let programs = vec![
        ("gemm (CB)", polybench::gemm(size.n3())),
        ("mvt (BB)", polybench::mvt(size.n2())),
        ("sdpa-bert (phases)", sdpa),
    ];

    println!(
        "# PolyUFC vs DUFS governor vs stock driver on {}",
        plat.name
    );
    if !fault.is_pristine() {
        println!("(fault plan: {})", fault.spec_string());
    }
    let mut rows = Vec::new();
    let mut guard_lines = Vec::new();
    // Compile + trace-measure each workload in parallel; the governor
    // comparisons below consume the input-ordered results sequentially.
    let prepared = polyufc_par::par_map(&programs, |(_, program)| {
        pipe.compile_affine(program).map(|out| {
            let counters = eng.measure_program(&out.optimized);
            (out, counters)
        })
    });
    for ((name, _), result) in programs.iter().zip(prepared) {
        let (out, counters) = match result {
            Ok(oc) => oc,
            Err(e) => {
                eprintln!("skipping {name}: {e}");
                continue;
            }
        };
        let stock = UfsDriver::stock().run_baseline(&eng, &counters);
        let capped = if guard {
            let predictions = pipe.cap_predictions(&out);
            let (r, rep) = GuardedCapRuntime::new(&eng).run_scf(&out.scf, &counters, &predictions);
            guard_lines.push(format!("  {:<20} {}", name, rep.one_line()));
            r
        } else {
            eng.run_scf(&out.scf, &counters)
        };
        // The governor starts from its previous steady state — assume a
        // half-range idle frequency, like a machine between jobs.
        let start = (plat.uncore_min_ghz + plat.uncore_max_ghz) / 2.0;
        let (dufs, _) = DufsGovernor::default().run(&eng, &counters, start);
        rows.push(vec![
            name.to_string(),
            format!("{:.3e}", stock.edp()),
            format!(
                "{:.3e} ({})",
                dufs.edp(),
                pct(1.0 - dufs.edp() / stock.edp())
            ),
            format!(
                "{:.3e} ({})",
                capped.edp(),
                pct(1.0 - capped.edp() / stock.edp())
            ),
        ]);
    }
    print_table(
        &[
            "workload",
            "stock EDP",
            "DUFS EDP (vs stock)",
            "PolyUFC EDP (vs stock)",
        ],
        &rows,
    );
    println!("\n(DUFS pays control-loop latency on every phase change; PolyUFC sets the");
    println!(" frequency before each kernel starts — the Sec. VII-F argument.)");
    if guard {
        println!("\n## Guard decisions");
        for line in &guard_lines {
            println!("{line}");
        }
    }
    polyufc_bench::report_measure_cache();
}
