//! Developer diagnostic: per-kernel static-model vs. machine comparison
//! for one workload. Usage: `diagnose <workload> <bdw|rpl>`.

use polyufc::{ParametricModel, Pipeline};
use polyufc_ir::lower::lower_tensor_to_linalg;
use polyufc_machine::{measure_kernel, ExecutionEngine, Platform};
use polyufc_workloads::{ml_suite, polybench_suite, PolybenchSize};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mvt".into());
    let plat = match std::env::args().nth(2).as_deref() {
        Some("bdw") => Platform::broadwell(),
        _ => Platform::raptor_lake(),
    };
    let size = match std::env::args().nth(3).as_deref() {
        Some("mini") => PolybenchSize::Mini,
        Some("large") => PolybenchSize::Large,
        Some("xl") | Some("extralarge") => PolybenchSize::ExtraLarge,
        _ => PolybenchSize::Small,
    };
    let program = polybench_suite(size)
        .into_iter()
        .find(|w| w.name == name)
        .map(|w| w.program)
        .or_else(|| {
            ml_suite()
                .into_iter()
                .find(|w| w.name == name)
                .map(|w| lower_tensor_to_linalg(&w.graph, w.elem).lower_to_affine())
        })
        .expect("unknown workload");

    let pipe = Pipeline::new(plat.clone());
    let eng = ExecutionEngine::noiseless(plat.clone());
    let out = pipe.compile_affine(&program).expect("analysis");
    let conc = plat.cores as f64;

    for ((k, st), (ch, res)) in out
        .optimized
        .kernels
        .iter()
        .zip(&out.cache_stats)
        .zip(out.characterizations.iter().zip(&out.search))
    {
        let c = measure_kernel(&plat, &out.optimized, k);
        println!(
            "\n=== kernel {} (depth {}, parallel {:?}) ===",
            k.name,
            k.depth(),
            k.outer_parallel()
        );
        println!(
            "class {} OI est {:.3} meas {:.3}  cap {:.1} GHz",
            ch.class,
            st.operational_intensity(),
            c.measured_oi(),
            res.f_ghz
        );
        for (i, l) in st.levels.iter().enumerate() {
            println!(
                "  L{}: est acc {:.3e} miss {:.3e} (fit {})   sim hit {:.3e} miss {:.3e}",
                i + 1,
                l.accesses,
                l.misses,
                l.fit_level,
                c.hits[i] as f64,
                c.misses[i] as f64
            );
        }
        println!(
            "  est Q_DRAM {:.3e}  sim fills {:.3e} wb {:.3e}",
            st.q_dram_bytes,
            (c.dram_fills * 64) as f64,
            (c.dram_writebacks * 64) as f64
        );
        let pm = ParametricModel::new(&pipe.roofline, st, k.outer_parallel().is_some(), conc);
        if std::env::args().nth(4).as_deref() == Some("grid") {
            for f in plat.uncore_freqs() {
                println!(
                    "    grid f={f:.1}: t {:.4e} E {:.4e} EDP {:.4e}",
                    pm.exec_time(f),
                    pm.energy(f),
                    pm.edp(f)
                );
            }
            for s in &res.log {
                println!(
                    "    search step f={:.1} dp {:.4} db {:.4} dedp {:.4} adm {}",
                    s.f_ghz, s.delta_perf, s.delta_bw, s.delta_edp, s.admissible
                );
            }
        }
        for f in [
            plat.uncore_min_ghz,
            (plat.uncore_min_ghz + plat.uncore_max_ghz) / 2.0,
            plat.uncore_max_ghz,
        ] {
            let f = plat.clamp_uncore(f);
            let hw = eng.run_kernel(&c, f);
            println!(
                "  f={:>4.1}: model t {:.3e} E {:.3e} EDP {:.3e} | hw t {:.3e} E {:.3e} EDP {:.3e}",
                f,
                pm.exec_time(f),
                pm.energy(f),
                pm.edp(f),
                hw.time_s,
                hw.energy.total(),
                hw.edp()
            );
        }
    }
}
