//! Table II: the evaluation benchmarks — ML kernels with their model
//! sources and shapes, and the PolyBench suite with problem sizes and
//! memory footprints.

use polyufc_bench::{print_table, size_from_args};
use polyufc_ir::lower::lower_tensor_to_linalg;
use polyufc_workloads::{ml_suite, polybench_suite};

fn main() {
    let size = size_from_args();

    println!("# Table II(a) — selected ML kernels");
    let mut rows = Vec::new();
    for w in ml_suite() {
        let ap = lower_tensor_to_linalg(&w.graph, w.elem).lower_to_affine();
        let flops: i128 = ap
            .kernels
            .iter()
            .map(|k| k.total_flops().unwrap_or(0))
            .sum();
        rows.push(vec![
            w.name.to_string(),
            w.source.to_string(),
            w.domain.to_string(),
            format!("{}", ap.kernels.len()),
            format!("{:.1} MiB", ap.footprint_bytes() as f64 / (1 << 20) as f64),
            format!("{:.2} Gflop", flops as f64 / 1e9),
            if w.scaled {
                "scaled".into()
            } else {
                "paper shape".into()
            },
        ]);
    }
    print_table(
        &[
            "kernel",
            "source",
            "domain",
            "nests",
            "footprint",
            "flops",
            "shape",
        ],
        &rows,
    );

    println!("\n# Table II(b) — PolyBench suite (size preset: {size:?})");
    let mut rows = Vec::new();
    for w in polybench_suite(size) {
        let flops: i128 = w
            .program
            .kernels
            .iter()
            .map(|k| k.total_flops().unwrap_or(0))
            .sum();
        rows.push(vec![
            w.name.to_string(),
            w.category.to_string(),
            format!("{}", w.program.kernels.len()),
            format!(
                "{:.1} MiB",
                w.program.footprint_bytes() as f64 / (1 << 20) as f64
            ),
            format!("{:.2} Gflop", flops as f64 / 1e9),
            w.paper_class.unwrap_or("-").to_string(),
        ]);
    }
    print_table(
        &[
            "kernel",
            "category",
            "nests",
            "footprint",
            "flops",
            "paper class",
        ],
        &rows,
    );
}
