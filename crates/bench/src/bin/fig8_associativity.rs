//! Fig. 8: estimated EDP over the uncore frequency range with PolyUFC-CM
//! in set-associative vs. fully-associative mode, against "hardware"
//! (machine-model) measurements — gemm on BDW, 2mm on RPL.

use polyufc::{ParametricModel, Pipeline};
use polyufc_bench::{pct, size_from_args};
use polyufc_cache::AssocMode;
use polyufc_machine::{measure_kernel, ExecutionEngine, Platform};
use polyufc_workloads::polybench;

fn main() {
    let size = size_from_args();
    let cases = vec![
        ("gemm", Platform::broadwell(), polybench::gemm(size.n3())),
        ("2mm", Platform::raptor_lake(), polybench::two_mm(size.n3())),
    ];
    for (name, plat, program) in cases {
        println!(
            "\n# Fig. 8 — {} on {}: EDP, set- vs fully-associative model vs HW",
            name, plat.name
        );
        let eng = ExecutionEngine::new(plat.clone());
        let conc = plat.cores as f64;

        let pipe_sa = Pipeline::new(plat.clone()).with_assoc_mode(AssocMode::SetAssociative);
        let pipe_fa = Pipeline::new(plat.clone()).with_assoc_mode(AssocMode::FullyAssociative);
        let out_sa = pipe_sa
            .compile_affine(&program)
            .expect("set-assoc analysis");
        let out_fa = pipe_fa
            .compile_affine(&program)
            .expect("fully-assoc analysis");
        let counters: Vec<_> = out_sa
            .optimized
            .kernels
            .iter()
            .map(|k| measure_kernel(&plat, &out_sa.optimized, k))
            .collect();

        println!(
            "{:>6} {:>14} {:>14} {:>14}",
            "f/GHz", "EDP set-assoc", "EDP full-assoc", "EDP HW"
        );
        let mut rows = Vec::new();
        for f in plat.uncore_freqs() {
            let edp = |out: &polyufc::PipelineOutput| {
                let mut t = 0.0;
                let mut e = 0.0;
                for (k, st) in out.optimized.kernels.iter().zip(&out.cache_stats) {
                    let pm = ParametricModel::new(
                        &pipe_sa.roofline,
                        st,
                        k.outer_parallel().is_some(),
                        conc,
                    );
                    t += pm.exec_time(f);
                    e += pm.energy(f);
                }
                e * t
            };
            let (mut t_hw, mut e_hw) = (0.0, 0.0);
            for c in &counters {
                let r = eng.run_kernel(c, f);
                t_hw += r.time_s;
                e_hw += r.energy.total();
            }
            let row = (f, edp(&out_sa), edp(&out_fa), e_hw * t_hw);
            println!(
                "{:>6.1} {:>14.4e} {:>14.4e} {:>14.4e}",
                row.0, row.1, row.2, row.3
            );
            rows.push(row);
        }
        let best = |sel: fn(&(f64, f64, f64, f64)) -> f64| {
            rows.iter()
                .min_by(|a, b| sel(a).partial_cmp(&sel(b)).unwrap())
                .unwrap()
                .0
        };
        let f_sa = best(|r| r.1);
        let f_fa = best(|r| r.2);
        let f_hw = best(|r| r.3);
        let hw_at = |f: f64| rows.iter().find(|r| (r.0 - f).abs() < 1e-9).unwrap().3;
        let hw_max = rows.last().unwrap().3;
        println!(
            "set-assoc model optimum:   {f_sa:.1} GHz -> HW EDP gain {}",
            pct(1.0 - hw_at(f_sa) / hw_max)
        );
        println!(
            "fully-assoc model optimum: {f_fa:.1} GHz -> HW EDP gain {}",
            pct(1.0 - hw_at(f_fa) / hw_max)
        );
        println!(
            "HW optimum:                {f_hw:.1} GHz -> HW EDP gain {}",
            pct(1.0 - hw_at(f_hw) / hw_max)
        );
    }
}
