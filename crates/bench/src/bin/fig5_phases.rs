//! Fig. 5: CB/BB phase changes of BERT's scaled dot-product attention
//! across the torch (tensor), linalg, and affine dialect levels.

use polyufc::{MlPolyUfc, PhaseReport, Pipeline};
use polyufc_machine::Platform;
use polyufc_workloads::ml::{sdpa_bert, sdpa_gemma2};

fn main() {
    for plat in [Platform::raptor_lake()] {
        let ml = MlPolyUfc::new(Pipeline::new(plat.clone()));
        for w in [sdpa_bert(), sdpa_gemma2()] {
            let rep = ml.phase_report(&w.graph, w.elem).expect("analysis");
            println!("# Fig. 5 — {} on {}", w.name, plat.name);
            println!("torch level : {}", PhaseReport::phase_string(&rep.tensor));
            println!("linalg level: {}", PhaseReport::phase_string(&rep.linalg));
            println!("affine level: {}", PhaseReport::phase_string(&rep.affine));
            println!("linalg ops:");
            for (name, class) in &rep.linalg {
                println!("  {class}  {name}");
            }
            println!();
        }
    }
}
