//! Table IV: compile-time breakdown of the PolyUFC flow per benchmark —
//! preprocessing, the Pluto stage, PolyUFC-CM (stages 3a/3b), and
//! characterization + search + codegen (stages 4–6). Times in
//! milliseconds for the BDW cache configuration, like the paper.

use polyufc::Pipeline;
use polyufc_bench::{print_table, size_from_args};
use polyufc_ir::lower::lower_tensor_to_linalg;
use polyufc_machine::Platform;
use polyufc_workloads::{ml_suite, polybench_suite};

/// Renders the Presburger counting-cache saving as `hits/queries (rate)`.
fn hit_rate(hits: u64, misses: u64) -> String {
    let total = hits + misses;
    if total == 0 {
        "-".into()
    } else {
        format!(
            "{}/{} ({:.0}%)",
            hits,
            total,
            hits as f64 * 100.0 / total as f64
        )
    }
}

/// Renders the per-strategy component tallies of the cold counts as
/// `symbolic/enumerated`.
fn strategy(symbolic: u64, enumerated: u64) -> String {
    if symbolic + enumerated == 0 {
        "-".into()
    } else {
        format!("{symbolic}/{enumerated}")
    }
}

fn main() {
    let size = size_from_args();
    let plat = Platform::broadwell();
    let pipe = Pipeline::new(plat);

    let mut programs: Vec<(String, polyufc_ir::affine::AffineProgram)> = Vec::new();
    for w in ml_suite() {
        programs.push((
            w.name.to_string(),
            lower_tensor_to_linalg(&w.graph, w.elem).lower_to_affine(),
        ));
    }
    for w in polybench_suite(size) {
        programs.push((w.name.to_string(), w.program));
    }

    println!("# Table IV — compile-time breakdown (ms, BDW cache configuration)");
    let mut rows = Vec::new();
    let ms = |us: u128| format!("{:.2}", us as f64 / 1000.0);
    let mut totals = (0u128, 0u128, 0u128, 0u128);
    let mut verify_total = 0u128;
    let mut cache_totals = (0u64, 0u64);
    let mut strategy_totals = (0u64, 0u64);
    let mut emptiness_totals = (0u64, 0u64);
    let mut splits_total = 0u64;
    let mut arena_peak = 0u64;
    let mut all_fallbacks: Vec<String> = Vec::new();
    // Compiles are independent; fan them out and aggregate the
    // input-ordered reports sequentially. Per-stage wall-clocks are
    // measured inside each compile, so rows stay meaningful (modulo
    // scheduler contention) while the whole table finishes in the time of
    // the slowest program.
    let outputs = polyufc_par::par_map(&programs, |(_, program)| pipe.compile_affine(program));
    for ((name, _), output) in programs.iter().zip(outputs) {
        match output {
            Ok(out) => {
                let r = out.report;
                totals.0 += r.preprocess_us;
                totals.1 += r.pluto_us;
                totals.2 += r.polyufc_cm_us;
                totals.3 += r.steps_4_6_us;
                verify_total += r.verify_us;
                cache_totals.0 += r.count_cache_hits;
                cache_totals.1 += r.count_cache_misses;
                strategy_totals.0 += r.count_symbolic;
                strategy_totals.1 += r.count_enumerated;
                emptiness_totals.0 += r.emptiness_batches;
                emptiness_totals.1 += r.emptiness_checks;
                splits_total += r.count_parallel_splits;
                arena_peak = arena_peak.max(r.presburger_arena_bytes);
                for k in &r.fallback_kernels {
                    all_fallbacks.push(format!("{name}/{k}"));
                }
                rows.push(vec![
                    name.clone(),
                    ms(r.verify_us),
                    ms(r.preprocess_us),
                    ms(r.pluto_us),
                    ms(r.polyufc_cm_us),
                    ms(r.steps_4_6_us),
                    ms(r.total_us()),
                    hit_rate(r.count_cache_hits, r.count_cache_misses),
                    strategy(r.count_symbolic, r.count_enumerated),
                    format!("{}/{}", r.emptiness_batches, r.emptiness_checks),
                    r.count_parallel_splits.to_string(),
                ]);
            }
            Err(e) => {
                rows.push(vec![
                    name.clone(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("failed: {e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    rows.push(vec![
        "TOTAL".into(),
        ms(verify_total),
        ms(totals.0),
        ms(totals.1),
        ms(totals.2),
        ms(totals.3),
        ms(verify_total + totals.0 + totals.1 + totals.2 + totals.3),
        hit_rate(cache_totals.0, cache_totals.1),
        strategy(strategy_totals.0, strategy_totals.1),
        format!("{}/{}", emptiness_totals.0, emptiness_totals.1),
        splits_total.to_string(),
    ]);
    print_table(
        &[
            "program",
            "verify",
            "preprocess",
            "Pluto",
            "PolyUFC-CM",
            "steps 4-6",
            "total",
            "count cache",
            "sym/enum",
            "empt b/c",
            "par splits",
        ],
        &rows,
    );
    println!("\npeak verify-gate solver arena: {} KiB", arena_peak / 1024);
    if all_fallbacks.is_empty() {
        println!("\nfallback kernels: none (all analyses finished within the solver budget)");
    } else {
        println!(
            "\nfallback kernels ({}): {}",
            all_fallbacks.len(),
            all_fallbacks.join(", ")
        );
    }
    println!("\n(The paper's flow times out at 30 min on some kernels and resets f_c to max;");
    println!(" our PolyUFC-CM uses a solver work budget with the same fallback semantics.");
    println!(" 'sym/enum' tallies coupled components counted in closed form vs enumerated.)");
}
