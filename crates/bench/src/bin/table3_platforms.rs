//! Table III: the simulated microarchitecture platforms.

use polyufc_bench::print_table;
use polyufc_machine::Platform;

fn main() {
    println!("# Table III — platforms");
    let mut rows = Vec::new();
    for p in Platform::all() {
        rows.push(vec![
            p.name.clone(),
            match p.name.as_str() {
                "BDW" => "Xeon E5-1650 v4 (2015)".into(),
                "RPL" => "Core i5-13600 (2023)".into(),
                _ => "custom".into(),
            },
            format!("{}C/{}T", p.cores, p.threads),
            format!("{:.1} GHz", p.core_freq_ghz),
            format!("{:.1}-{:.1} GHz", p.uncore_min_ghz, p.uncore_max_ghz),
            format!("{}", p.hierarchy.llc()),
            format!("{:.0} GB/s", p.dram_bw_peak_gbps),
            format!("{:.0} µs", p.cap_switch_us),
            if p.has_uncore_rapl_zone {
                "yes".into()
            } else {
                "no (package only)".into()
            },
        ]);
    }
    print_table(
        &[
            "arch",
            "CPU",
            "cores",
            "core f",
            "uncore f",
            "LLC",
            "DRAM BW",
            "cap switch",
            "uncore RAPL",
        ],
        &rows,
    );
    for p in Platform::all() {
        println!("\n{} cache hierarchy:", p.name);
        for (i, l) in p.hierarchy.levels.iter().enumerate() {
            println!("  L{}: {}", i + 1, l);
        }
        println!(
            "  uncore search space: {} steps of {:.1} GHz",
            p.uncore_freqs().len(),
            p.uncore_step_ghz
        );
    }
}
