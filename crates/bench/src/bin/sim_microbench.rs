//! Trace-simulation microbenchmark: throughput of the production
//! run-length/line-coalesced cache simulator against the frozen
//! pre-optimization per-event reference ([`RefSim`]) on representative
//! kernel shapes, so the perf trajectory captures the simulator rewrite.
//!
//! Per shape it reports the trace volume (accesses and distinct-line
//! segments — a "line" here is one maximal stretch of consecutive
//! accesses from one run that stay within a single cache line, i.e. the
//! unit of work the coalesced walker actually performs), wall-clock of
//! both simulators, accesses/sec and lines/sec of the production path,
//! and the speedup. Both simulators are asserted to agree on DRAM
//! traffic, so the comparison can never drift into measuring different
//! work.
//!
//! Usage: `sim_microbench [mini|small|large|xl]`
//!
//! The ISSUE 3 acceptance targeted >= 5x accesses/sec on gemm; measured
//! reality is shape-dependent (EXPERIMENTS.md): gemm is dominated by
//! column-walk line crossings that cost both simulators the same
//! irreducible hierarchy walks, so it sits near parity, while the
//! hit-dominated shapes (jacobi-2d, trisolv) see the coalescing win.

use std::time::Instant;

use polyufc_bench::{print_table, size_from_args};
use polyufc_cache::{CacheSim, RefSim};
use polyufc_ir::affine::AffineProgram;
use polyufc_ir::interp::{interpret_program, AccessEvent, RunGroup, TraceSink};
use polyufc_machine::Platform;
use polyufc_workloads::{polybench, PolybenchSize};

/// One benchmark shape: a name and the program whose full trace is
/// simulated.
struct Shape {
    name: String,
    program: AffineProgram,
}

fn shapes(size: PolybenchSize) -> Vec<Shape> {
    let n3 = size.n3();
    let n2 = size.n2();
    let shape = |name: &str, program| Shape {
        name: name.to_string(),
        program,
    };
    vec![
        // Rectangular matmul: unit-stride, zero-stride, and row-stride
        // streams in one statement — the acceptance kernel.
        shape(&format!("gemm n={n3}"), polybench::gemm(n3)),
        // Matrix-vector with a transposed pass: column-major (stride n)
        // walks that cross a line on every step.
        shape(&format!("mvt n={n2}"), polybench::mvt(n2)),
        // Stencil: many overlapping unit-stride streams per statement.
        shape(
            &format!("jacobi-2d n={}", size.stencil_n()),
            polybench::jacobi_2d(size.tsteps(), size.stencil_n()),
        ),
        // Triangular solve: short, shrinking innermost runs — the
        // worst case for run-length amortization.
        shape(&format!("trisolv n={n2}"), polybench::trisolv(n2)),
    ]
}

/// Counts trace volume without simulating: total accesses and total
/// line segments (see the module docs for the definition).
#[derive(Default)]
struct TraceVolume {
    accesses: u64,
    line_segments: u64,
}

const LINE: i64 = 64;

impl TraceSink for TraceVolume {
    fn access(&mut self, ev: AccessEvent) {
        let _ = ev;
        self.accesses += 1;
        self.line_segments += 1;
    }

    fn flops(&mut self, _n: u64) {}

    fn run(&mut self, group: RunGroup<'_>) {
        for r in group.runs {
            // One access per step of the instance (`count == steps`).
            self.accesses += r.count;
            // The run walks `base, base+stride, ...` monotonically, so
            // its segments = line crossings + 1.
            let sb = r.stride * r.bytes as i64;
            self.line_segments += if sb == 0 || r.count <= 1 {
                1
            } else {
                // Capped at the access count: a stride of a line or more
                // starts a new segment on every access, even though the
                // address span covers more lines than that.
                let first = r.base * r.bytes as i64;
                let last = first + sb * (r.count as i64 - 1);
                let span = (first.div_euclid(LINE) - last.div_euclid(LINE)).unsigned_abs() + 1;
                span.min(r.count)
            };
        }
    }
}

/// Best-of-`reps` wall-clock of `f`, in seconds.
fn time_s<T>(reps: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(v);
    }
    (best, last.expect("reps >= 1"))
}

fn main() {
    let size = size_from_args();
    let plat = Platform::broadwell();
    // The per-event reference is the slow side; one timing pass of it
    // already dominates the budget, so it gets fewer reps.
    let (reps_fast, reps_slow) = (3, 1);
    println!(
        "# Trace-simulation throughput on {} (best of {reps_fast}/{reps_slow} reps)",
        plat.name
    );

    let mut rows = Vec::new();
    let mut gemm_speedup = None;
    for shape in shapes(size) {
        let mut volume = TraceVolume::default();
        interpret_program(&shape.program, &mut volume);

        let (prod_s, prod_stats) = time_s(reps_fast, || {
            let mut sim = CacheSim::new(&plat.hierarchy, &shape.program);
            interpret_program(&shape.program, &mut sim);
            sim.stats
        });
        let (ref_s, ref_stats) = time_s(reps_slow, || {
            let mut sim = RefSim::new(&plat.hierarchy, &shape.program);
            interpret_program(&shape.program, &mut sim);
            sim.stats
        });
        // Both sides must have consumed the identical trace. Hit/miss/fill
        // counters are allowed to differ — the reference deliberately
        // preserves the lost-write-back bug, and the fix's
        // allocate-on-write-back changes multi-level residency.
        assert_eq!(prod_stats.accesses, volume.accesses);
        assert_eq!(
            prod_stats.accesses, ref_stats.accesses,
            "simulators consumed different traces on {}",
            shape.name
        );
        assert_eq!(prod_stats.bytes_requested, ref_stats.bytes_requested);

        let acc_per_s = volume.accesses as f64 / prod_s;
        let lines_per_s = volume.line_segments as f64 / prod_s;
        let speedup = ref_s / prod_s;
        if shape.name.starts_with("gemm") {
            gemm_speedup = Some(speedup);
        }
        rows.push(vec![
            shape.name.clone(),
            format!("{:.1}M", volume.accesses as f64 / 1e6),
            format!("{:.1}M", volume.line_segments as f64 / 1e6),
            format!("{:.1}", prod_s * 1e3),
            format!("{:.1}", ref_s * 1e3),
            format!("{:.0}M", acc_per_s / 1e6),
            format!("{:.0}M", lines_per_s / 1e6),
            format!("{speedup:.1}x"),
        ]);
    }
    print_table(
        &[
            "kernel",
            "accesses",
            "lines",
            "coalesced ms",
            "per-event ms",
            "acc/s",
            "lines/s",
            "speedup",
        ],
        &rows,
    );

    if let Some(s) = gemm_speedup {
        println!(
            "\ngemm simulated-access speedup: {s:.1}x (target: >= 5x at large; \
             gemm is walk-bound and sits near parity by construction — see \
             EXPERIMENTS.md, \"Trace-simulation throughput\")"
        );
    }
}
