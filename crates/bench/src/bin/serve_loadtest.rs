//! Load test for the `polyufc serve` daemon: a real [`Server`] on an
//! ephemeral TCP port, hammered by concurrent client threads over the
//! NDJSON wire protocol, with throughput and latency percentiles per
//! phase.
//!
//! Phases:
//!
//! * **cold** — every distinct request compiles (epsilon-perturbed
//!   variants defeat the artifact cache on purpose);
//! * **hot** — one batch of requests repeated from the warm cache; the
//!   mini gate requires a ≥ 90% artifact-cache hit rate here;
//! * **mixed** — 70% warm / 20% cold / 10% malformed, one request in
//!   flight per connection; the mini gate requires ≥ 1,000 req/s;
//! * **pipelined** — the same mixed blend but each client writes a
//!   window of requests before reading the replies, exercising the
//!   reactor's in-order pipelining; the mini gate requires ≥ 5,000 req/s.
//!
//! Usage: `serve_loadtest [mini|small|large|xl] [BENCH_serve.json]`. At
//! `mini` the gates are enforced (exit 1 on miss) so CI catches
//! serving-path regressions; the larger presets report without gating.
//! With a second positional argument, per-phase results are also written
//! as JSON for the perf trajectory.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use polyufc_bench::{print_table, size_from_args};
use polyufc_serve::json::push_escaped;
use polyufc_serve::{EngineConfig, Listen, Server, ServerConfig};
use polyufc_workloads::{polybench_suite, PolybenchSize};

/// Workloads that exercise distinct pipeline shapes: a CB blas kernel, a
/// BB mat-vec composition, and a stencil.
const WORKLOADS: &[&str] = &["gemm", "mvt", "jacobi-2d"];

/// Client threads (concurrent connections).
const CLIENTS: usize = 8;

/// Requests each pipelined client writes before reading the replies.
const PIPELINE_WINDOW: usize = 64;

/// One wire request line for a workload source at a given epsilon.
fn compile_line(source: &str, epsilon: f64) -> String {
    let mut s = String::with_capacity(source.len() + 96);
    s.push_str("{\"op\":\"compile\",\"format\":\"ir\",\"epsilon\":");
    s.push_str(&format!("{epsilon}"));
    s.push_str(",\"source\":");
    push_escaped(&mut s, source);
    s.push('}');
    s
}

/// Malformed request lines (the 10% noise in the mixed phase): bad JSON,
/// schema violations, unknown ops, and unparseable kernel sources.
fn malformed_lines() -> Vec<String> {
    vec![
        "{".to_string(),
        "[1,2,3]".to_string(),
        "{\"op\":\"frobnicate\"}".to_string(),
        "{\"op\":\"compile\"}".to_string(),
        "{\"op\":\"compile\",\"source\":\"func @k { wat }\"}".to_string(),
        "{\"op\":\"compile\",\"source\":\"x\",\"epsilon\":-1}".to_string(),
        "not json at all".to_string(),
    ]
}

/// Round-trip latencies (µs) of running `lines` across [`CLIENTS`]
/// threads against `addr`, each thread on its own connection taking lines
/// round-robin, one request in flight at a time. Returns (latencies,
/// wall seconds, error-response count).
fn drive(addr: &str, lines: &[String]) -> (Vec<u64>, f64, usize) {
    let lines = Arc::new(lines.to_vec());
    let results: Arc<Mutex<(Vec<u64>, usize)>> = Arc::new(Mutex::new((Vec::new(), 0)));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let lines = Arc::clone(&lines);
        let results = Arc::clone(&results);
        let addr = addr.to_string();
        handles.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(&addr).expect("connect");
            stream.set_nodelay(true).ok();
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let mut lat = Vec::new();
            let mut errors = 0usize;
            let mut reply = String::new();
            for line in lines.iter().skip(c).step_by(CLIENTS) {
                let t = Instant::now();
                writer.write_all(line.as_bytes()).expect("send");
                writer.write_all(b"\n").expect("send");
                reply.clear();
                reader.read_line(&mut reply).expect("recv");
                lat.push(t.elapsed().as_micros() as u64);
                if !reply.starts_with("{\"ok\":true") {
                    errors += 1;
                }
            }
            let mut r = results.lock().unwrap();
            r.0.extend(lat);
            r.1 += errors;
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    let wall = t0.elapsed().as_secs_f64();
    let (lat, errors) = Arc::try_unwrap(results).unwrap().into_inner().unwrap();
    (lat, wall, errors)
}

/// Pipelined variant of [`drive`]: each client writes
/// [`PIPELINE_WINDOW`] requests in one batch, then reads the window's
/// replies, so the daemon sees deep per-connection queues instead of one
/// request in flight. Latency is reply completion time since its window
/// was sent (so it includes queueing behind window-mates, as pipelining
/// implies). Replies must come back in request order — each is matched
/// against the line it answers by position.
fn drive_pipelined(addr: &str, lines: &[String]) -> (Vec<u64>, f64, usize) {
    let lines = Arc::new(lines.to_vec());
    let results: Arc<Mutex<(Vec<u64>, usize)>> = Arc::new(Mutex::new((Vec::new(), 0)));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let lines = Arc::clone(&lines);
        let results = Arc::clone(&results);
        let addr = addr.to_string();
        handles.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(&addr).expect("connect");
            stream.set_nodelay(true).ok();
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let mut lat = Vec::new();
            let mut errors = 0usize;
            let mine: Vec<&String> = lines.iter().skip(c).step_by(CLIENTS).collect();
            let mut reply = String::new();
            for window in mine.chunks(PIPELINE_WINDOW) {
                let t = Instant::now();
                let mut batch = String::new();
                for line in window {
                    batch.push_str(line);
                    batch.push('\n');
                }
                writer.write_all(batch.as_bytes()).expect("send window");
                for _ in window {
                    reply.clear();
                    reader.read_line(&mut reply).expect("recv");
                    lat.push(t.elapsed().as_micros() as u64);
                    if !reply.starts_with("{\"ok\":true") {
                        errors += 1;
                    }
                }
            }
            let mut r = results.lock().unwrap();
            r.0.extend(lat);
            r.1 += errors;
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    let wall = t0.elapsed().as_secs_f64();
    let (lat, errors) = Arc::try_unwrap(results).unwrap().into_inner().unwrap();
    (lat, wall, errors)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Per-phase results: table row + the numbers the JSON report keeps.
struct Phase {
    name: &'static str,
    requests: usize,
    rps: f64,
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
    errors: usize,
}

fn phase(name: &'static str, lat: &mut [u64], wall: f64, errors: usize) -> Phase {
    lat.sort_unstable();
    Phase {
        name,
        requests: lat.len(),
        rps: lat.len() as f64 / wall.max(1e-9),
        p50_us: percentile(lat, 0.50),
        p99_us: percentile(lat, 0.99),
        max_us: lat.last().copied().unwrap_or(0),
        errors,
    }
}

fn main() {
    let size = size_from_args();
    // An optional second positional argument is the JSON report path.
    let json_path = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .nth(1);
    // Repetition counts scale with the preset: mini must clear the req/s
    // gates with margin yet finish in CI time.
    let (hot_reps, mixed_reps) = match size {
        PolybenchSize::Mini => (64, 48),
        PolybenchSize::Small => (32, 24),
        _ => (16, 12),
    };

    let sources: Vec<(String, String)> = polybench_suite(size)
        .into_iter()
        .filter(|w| WORKLOADS.contains(&w.name))
        .map(|w| (w.name.to_string(), format!("{}", w.program)))
        .collect();
    assert_eq!(
        sources.len(),
        WORKLOADS.len(),
        "loadtest workloads missing from the polybench suite"
    );

    // Sequential clients block on their own round trips, so at most
    // CLIENTS requests are in flight there; the pipelined phase can park
    // every cold request of every window in the pool queue at once
    // (warm requests never reach the pool). Size for that worst case —
    // the gate measures cache/reactor throughput, not backpressure shed
    // (wire tests cover that).
    let mut engine_cfg = EngineConfig::default();
    engine_cfg.queue_cap = engine_cfg.queue_cap.max(CLIENTS * PIPELINE_WINDOW);
    let server = Server::bind(&ServerConfig {
        listen: Listen::Tcp("127.0.0.1:0".to_string()),
        engine: engine_cfg,
    })
    .expect("bind loadtest server");
    let addr = server.local_addr().expect("tcp addr").to_string();
    let engine = server.engine();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    let mut phases: Vec<Phase> = Vec::new();

    // Phase 1: cold. Epsilon perturbations give every request a distinct
    // artifact key, so each one pays a full compile (the per-worker
    // characterization-prefix cache still amortizes stages 1–3 across
    // variants of one program — that is the production behavior too).
    let cold: Vec<String> = (0..sources.len() * 8)
        .map(|i| {
            let (_, src) = &sources[i % sources.len()];
            compile_line(src, 1e-3 * (1.0 + (i + 1) as f64 * 1e-6))
        })
        .collect();
    let (mut lat, wall, errors) = drive(&addr, &cold);
    phases.push(phase("cold", &mut lat, wall, errors));

    // Phase 2: hot. One fixed batch repeated; after the first pass every
    // response comes from the artifact cache (or a shared in-flight
    // compile).
    let hot_batch: Vec<String> = sources
        .iter()
        .map(|(_, src)| compile_line(src, 1e-3))
        .collect();
    let hot: Vec<String> = (0..hot_reps).flat_map(|_| hot_batch.clone()).collect();
    let before_hot = engine.cache_stats();
    let (mut lat, wall, errors) = drive(&addr, &hot);
    phases.push(phase("hot", &mut lat, wall, errors));
    let after_hot = engine.cache_stats();
    let hot_lookups = (after_hot.hits + after_hot.misses) - (before_hot.hits + before_hot.misses);
    let hot_hit_rate = if hot_lookups == 0 {
        0.0
    } else {
        (after_hot.hits - before_hot.hits) as f64 / hot_lookups as f64
    };

    // Phase 3: mixed 70/20/10 — warm repeats, fresh epsilon variants,
    // malformed noise; one request in flight per connection.
    let bad = malformed_lines();
    let mixed: Vec<String> = (0..sources.len() * mixed_reps * 10)
        .map(|i| match i % 10 {
            0 | 1 => compile_line(
                &sources[i % sources.len()].1,
                1e-3 * (1.0 + (1_000_000 + i) as f64 * 1e-6),
            ),
            2 => bad[i % bad.len()].clone(),
            _ => hot_batch[i % hot_batch.len()].clone(),
        })
        .collect();
    let (mut lat, wall, errors) = drive(&addr, &mixed);
    phases.push(phase("mixed 70/20/10", &mut lat, wall, errors));
    let mixed_rps = phases.last().map_or(0.0, |p| p.rps);

    // Phase 4: the same blend, pipelined. Fresh epsilon offsets so the
    // 20% cold slice is genuinely cold again.
    let pipelined: Vec<String> = (0..sources.len() * mixed_reps * 10)
        .map(|i| match i % 10 {
            0 | 1 => compile_line(
                &sources[i % sources.len()].1,
                1e-3 * (1.0 + (2_000_000 + i) as f64 * 1e-6),
            ),
            2 => bad[i % bad.len()].clone(),
            _ => hot_batch[i % hot_batch.len()].clone(),
        })
        .collect();
    let (mut lat, wall, errors) = drive_pipelined(&addr, &pipelined);
    phases.push(phase("pipelined mixed", &mut lat, wall, errors));
    let pipelined_rps = phases.last().map_or(0.0, |p| p.rps);

    shutdown.shutdown();
    server_thread.join().expect("server join");

    println!("== polyufc serve loadtest ({CLIENTS} clients) ==");
    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                p.requests.to_string(),
                format!("{:.0}", p.rps),
                p.p50_us.to_string(),
                p.p99_us.to_string(),
                p.max_us.to_string(),
                p.errors.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "phase",
            "requests",
            "req/s",
            "p50 µs",
            "p99 µs",
            "max µs",
            "error replies",
        ],
        &rows,
    );
    println!(
        "hot-phase artifact cache hit rate: {:.1}%",
        hot_hit_rate * 100.0
    );

    if let Some(path) = json_path {
        // Hand-rolled JSON, like bench_harness: the offline serde
        // stand-in has no serializer and the schema is flat.
        let mut json = String::new();
        json.push_str("{\n  \"schema\": \"polyufc-bench-serve/1\",\n");
        json.push_str(&format!("  \"clients\": {CLIENTS},\n"));
        json.push_str(&format!(
            "  \"threads\": {},\n",
            polyufc_par::worker_count()
        ));
        json.push_str(&format!(
            "  \"hot_hit_rate\": {:.4},\n  \"phases\": [\n",
            hot_hit_rate
        ));
        for (i, p) in phases.iter().enumerate() {
            let comma = if i + 1 < phases.len() { "," } else { "" };
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"requests\": {}, \"rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"errors\": {}}}{comma}\n",
                p.name, p.requests, p.rps, p.p50_us, p.p99_us, p.max_us, p.errors
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write serve bench json");
        println!("wrote {path}");
    }

    if matches!(size, PolybenchSize::Mini) {
        let mut failed = false;
        if mixed_rps < 1000.0 {
            eprintln!("FAIL: mixed-phase throughput {mixed_rps:.0} req/s < 1000 req/s");
            failed = true;
        }
        if pipelined_rps < 5000.0 {
            eprintln!("FAIL: pipelined-phase throughput {pipelined_rps:.0} req/s < 5000 req/s");
            failed = true;
        }
        if hot_hit_rate < 0.90 {
            eprintln!(
                "FAIL: hot-phase artifact hit rate {:.1}% < 90%",
                hot_hit_rate * 100.0
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}
