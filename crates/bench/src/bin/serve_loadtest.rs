//! Load test for the `polyufc serve` daemon: a real [`Server`] on an
//! ephemeral TCP port, hammered by concurrent client threads over the
//! NDJSON wire protocol, with throughput and latency percentiles per
//! phase.
//!
//! Phases:
//!
//! * **cold** — every distinct request compiles (epsilon-perturbed
//!   variants defeat the artifact cache on purpose);
//! * **hot** — one batch of requests repeated from the warm cache; the
//!   mini gate requires a ≥ 90% artifact-cache hit rate here;
//! * **mixed** — 70% warm / 20% cold / 10% malformed, the realistic
//!   steady state; the mini gate requires ≥ 1,000 req/s.
//!
//! Usage: `serve_loadtest [mini|small|large|xl]`. At `mini` the gates are
//! enforced (exit 1 on miss) so CI catches serving-path regressions; the
//! larger presets report without gating.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use polyufc_bench::{print_table, size_from_args};
use polyufc_serve::json::push_escaped;
use polyufc_serve::{EngineConfig, Listen, Server, ServerConfig};
use polyufc_workloads::{polybench_suite, PolybenchSize};

/// Workloads that exercise distinct pipeline shapes: a CB blas kernel, a
/// BB mat-vec composition, and a stencil.
const WORKLOADS: &[&str] = &["gemm", "mvt", "jacobi-2d"];

/// Client threads (concurrent connections).
const CLIENTS: usize = 8;

/// One wire request line for a workload source at a given epsilon.
fn compile_line(source: &str, epsilon: f64) -> String {
    let mut s = String::with_capacity(source.len() + 96);
    s.push_str("{\"op\":\"compile\",\"format\":\"ir\",\"epsilon\":");
    s.push_str(&format!("{epsilon}"));
    s.push_str(",\"source\":");
    push_escaped(&mut s, source);
    s.push('}');
    s
}

/// Malformed request lines (the 10% noise in the mixed phase): bad JSON,
/// schema violations, unknown ops, and unparseable kernel sources.
fn malformed_lines() -> Vec<String> {
    vec![
        "{".to_string(),
        "[1,2,3]".to_string(),
        "{\"op\":\"frobnicate\"}".to_string(),
        "{\"op\":\"compile\"}".to_string(),
        "{\"op\":\"compile\",\"source\":\"func @k { wat }\"}".to_string(),
        "{\"op\":\"compile\",\"source\":\"x\",\"epsilon\":-1}".to_string(),
        "not json at all".to_string(),
    ]
}

/// Round-trip latencies (µs) of running `lines` across [`CLIENTS`]
/// threads against `addr`, each thread on its own connection taking lines
/// round-robin. Returns (latencies, wall seconds, error-response count).
fn drive(addr: &str, lines: &[String]) -> (Vec<u64>, f64, usize) {
    let lines = Arc::new(lines.to_vec());
    let results: Arc<Mutex<(Vec<u64>, usize)>> = Arc::new(Mutex::new((Vec::new(), 0)));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let lines = Arc::clone(&lines);
        let results = Arc::clone(&results);
        let addr = addr.to_string();
        handles.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(&addr).expect("connect");
            stream.set_nodelay(true).ok();
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let mut lat = Vec::new();
            let mut errors = 0usize;
            let mut reply = String::new();
            for line in lines.iter().skip(c).step_by(CLIENTS) {
                let t = Instant::now();
                writer.write_all(line.as_bytes()).expect("send");
                writer.write_all(b"\n").expect("send");
                reply.clear();
                reader.read_line(&mut reply).expect("recv");
                lat.push(t.elapsed().as_micros() as u64);
                if !reply.starts_with("{\"ok\":true") {
                    errors += 1;
                }
            }
            let mut r = results.lock().unwrap();
            r.0.extend(lat);
            r.1 += errors;
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    let wall = t0.elapsed().as_secs_f64();
    let (lat, errors) = Arc::try_unwrap(results).unwrap().into_inner().unwrap();
    (lat, wall, errors)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn phase_row(name: &str, lat: &mut [u64], wall: f64, errors: usize) -> Vec<String> {
    lat.sort_unstable();
    let rps = lat.len() as f64 / wall.max(1e-9);
    vec![
        name.to_string(),
        lat.len().to_string(),
        format!("{rps:.0}"),
        percentile(lat, 0.50).to_string(),
        percentile(lat, 0.99).to_string(),
        lat.last().copied().unwrap_or(0).to_string(),
        errors.to_string(),
    ]
}

fn main() {
    let size = size_from_args();
    // Repetition counts scale with the preset: mini must clear the req/s
    // gate with margin yet finish in CI time.
    let (hot_reps, mixed_reps) = match size {
        PolybenchSize::Mini => (64, 48),
        PolybenchSize::Small => (32, 24),
        _ => (16, 12),
    };

    let sources: Vec<(String, String)> = polybench_suite(size)
        .into_iter()
        .filter(|w| WORKLOADS.contains(&w.name))
        .map(|w| (w.name.to_string(), format!("{}", w.program)))
        .collect();
    assert_eq!(
        sources.len(),
        WORKLOADS.len(),
        "loadtest workloads missing from the polybench suite"
    );

    // Each client blocks on its own round trip, so at most CLIENTS
    // requests are ever in flight; a queue of 2×CLIENTS means the test
    // measures compile/cache throughput, not backpressure shed (which
    // wire tests cover separately).
    let mut engine_cfg = EngineConfig::default();
    engine_cfg.queue_cap = engine_cfg.queue_cap.max(2 * CLIENTS);
    let server = Server::bind(&ServerConfig {
        listen: Listen::Tcp("127.0.0.1:0".to_string()),
        engine: engine_cfg,
    })
    .expect("bind loadtest server");
    let addr = server.local_addr().expect("tcp addr").to_string();
    let engine = server.engine();
    let stop = server.stop_flag();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    let mut rows = Vec::new();

    // Phase 1: cold. Epsilon perturbations give every request a distinct
    // artifact key, so each one pays a full compile.
    let cold: Vec<String> = (0..sources.len() * 8)
        .map(|i| {
            let (_, src) = &sources[i % sources.len()];
            compile_line(src, 1e-3 * (1.0 + (i + 1) as f64 * 1e-6))
        })
        .collect();
    let (mut lat, wall, errors) = drive(&addr, &cold);
    rows.push(phase_row("cold", &mut lat, wall, errors));

    // Phase 2: hot. One fixed batch repeated; after the first pass every
    // response comes from the artifact cache (or a shared in-flight
    // compile).
    let hot_batch: Vec<String> = sources
        .iter()
        .map(|(_, src)| compile_line(src, 1e-3))
        .collect();
    let hot: Vec<String> = (0..hot_reps).flat_map(|_| hot_batch.clone()).collect();
    let before_hot = engine.cache_stats();
    let (mut lat, wall, errors) = drive(&addr, &hot);
    rows.push(phase_row("hot", &mut lat, wall, errors));
    let after_hot = engine.cache_stats();
    let hot_lookups = (after_hot.hits + after_hot.misses) - (before_hot.hits + before_hot.misses);
    let hot_hit_rate = if hot_lookups == 0 {
        0.0
    } else {
        (after_hot.hits - before_hot.hits) as f64 / hot_lookups as f64
    };

    // Phase 3: mixed 70/20/10 — warm repeats, fresh epsilon variants,
    // malformed noise.
    let bad = malformed_lines();
    let mixed: Vec<String> = (0..sources.len() * mixed_reps * 10)
        .map(|i| match i % 10 {
            0 | 1 => compile_line(
                &sources[i % sources.len()].1,
                1e-3 * (1.0 + (1_000_000 + i) as f64 * 1e-6),
            ),
            2 => bad[i % bad.len()].clone(),
            _ => hot_batch[i % hot_batch.len()].clone(),
        })
        .collect();
    let (mut lat, wall, errors) = drive(&addr, &mixed);
    let mixed_rps = lat.len() as f64 / wall.max(1e-9);
    rows.push(phase_row("mixed 70/20/10", &mut lat, wall, errors));

    stop.store(true, Ordering::SeqCst);
    server_thread.join().expect("server join");

    println!("== polyufc serve loadtest ({CLIENTS} clients) ==");
    print_table(
        &[
            "phase",
            "requests",
            "req/s",
            "p50 µs",
            "p99 µs",
            "max µs",
            "error replies",
        ],
        &rows,
    );
    println!(
        "hot-phase artifact cache hit rate: {:.1}%",
        hot_hit_rate * 100.0
    );

    if matches!(size, PolybenchSize::Mini) {
        let mut failed = false;
        if mixed_rps < 1000.0 {
            eprintln!("FAIL: mixed-phase throughput {mixed_rps:.0} req/s < 1000 req/s");
            failed = true;
        }
        if hot_hit_rate < 0.90 {
            eprintln!(
                "FAIL: hot-phase artifact hit rate {:.1}% < 90%",
                hot_hit_rate * 100.0
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}
