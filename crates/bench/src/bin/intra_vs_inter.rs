//! Sec. VII-F: inter-kernel capping vs. intra-kernel control — each
//! kernel's outer loop is split into chunks that can each carry their own
//! cap (the intra-kernel DVFS/DUFS style of the related work). For
//! single-phase loop nests the chunks want the same frequency, so the
//! finer control only adds switch opportunities and analysis cost,
//! validating the paper's claim that inter-kernel capping is the
//! practical choice.

use polyufc::Pipeline;
use polyufc_bench::{pct, print_table, size_from_args};
use polyufc_ir::affine::AffineProgram;
use polyufc_machine::{measure_kernel, ExecutionEngine, Platform, UfsDriver};
use polyufc_workloads::polybench;

fn split_program(p: &AffineProgram, chunks: usize) -> AffineProgram {
    let mut out = AffineProgram::new(format!("{}_split", p.name));
    out.arrays = p.arrays.clone();
    for k in &p.kernels {
        out.kernels.extend(k.split_outer(chunks));
    }
    out
}

fn main() {
    let size = size_from_args();
    let plat = Platform::broadwell();
    let mut pipe = Pipeline::new(plat.clone());
    // Granularity study: caps regardless of kernel length (the guard is a
    // deployment safety, orthogonal to the inter/intra question).
    pipe.cap_switch_guard = 0.0;
    let eng = ExecutionEngine::new(plat.clone());

    println!(
        "# Sec. VII-F — inter-kernel caps vs intra-kernel (outer-loop chunk) caps on {}",
        plat.name
    );
    let mut rows = Vec::new();
    for (name, program) in [
        ("gemm", polybench::gemm(size.n3())),
        ("mvt", polybench::mvt(size.n2())),
        (
            "jacobi-2d",
            polybench::jacobi_2d(size.tsteps(), size.stencil_n()),
        ),
    ] {
        // Steady-state comparison (switch costs reported separately; for
        // short chunks they dominate, which is itself the intra-kernel
        // penalty the paper calls out).
        let run = |prog: &AffineProgram| -> Option<(f64, usize, Vec<f64>)> {
            let out = pipe.compile_affine(prog).ok()?;
            let counters: Vec<_> = out
                .optimized
                .kernels
                .iter()
                .map(|k| measure_kernel(&plat, &out.optimized, k))
                .collect();
            let baseline = UfsDriver::stock().run_baseline(&eng, &counters);
            let (mut time, mut energy) = (0.0, 0.0);
            for (c, &f) in counters.iter().zip(&out.caps_ghz) {
                let r = eng.run_kernel(c, f);
                time += r.time_s;
                energy += r.energy.total();
            }
            Some((
                1.0 - energy * time / baseline.edp(),
                out.scf.cap_count(),
                out.caps_ghz,
            ))
        };
        let Some((inter_gain, inter_caps, _)) = run(&program) else {
            continue;
        };
        let split = split_program(&program, 4);
        let Some((intra_gain, intra_caps, intra_freqs)) = run(&split) else {
            continue;
        };
        let uniq: std::collections::BTreeSet<String> =
            intra_freqs.iter().map(|f| format!("{f:.1}")).collect();
        rows.push(vec![
            name.to_string(),
            format!("{inter_caps} caps, {}", pct(inter_gain)),
            format!("{intra_caps} caps, {}", pct(intra_gain)),
            format!(
                "chunk caps: {{{}}}",
                uniq.into_iter().collect::<Vec<_>>().join(",")
            ),
        ]);
    }
    print_table(
        &[
            "kernel",
            "inter-kernel (PolyUFC)",
            "intra-kernel (4 chunks)",
            "chunk uniformity",
        ],
        &rows,
    );
    println!("\nUniform chunk caps confirm single-phase nests gain nothing from finer");
    println!("control; intra-kernel capping only pays on genuine phase changes, which");
    println!("PolyUFC already separates at kernel/linalg granularity (Fig. 5).");
}
