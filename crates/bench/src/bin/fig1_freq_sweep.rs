//! Fig. 1: execution time, energy, and EDP across uncore frequency caps
//! for the motivating kernels (conv2d, 2mm, gemver, mvt), Pluto-optimized,
//! on Broadwell. Prints one series per kernel and marks the minima.

use polyufc::Pipeline;
use polyufc_bench::size_from_args;
use polyufc_ir::lower::lower_tensor_to_linalg;
use polyufc_machine::{measure_program, ExecutionEngine, Platform};
use polyufc_workloads::ml::conv2d_convnext;
use polyufc_workloads::polybench;

fn main() {
    let size = size_from_args();
    let plat = Platform::broadwell();
    let pipe = Pipeline::new(plat.clone());
    let eng = ExecutionEngine::new(plat.clone());

    let conv = {
        let w = conv2d_convnext();
        lower_tensor_to_linalg(&w.graph, w.elem).lower_to_affine()
    };
    let programs = vec![
        ("conv2d", conv),
        ("2mm", polybench::two_mm(size.n3())),
        ("gemver", polybench::gemver(size.n2())),
        ("mvt", polybench::mvt(size.n2())),
    ];

    println!(
        "# Fig. 1 — time / energy / EDP vs uncore frequency cap ({})",
        plat.name
    );
    // Compile + trace-measure the four kernels in parallel; the frequency
    // sweeps below print from the input-ordered results.
    let prepared = polyufc_par::par_map(&programs, |(_, program)| {
        let out = pipe.compile_affine(program).expect("analysis");
        let counters = measure_program(&plat, &out.optimized);
        (out, counters)
    });
    for ((name, _), (_out, counters)) in programs.iter().zip(prepared) {
        println!("\n## {name}");
        println!(
            "{:>6} {:>12} {:>12} {:>14}",
            "f/GHz", "time/s", "energy/J", "EDP/Js"
        );
        let mut series = Vec::new();
        for f in plat.uncore_freqs() {
            let mut time = 0.0;
            let mut energy = 0.0;
            for c in &counters {
                let r = eng.run_kernel(c, f);
                time += r.time_s;
                energy += r.energy.total();
            }
            let edp = energy * time;
            println!("{f:>6.1} {time:>12.6} {energy:>12.4} {edp:>14.6e}");
            series.push((f, time, energy, edp));
        }
        let tmin = series
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let emin = series
            .iter()
            .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
            .unwrap();
        let dmin = series
            .iter()
            .min_by(|a, b| a.3.partial_cmp(&b.3).unwrap())
            .unwrap();
        let fmax = series.last().unwrap();
        println!(
            "min time @ {:.1} GHz; min energy @ {:.1} GHz ({} vs max-f); min EDP @ {:.1} GHz ({} vs max-f)",
            tmin.0,
            emin.0,
            polyufc_bench::pct(1.0 - emin.2 / fmax.2),
            dmin.0,
            polyufc_bench::pct(1.0 - dmin.3 / fmax.3),
        );
    }
    polyufc_bench::report_measure_cache();
}
