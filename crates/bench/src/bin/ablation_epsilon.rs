//! Ablation: sensitivity of POLYUFC-SEARCH to the ε threshold
//! (Sec. VI-C "Tuning"): caps and steady-state EDP across ε values.

use polyufc::Pipeline;
use polyufc_bench::{evaluate, pct, print_table, size_from_args};
use polyufc_machine::{ExecutionEngine, Platform};
use polyufc_workloads::polybench_suite;

fn main() {
    let size = size_from_args();
    let plat = Platform::broadwell();
    let eng = ExecutionEngine::noiseless(plat.clone());
    let kernels = ["gemm", "mvt", "jacobi-2d", "trisolv"];
    println!(
        "# Ablation — ε sensitivity on {} (paper sets ε = 1e-3)",
        plat.name
    );
    let mut rows = Vec::new();
    for eps in [1e-6, 1e-3, 1e-2, 0.1] {
        for name in kernels {
            let w = polybench_suite(size)
                .into_iter()
                .find(|w| w.name == name)
                .expect("kernel exists");
            let mut pipe = Pipeline::new(plat.clone());
            pipe.epsilon = eps;
            let e = match evaluate(&pipe, &eng, &w.program, name) {
                Ok(e) => e,
                Err(_) => continue,
            };
            let caps: Vec<String> = e
                .steady_caps_ghz
                .iter()
                .map(|f| format!("{f:.1}"))
                .collect();
            rows.push(vec![
                format!("{eps:.0e}"),
                name.to_string(),
                caps.join(","),
                pct(e.steady_edp_improvement()),
                pct(e.steady_time_improvement()),
            ]);
        }
    }
    print_table(&["ε", "kernel", "caps (GHz)", "ΔEDP", "Δtime"], &rows);
}
