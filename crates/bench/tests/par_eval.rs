//! Property test: the parallel evaluation fan-out must be invisible —
//! running `evaluate` through the work pool returns results identical to
//! the sequential path, bit for bit, because results are collected in
//! input order and the simulator's noise is deterministic per
//! (kernel, frequency).

use proptest::prelude::*;

use polyufc::Pipeline;
use polyufc_bench::evaluate;
use polyufc_machine::{ExecutionEngine, Platform};
use polyufc_workloads::polybench;

proptest! {
    // evaluate() runs a full compile + trace simulation per case; a few
    // random sizes exercise the property without dominating the suite.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn parallel_fanout_matches_sequential(n in 16usize..48, m in 16usize..48) {
        let plat = Platform::broadwell();
        let pipe = Pipeline::new(plat.clone());
        let eng = ExecutionEngine::new(plat);
        let programs = vec![
            ("gemm".to_string(), polybench::gemm(n)),
            ("mvt".to_string(), polybench::mvt(m)),
            ("jacobi1d".to_string(), polybench::jacobi_1d(4, m)),
        ];

        // Forced-parallel fan-out (the pool still spawns real workers on a
        // single-core host when POLYUFC_THREADS asks for them)...
        std::env::set_var("POLYUFC_THREADS", "4");
        let par = polyufc_par::par_map(&programs, |(name, p)| {
            evaluate(&pipe, &eng, p, name).unwrap()
        });
        // ...versus the plain sequential path.
        std::env::set_var("POLYUFC_THREADS", "1");
        let seq: Vec<_> = programs
            .iter()
            .map(|(name, p)| evaluate(&pipe, &eng, p, name).unwrap())
            .collect();
        std::env::remove_var("POLYUFC_THREADS");

        for (a, b) in par.iter().zip(&seq) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.counters, &b.counters);
            prop_assert_eq!(&a.out.caps_ghz, &b.out.caps_ghz);
            prop_assert_eq!(&a.steady_caps_ghz, &b.steady_caps_ghz);
            // Exact float equality is the point: same inputs, same order,
            // same results.
            prop_assert_eq!(a.capped.time_s, b.capped.time_s);
            prop_assert_eq!(a.capped.energy.total(), b.capped.energy.total());
            prop_assert_eq!(a.steady.edp(), b.steady.edp());
            prop_assert_eq!(a.baseline.edp(), b.baseline.edp());
        }
    }
}
