//! End-to-end robustness contract: compile real workloads through the
//! full pipeline, inject seeded faults, and check the guarded runtime's
//! degradation bound against the stock UFS driver — the executable form
//! of the claim the `robustness_matrix` harness prints as a table.

use polyufc::Pipeline;
use polyufc_bench::evaluate_guarded;
use polyufc_machine::{ExecutionEngine, FaultPlan, Platform};
use polyufc_workloads::polybench;

/// Recoverable-scenario degradation bound (guarded EDP vs stock EDP).
const RECOVERABLE_BOUND: f64 = 1.10;
/// Unrecoverable 100%-stuck-write bound: retry + release overhead on
/// millisecond-scale kernels (the paper's seconds-scale kernels amortize
/// this below 0.1%).
const STUCK_BOUND: f64 = 1.25;

fn workloads() -> Vec<(&'static str, polyufc_ir::affine::AffineProgram)> {
    vec![("gemm", polybench::gemm(48)), ("mvt", polybench::mvt(64))]
}

/// Under the standard fault matrix (counter noise + outliers + dropped
/// cap writes), the guarded run's EDP stays within the documented bound
/// of the stock driver under the *same* faults.
#[test]
fn standard_fault_matrix_guarded_edp_is_bounded() {
    let plat = Platform::broadwell();
    let pipe = Pipeline::new(plat.clone());
    let plan = FaultPlan::parse_spec("standard,seed=42").unwrap();
    let eng = ExecutionEngine::new(plat).with_fault_plan(plan);
    for (name, program) in &workloads() {
        let e = evaluate_guarded(&pipe, &eng, program, name, true).unwrap();
        let ratio = e.capped.edp() / e.baseline.edp();
        assert!(
            ratio <= RECOVERABLE_BOUND,
            "{name}: guarded EDP {:.1}% over stock exceeds the {:.0}% bound",
            (ratio - 1.0) * 100.0,
            (RECOVERABLE_BOUND - 1.0) * 100.0
        );
        let report = e.guard.as_ref().expect("guarded eval carries a report");
        assert!(!report.fell_back, "{name}: dropped writes are recoverable");
    }
}

/// 100%-stuck writes: the unguarded run is at the mercy of whatever
/// frequency the knob lands on, while the guard detects the failed
/// verify, releases the cap, and stays within the stuck bound. The
/// guarded run must never be worse than the unguarded one here.
#[test]
fn stuck_writes_guarded_never_worse_than_unguarded() {
    let plat = Platform::broadwell();
    let pipe = Pipeline::new(plat.clone());
    let plan = FaultPlan::parse_spec("stuck,seed=42").unwrap();
    let eng = ExecutionEngine::new(plat).with_fault_plan(plan);
    for (name, program) in &workloads() {
        let unguarded = evaluate_guarded(&pipe, &eng, program, name, false).unwrap();
        let guarded = evaluate_guarded(&pipe, &eng, program, name, true).unwrap();
        // Same engine, same seeds: the stock baselines are identical, so
        // EDP ratios vs stock compare directly.
        assert_eq!(
            unguarded.baseline.edp().to_bits(),
            guarded.baseline.edp().to_bits()
        );
        let g_ratio = guarded.capped.edp() / guarded.baseline.edp();
        let u_ratio = unguarded.capped.edp() / unguarded.baseline.edp();
        assert!(
            g_ratio <= STUCK_BOUND,
            "{name}: guarded EDP {:.1}% over stock exceeds the stuck bound",
            (g_ratio - 1.0) * 100.0
        );
        assert!(
            g_ratio <= u_ratio + 1e-9,
            "{name}: guarded ({g_ratio:.4}) must not be worse than unguarded ({u_ratio:.4})"
        );
    }
}

/// With no fault plan, `--guard` is a pure observer: the guarded capped
/// run is bit-identical to the unguarded one, end to end through the
/// real pipeline.
#[test]
fn pristine_guarded_eval_matches_unguarded_bit_for_bit() {
    let plat = Platform::broadwell();
    let pipe = Pipeline::new(plat.clone());
    let eng = ExecutionEngine::new(plat);
    for (name, program) in &workloads() {
        let plain = evaluate_guarded(&pipe, &eng, program, name, false).unwrap();
        let guarded = evaluate_guarded(&pipe, &eng, program, name, true).unwrap();
        assert_eq!(
            plain.capped.time_s.to_bits(),
            guarded.capped.time_s.to_bits(),
            "{name}: guarded time differs with faults disabled"
        );
        assert_eq!(
            plain.capped.energy.total().to_bits(),
            guarded.capped.energy.total().to_bits(),
            "{name}: guarded energy differs with faults disabled"
        );
        let report = guarded.guard.as_ref().unwrap();
        assert!(!report.fell_back);
        assert_eq!(report.retries(), 0);
        assert_eq!(report.timeouts(), 0);
    }
}
