//! Criterion benchmarks of the PolyUFC compilation stages themselves
//! (the Table IV cost centers) and of the simulation substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use polyufc::{search_cap, Objective, ParametricModel, Pipeline};
use polyufc_cache::{AssocMode, CacheModel, CacheSim};
use polyufc_machine::Platform;
use polyufc_pluto::PlutoOptimizer;
use polyufc_presburger::{BasicSet, LinExpr, Set, Space};
use polyufc_roofline::RooflineModel;
use polyufc_workloads::polybench;

fn bench_presburger_counting(c: &mut Criterion) {
    // A tiled 6-D gemm-like iteration domain.
    let mut b = BasicSet::universe(Space::set(0, 6));
    for t in 0..3 {
        b.add_range(t, 0, 7);
    }
    for p in 3..6 {
        b.add_range(p, 0, 255);
        b.add_ge0(LinExpr::var(p) - LinExpr::var(p - 3) * 32);
        b.add_ge0(LinExpr::var(p - 3) * 32 + LinExpr::constant(31) - LinExpr::var(p));
    }
    let s = Set::from_basic(b);
    c.bench_function("presburger/count_tiled_6d", |bench| {
        bench.iter(|| black_box(&s).count().unwrap())
    });
}

fn bench_cache_model(c: &mut Criterion) {
    let plat = Platform::broadwell();
    let program = polybench::gemm(256);
    let (opt, _) = PlutoOptimizer::default().optimize(&program);
    let model = CacheModel::new(plat.hierarchy.clone(), AssocMode::SetAssociative);
    c.bench_function("polyufc_cm/gemm256_tiled", |bench| {
        bench.iter(|| {
            model
                .analyze_kernel(black_box(&opt), &opt.kernels[1])
                .unwrap()
        })
    });
}

fn bench_pluto(c: &mut Criterion) {
    let program = polybench::gemm(256);
    let opt = PlutoOptimizer::default();
    c.bench_function("pluto/optimize_gemm256", |bench| {
        bench.iter(|| opt.optimize(black_box(&program)))
    });
}

fn bench_search(c: &mut Criterion) {
    let plat = Platform::raptor_lake();
    let pipe = Pipeline::new(plat.clone());
    let out = pipe.compile_affine(&polybench::gemm(256)).unwrap();
    let freqs = plat.uncore_freqs();
    let conc = plat.cores as f64;
    c.bench_function("search/binary_edp_39steps", |bench| {
        bench.iter(|| {
            let pm = ParametricModel::new(&pipe.roofline, &out.cache_stats[1], true, conc);
            search_cap(black_box(&pm), &freqs, Objective::Edp, 1e-3)
        })
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let plat = Platform::broadwell();
    let pipe = Pipeline::new(plat);
    let program = polybench::mvt(512);
    c.bench_function("pipeline/compile_mvt512", |bench| {
        bench.iter(|| pipe.compile_affine(black_box(&program)).unwrap())
    });
}

fn bench_trace_sim(c: &mut Criterion) {
    let plat = Platform::broadwell();
    let program = polybench::gemm(64);
    c.bench_function("sim/trace_gemm64", |bench| {
        bench.iter(|| {
            let mut sim = CacheSim::new(&plat.hierarchy, &program);
            polyufc_ir::interp::interpret_program(black_box(&program), &mut sim);
            sim.stats.accesses
        })
    });
}

fn bench_calibration(c: &mut Criterion) {
    c.bench_function("roofline/calibrate_bdw", |bench| {
        bench.iter(|| {
            let eng = polyufc_machine::ExecutionEngine::noiseless(Platform::broadwell());
            RooflineModel::calibrate(black_box(&eng))
        })
    });
}

fn bench_presburger_algebra(c: &mut Criterion) {
    use polyufc_presburger::Set;
    let sp = Space::set(0, 2);
    let mut a = BasicSet::universe(sp.clone());
    a.add_range(0, 0, 255);
    a.add_range(1, 0, 255);
    let mut b = BasicSet::universe(sp);
    b.add_range(0, 64, 191);
    b.add_range(1, 64, 191);
    let (sa, sb) = (Set::from_basic(a), Set::from_basic(b));
    c.bench_function("presburger/subtract_boxes", |bench| {
        bench.iter(|| black_box(&sa).subtract(&sb).unwrap().count().unwrap())
    });
}

fn bench_exact_cache(c: &mut Criterion) {
    use polyufc_cache::exact::analyze_exact;
    use polyufc_cache::CacheLevelConfig;
    let program = polybench::jacobi_1d(4, 256);
    let level = CacheLevelConfig {
        size_bytes: 64 * 64,
        line_bytes: 64,
        assoc: 8,
        shared: false,
    };
    c.bench_function("exact/jacobi1d_reuse_maps", |bench| {
        bench.iter(|| {
            analyze_exact(black_box(&program), &program.kernels[0], &level, 100_000).unwrap()
        })
    });
}

fn bench_dufs_governor(c: &mut Criterion) {
    use polyufc_machine::{measure_kernel, DufsGovernor, ExecutionEngine};
    let plat = Platform::broadwell();
    let program = polybench::mvt(512);
    let counters: Vec<_> = program
        .kernels
        .iter()
        .map(|k| measure_kernel(&plat, &program, k))
        .collect();
    let eng = ExecutionEngine::noiseless(plat);
    c.bench_function("machine/dufs_governor_mvt", |bench| {
        bench.iter(|| DufsGovernor::default().run(black_box(&eng), &counters, 1.2))
    });
}

criterion_group!(
    benches,
    bench_presburger_counting,
    bench_presburger_algebra,
    bench_cache_model,
    bench_exact_cache,
    bench_pluto,
    bench_search,
    bench_full_pipeline,
    bench_trace_sim,
    bench_dufs_governor,
    bench_calibration
);
criterion_main!(benches);
