//! Recursive-descent parser: C subset → [`AffineProgram`].

use std::collections::HashMap;
use std::fmt;

use polyufc_ir::affine::{Access, AffineKernel, AffineProgram, Bound, Loop, Statement};
use polyufc_ir::types::{ArrayId, ElemType};
use polyufc_presburger::LinExpr;

use crate::lexer::{tokenize, Token};

/// Parse failure with a human-readable message and the offending token
/// position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Token index (for tooling; the message usually suffices).
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a C-subset source into an affine program.
///
/// Everything before `#pragma scop` may declare arrays; the region between
/// the pragmas must consist of top-level perfectly nested loops.
///
/// # Errors
///
/// Returns [`ParseError`] for syntax errors, non-affine constructs,
/// imperfect nests, undeclared arrays, or wrong access arity.
pub fn parse_scop(src: &str, name: &str) -> Result<AffineProgram, ParseError> {
    let tokens = tokenize(src).map_err(|m| ParseError { message: m, at: 0 })?;
    let mut p = Parser {
        tokens,
        pos: 0,
        program: AffineProgram::new(name),
        arrays: HashMap::new(),
    };
    p.parse_program()?;
    p.program.validate().map_err(|m| ParseError {
        message: m,
        at: p.pos,
    })?;
    Ok(p.program)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    program: AffineProgram,
    arrays: HashMap<String, ArrayId>,
}

/// A parsed loop-tree node, flattened into kernels afterwards.
enum Node {
    For {
        iter: String,
        lb: Bound,
        ub: Bound,
        parallel: bool,
        body: Vec<Node>,
    },
    Stmt(Statement),
}

impl Parser {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            at: self.pos,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Punct(x)) if x == c => Ok(()),
            other => self.err(format!("expected `{c}`, found {other:?}")),
        }
    }

    fn expect_ident(&mut self, word: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(ref s)) if s == word => Ok(()),
            other => self.err(format!("expected `{word}`, found {other:?}")),
        }
    }

    fn parse_program(&mut self) -> Result<(), ParseError> {
        // Declarations until `#pragma scop`.
        loop {
            match self.peek() {
                Some(Token::PragmaScop) => {
                    self.pos += 1;
                    break;
                }
                Some(Token::Ident(s)) if s == "double" || s == "float" => {
                    self.parse_decl()?;
                }
                Some(_) => {
                    // Skip prologue tokens we don't model (types, scalars).
                    self.pos += 1;
                }
                None => return self.err("missing `#pragma scop`"),
            }
        }
        // Top-level loop nests.
        let mut stmt_counter = 0usize;
        loop {
            match self.peek() {
                Some(Token::PragmaEndScop) => {
                    self.pos += 1;
                    break;
                }
                Some(Token::Ident(s)) if s == "for" => {
                    let node = self.parse_for(&mut Vec::new(), &mut stmt_counter, false)?;
                    self.flatten(node, Vec::new())?;
                }
                Some(Token::PragmaOmpParallelFor) => {
                    self.pos += 1;
                    let node = self.parse_for(&mut Vec::new(), &mut stmt_counter, true)?;
                    self.flatten(node, Vec::new())?;
                }
                other => {
                    return self.err(format!(
                        "expected `for` or `#pragma endscop`, found {other:?}"
                    ))
                }
            }
        }
        Ok(())
    }

    fn parse_decl(&mut self) -> Result<(), ParseError> {
        let elem = match self.next() {
            Some(Token::Ident(s)) if s == "double" => ElemType::F64,
            Some(Token::Ident(s)) if s == "float" => ElemType::F32,
            other => return self.err(format!("expected element type, found {other:?}")),
        };
        let name = match self.next() {
            Some(Token::Ident(s)) => s,
            other => return self.err(format!("expected array name, found {other:?}")),
        };
        let mut dims = Vec::new();
        while self.peek() == Some(&Token::Punct('[')) {
            self.pos += 1;
            match self.next() {
                Some(Token::Int(v)) if v > 0 => dims.push(v as usize),
                other => return self.err(format!("expected dimension extent, found {other:?}")),
            }
            self.expect_punct(']')?;
        }
        self.expect_punct(';')?;
        if dims.is_empty() {
            // Scalar declaration: modeled as a name with no traffic.
            return Ok(());
        }
        let id = self.program.add_array(name.clone(), dims, elem);
        self.arrays.insert(name, id);
        Ok(())
    }

    /// Parses `for (int i = lb; i <|<= ub; i++) body`.
    fn parse_for(
        &mut self,
        scope: &mut Vec<String>,
        stmt_counter: &mut usize,
        parallel: bool,
    ) -> Result<Node, ParseError> {
        self.expect_ident("for")?;
        self.expect_punct('(')?;
        self.expect_ident("int")?;
        let iter = match self.next() {
            Some(Token::Ident(s)) => s,
            other => return self.err(format!("expected iterator name, found {other:?}")),
        };
        match self.next() {
            Some(Token::Punct('=')) => {}
            other => return self.err(format!("expected `=`, found {other:?}")),
        }
        let lb = self.parse_bound(scope, true)?;
        self.expect_punct(';')?;
        match self.next() {
            Some(Token::Ident(ref s)) if *s == iter => {}
            other => {
                return self.err(format!(
                    "loop condition must test `{iter}`, found {other:?}"
                ))
            }
        }
        let (strict, reversed) = match self.next() {
            Some(Token::Punct('<')) => (true, false),
            Some(Token::Op2("<=")) => (false, false),
            other => return self.err(format!("expected `<` or `<=`, found {other:?}")),
        };
        let _ = reversed;
        let mut ub = self.parse_bound(scope, false)?;
        if !strict {
            for e in &mut ub.exprs {
                *e = e.clone() + LinExpr::constant(1);
            }
        }
        self.expect_punct(';')?;
        match self.next() {
            Some(Token::Ident(ref s)) if *s == iter => {}
            other => return self.err(format!("expected `{iter}++`, found {other:?}")),
        }
        match self.next() {
            Some(Token::Op2("++")) => {}
            other => {
                return self.err(format!(
                    "only unit-stride `++` loops supported, found {other:?}"
                ))
            }
        }
        self.expect_punct(')')?;

        scope.push(iter.clone());
        let body = self.parse_body(scope, stmt_counter)?;
        scope.pop();
        Ok(Node::For {
            iter,
            lb,
            ub,
            parallel,
            body,
        })
    }

    fn parse_body(
        &mut self,
        scope: &mut Vec<String>,
        stmt_counter: &mut usize,
    ) -> Result<Vec<Node>, ParseError> {
        if self.peek() == Some(&Token::Punct('{')) {
            self.pos += 1;
            let mut items = Vec::new();
            while self.peek() != Some(&Token::Punct('}')) {
                items.push(self.parse_item(scope, stmt_counter)?);
            }
            self.pos += 1; // consume '}'
            Ok(items)
        } else {
            Ok(vec![self.parse_item(scope, stmt_counter)?])
        }
    }

    fn parse_item(
        &mut self,
        scope: &mut Vec<String>,
        stmt_counter: &mut usize,
    ) -> Result<Node, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s == "for" => self.parse_for(scope, stmt_counter, false),
            Some(Token::PragmaOmpParallelFor) => {
                self.pos += 1;
                match self.peek() {
                    Some(Token::Ident(s)) if s == "for" => {
                        self.parse_for(scope, stmt_counter, true)
                    }
                    other => self.err(format!(
                        "`#pragma omp parallel for` must precede a loop, found {other:?}"
                    )),
                }
            }
            Some(Token::Ident(_)) => {
                let s = self.parse_statement(scope, stmt_counter)?;
                Ok(Node::Stmt(s))
            }
            other => self.err(format!("expected statement or `for`, found {other:?}")),
        }
    }

    /// A bound: an affine expression, or `min(a, b)` / `max(a, b)`.
    fn parse_bound(&mut self, scope: &[String], is_lb: bool) -> Result<Bound, ParseError> {
        if let Some(Token::Ident(s)) = self.peek() {
            if s == "min" || s == "max" {
                let is_min = s == "min";
                if is_min == is_lb {
                    return self.err("`min` is only valid in upper bounds, `max` in lower bounds");
                }
                self.pos += 1;
                self.expect_punct('(')?;
                let a = self.parse_affine(scope)?;
                self.expect_punct(',')?;
                let b = self.parse_affine(scope)?;
                self.expect_punct(')')?;
                return Ok(Bound { exprs: vec![a, b] });
            }
        }
        Ok(Bound::expr(self.parse_affine(scope)?))
    }

    /// An affine expression over the in-scope iterators.
    fn parse_affine(&mut self, scope: &[String]) -> Result<LinExpr, ParseError> {
        let mut acc = self.parse_affine_term(scope)?;
        loop {
            match self.peek() {
                Some(Token::Punct('+')) => {
                    self.pos += 1;
                    acc = acc + self.parse_affine_term(scope)?;
                }
                Some(Token::Punct('-')) => {
                    self.pos += 1;
                    acc = acc - self.parse_affine_term(scope)?;
                }
                _ => return Ok(acc),
            }
        }
    }

    fn parse_affine_term(&mut self, scope: &[String]) -> Result<LinExpr, ParseError> {
        // [Int '*'] Ident | Ident ['*' Int] | Int | '(' affine ')' | '-' term
        match self.next() {
            Some(Token::Punct('-')) => Ok(self.parse_affine_term(scope)? * -1),
            Some(Token::Punct('(')) => {
                let e = self.parse_affine(scope)?;
                self.expect_punct(')')?;
                Ok(e)
            }
            Some(Token::Int(v)) => {
                if self.peek() == Some(&Token::Punct('*')) {
                    self.pos += 1;
                    let inner = self.parse_affine_term(scope)?;
                    Ok(inner * v)
                } else {
                    Ok(LinExpr::constant(v))
                }
            }
            Some(Token::Ident(name)) => {
                let Some(idx) = scope.iter().position(|s| *s == name) else {
                    return self.err(format!("`{name}` is not an enclosing iterator"));
                };
                let base = LinExpr::var(idx);
                if self.peek() == Some(&Token::Punct('*')) {
                    self.pos += 1;
                    match self.next() {
                        Some(Token::Int(v)) => Ok(base * v),
                        other => self.err(format!("expected constant multiplier, found {other:?}")),
                    }
                } else {
                    Ok(base)
                }
            }
            other => self.err(format!("expected affine term, found {other:?}")),
        }
    }

    /// A statement: `X[a]...[a] (=|+=|-=|*=) expr ;`.
    fn parse_statement(
        &mut self,
        scope: &[String],
        stmt_counter: &mut usize,
    ) -> Result<Statement, ParseError> {
        let (array, indices) = self.parse_array_ref(scope)?;
        let op = match self.next() {
            Some(Token::Punct('=')) => "=",
            Some(Token::Op2("+=")) => "+=",
            Some(Token::Op2("-=")) => "-=",
            Some(Token::Op2("*=")) => "*=",
            other => return self.err(format!("expected assignment, found {other:?}")),
        };
        let mut reads = Vec::new();
        let mut flops = 0u64;
        self.parse_rhs(scope, &mut reads, &mut flops, 0)?;
        self.expect_punct(';')?;
        if op != "=" {
            flops += 1;
            reads.insert(0, Access::read(array, indices.clone()));
        }
        let mut accesses = reads;
        accesses.push(Access::write(array, indices));
        let name = format!("S{}", *stmt_counter);
        *stmt_counter += 1;
        Ok(Statement {
            name,
            accesses,
            flops,
        })
    }

    fn parse_array_ref(&mut self, scope: &[String]) -> Result<(ArrayId, Vec<LinExpr>), ParseError> {
        let name = match self.next() {
            Some(Token::Ident(s)) => s,
            other => return self.err(format!("expected array name, found {other:?}")),
        };
        let Some(&id) = self.arrays.get(&name) else {
            return self.err(format!("undeclared array `{name}`"));
        };
        let mut indices = Vec::new();
        while self.peek() == Some(&Token::Punct('[')) {
            self.pos += 1;
            indices.push(self.parse_affine(scope)?);
            self.expect_punct(']')?;
        }
        if indices.len() != self.program.array(id).dims.len() {
            return self.err(format!(
                "array `{name}` has {} dims, indexed with {}",
                self.program.array(id).dims.len(),
                indices.len()
            ));
        }
        Ok((id, indices))
    }

    /// Parses the RHS expression: collects array reads (left to right) and
    /// counts arithmetic operators as flops. Precedence is irrelevant for
    /// trace purposes, but parentheses must balance.
    fn parse_rhs(
        &mut self,
        scope: &[String],
        reads: &mut Vec<Access>,
        flops: &mut u64,
        depth: usize,
    ) -> Result<(), ParseError> {
        if depth > 64 {
            return self.err("expression too deeply nested");
        }
        self.parse_rhs_atom(scope, reads, flops, depth)?;
        loop {
            match self.peek() {
                Some(Token::Punct(c)) if "+-*/".contains(*c) => {
                    self.pos += 1;
                    *flops += 1;
                    self.parse_rhs_atom(scope, reads, flops, depth)?;
                }
                _ => return Ok(()),
            }
        }
    }

    fn parse_rhs_atom(
        &mut self,
        scope: &[String],
        reads: &mut Vec<Access>,
        flops: &mut u64,
        depth: usize,
    ) -> Result<(), ParseError> {
        match self.peek().cloned() {
            Some(Token::Punct('(')) => {
                self.pos += 1;
                self.parse_rhs(scope, reads, flops, depth + 1)?;
                self.expect_punct(')')
            }
            Some(Token::Punct('-')) => {
                self.pos += 1;
                self.parse_rhs_atom(scope, reads, flops, depth)
            }
            Some(Token::Int(_)) | Some(Token::Float(_)) => {
                self.pos += 1;
                Ok(())
            }
            Some(Token::Ident(name)) => {
                if self.arrays.contains_key(&name) {
                    let (id, idx) = self.parse_array_ref(scope)?;
                    reads.push(Access::read(id, idx));
                    Ok(())
                } else if self.tokens.get(self.pos + 1) == Some(&Token::Punct('[')) {
                    self.err(format!("undeclared array `{name}`"))
                } else {
                    // Scalar parameter (alpha, beta, ...): no traffic.
                    self.pos += 1;
                    Ok(())
                }
            }
            other => self.err(format!("expected expression atom, found {other:?}")),
        }
    }

    /// Flattens a loop tree into perfect-nest kernels.
    fn flatten(
        &mut self,
        node: Node,
        mut outer: Vec<(String, Bound, Bound, bool)>,
    ) -> Result<(), ParseError> {
        match node {
            Node::For {
                iter,
                lb,
                ub,
                parallel,
                body,
            } => {
                outer.push((iter, lb, ub, parallel));
                let has_stmt = body.iter().any(|n| matches!(n, Node::Stmt(_)));
                let has_for = body.iter().any(|n| matches!(n, Node::For { .. }));
                if has_stmt && has_for {
                    return self.err(
                        "imperfect nest: a loop body mixes statements and inner loops \
                         (split it into separate top-level nests)",
                    );
                }
                if has_for {
                    for n in body {
                        self.flatten(n, outer.clone())?;
                    }
                } else {
                    // Innermost: emit one kernel with all statements.
                    let loops: Vec<Loop> = outer
                        .iter()
                        .map(|(_, lb, ub, parallel)| Loop {
                            lb: lb.clone(),
                            ub: ub.clone(),
                            // The pragma's claim is recorded as-is; the
                            // analysis crate proves or downgrades it.
                            parallel: *parallel,
                        })
                        .collect();
                    let statements: Vec<Statement> = body
                        .into_iter()
                        .map(|n| match n {
                            Node::Stmt(s) => s,
                            Node::For { .. } => unreachable!("checked above"),
                        })
                        .collect();
                    let kname = format!("{}_k{}", self.program.name, self.program.kernels.len());
                    self.program.kernels.push(AffineKernel {
                        name: kname,
                        loops,
                        statements,
                    });
                }
                Ok(())
            }
            Node::Stmt(_) => self.err("statements must be inside a loop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangular_and_min_bounds() {
        let src = r#"
            double L[32][32]; double x[32];
            #pragma scop
            for (int i = 0; i < 32; i++)
              for (int j = 0; j <= i - 1; j++)
                x[i] = x[i] - L[i][j] * x[j];
            for (int t = 0; t < 4; t++)
              for (int i = 2 * t; i < min(2 * t + 8, 32); i++)
                x[i] = x[i] + 1.0;
            #pragma endscop
        "#;
        let p = parse_scop(src, "tri").unwrap();
        assert_eq!(p.kernels.len(), 2);
        // Triangular: sum_{i} i = 496 points.
        assert_eq!(p.kernels[0].domain_size().unwrap(), 496);
        // min-bounded: 4 tiles of 8 = 32 points.
        assert_eq!(p.kernels[1].domain_size().unwrap(), 32);
        // Statement flops: sub+mul = 2.
        assert_eq!(p.kernels[0].statements[0].flops, 2);
    }

    #[test]
    fn omp_pragma_marks_claimed_loops_only() {
        let src = r#"
            double A[16][16]; double B[16][16];
            #pragma scop
            #pragma omp parallel for
            for (int i = 0; i < 16; i++)
              for (int j = 0; j < 16; j++)
                B[i][j] = A[i][j];
            for (int i = 0; i < 16; i++)
              #pragma omp parallel for private(i)
              for (int j = 0; j < 16; j++)
                A[i][j] = A[i][j] + 1.0;
            #pragma endscop
        "#;
        let p = parse_scop(src, "omp").unwrap();
        assert_eq!(p.kernels.len(), 2);
        assert!(p.kernels[0].loops[0].parallel, "pragma'd outer loop");
        assert!(!p.kernels[0].loops[1].parallel, "unmarked inner loop");
        assert!(!p.kernels[1].loops[0].parallel);
        assert!(p.kernels[1].loops[1].parallel, "pragma'd inner loop");
    }

    #[test]
    fn omp_pragma_must_precede_a_loop() {
        let src = r#"
            double A[8];
            #pragma scop
            for (int i = 0; i < 8; i++) {
              #pragma omp parallel for
              A[i] = 1.0;
            }
            #pragma endscop
        "#;
        assert!(parse_scop(src, "bad").is_err());
    }

    #[test]
    fn compound_assignment_reads_lhs() {
        let src = r#"
            double A[8]; double B[8];
            #pragma scop
            for (int i = 0; i < 8; i++)
              A[i] += B[i];
            #pragma endscop
        "#;
        let p = parse_scop(src, "acc").unwrap();
        let s = &p.kernels[0].statements[0];
        // read A, read B, write A.
        assert_eq!(s.accesses.len(), 3);
        assert!(!s.accesses[0].is_write);
        assert!(s.accesses[2].is_write);
        assert_eq!(s.flops, 1);
    }

    #[test]
    fn scalars_cost_nothing() {
        let src = r#"
            double A[8];
            #pragma scop
            for (int i = 0; i < 8; i++)
              A[i] = alpha * A[i] + beta;
            #pragma endscop
        "#;
        let p = parse_scop(src, "sc").unwrap();
        let s = &p.kernels[0].statements[0];
        assert_eq!(s.accesses.len(), 2); // read A, write A
        assert_eq!(s.flops, 2); // mul + add
    }

    #[test]
    fn rejects_imperfect_nests() {
        let src = r#"
            double A[8];
            #pragma scop
            for (int i = 0; i < 8; i++) {
              A[i] = 0.0;
              for (int j = 0; j < 8; j++)
                A[i] = A[i] + 1.0;
            }
            #pragma endscop
        "#;
        let e = parse_scop(src, "bad").unwrap_err();
        assert!(e.message.contains("imperfect"));
    }

    #[test]
    fn rejects_non_affine_and_unknown_names() {
        let bad_idx = r#"
            double A[8][8];
            #pragma scop
            for (int i = 0; i < 8; i++)
              A[i][i * i] = 1.0;
            #pragma endscop
        "#;
        assert!(parse_scop(bad_idx, "x").is_err());
        let undeclared = r#"
            double A[8];
            #pragma scop
            for (int i = 0; i < 8; i++)
              A[i] = Z[i];
            #pragma endscop
        "#;
        // `Z[i]` without a declaration is an error (unknown array).
        let e = parse_scop(undeclared, "x").unwrap_err();
        assert!(e.message.contains("undeclared array"), "{}", e.message);
    }

    #[test]
    fn multiple_statements_one_nest() {
        let src = r#"
            double A[16]; double B[16];
            #pragma scop
            for (int t = 0; t < 2; t++)
              for (int i = 1; i < 15; i++) {
                B[i] = A[i - 1] + A[i] + A[i + 1];
                A[i] = B[i - 1] + B[i] + B[i + 1];
              }
            #pragma endscop
        "#;
        let p = parse_scop(src, "stencil").unwrap();
        assert_eq!(p.kernels.len(), 1);
        assert_eq!(p.kernels[0].statements.len(), 2);
        assert_eq!(p.kernels[0].statements[0].flops, 2);
    }
}
