//! Tokenizer for the C subset.

use std::fmt;

/// A token of the C subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (`for`, `int`, `double`, array/scalar names).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal (only legal inside statement expressions).
    Float(f64),
    /// `#pragma scop` / `#pragma endscop` markers.
    PragmaScop,
    /// End of the SCoP region.
    PragmaEndScop,
    /// `#pragma omp parallel for` (optionally with clauses): marks the
    /// next loop as claimed-parallel. The claim is *not* trusted — the
    /// static verifier must prove it or downgrade it.
    PragmaOmpParallelFor,
    /// Single-character punctuation / operators.
    Punct(char),
    /// Two-character operators: `<=`, `>=`, `==`, `+=`, `-=`, `*=`, `++`, `--`.
    Op2(&'static str),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::PragmaScop => write!(f, "#pragma scop"),
            Token::PragmaEndScop => write!(f, "#pragma endscop"),
            Token::PragmaOmpParallelFor => write!(f, "#pragma omp parallel for"),
            Token::Punct(c) => write!(f, "{c}"),
            Token::Op2(s) => write!(f, "{s}"),
        }
    }
}

/// Tokenizes source text. Line (`//`) and block (`/* */`) comments are
/// skipped; `#pragma scop` / `#pragma endscop` become dedicated tokens and
/// any other pragma line is ignored.
///
/// # Errors
///
/// Returns a message for unexpected characters or malformed numbers.
pub fn tokenize(src: &str) -> Result<Vec<Token>, String> {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && bytes.get(i + 1) == Some(&'/') {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && bytes.get(i + 1) == Some(&'*') {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                i += 1;
            }
            i = (i + 2).min(bytes.len());
            continue;
        }
        // Pragmas.
        if c == '#' {
            let mut j = i;
            while j < bytes.len() && bytes[j] != '\n' {
                j += 1;
            }
            let line: String = bytes[i..j].iter().collect();
            let squished: String = line.split_whitespace().collect::<Vec<_>>().join(" ");
            if squished == "#pragma scop" {
                out.push(Token::PragmaScop);
            } else if squished == "#pragma endscop" {
                out.push(Token::PragmaEndScop);
            } else if squished == "#pragma omp parallel for"
                || squished.starts_with("#pragma omp parallel for ")
            {
                // Clauses (`private(...)`, `schedule(...)`) are irrelevant
                // to the dependence question and dropped.
                out.push(Token::PragmaOmpParallelFor);
            }
            i = j;
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '_') {
                j += 1;
            }
            out.push(Token::Ident(bytes[i..j].iter().collect()));
            i = j;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut j = i;
            let mut is_float = false;
            while j < bytes.len()
                && (bytes[j].is_ascii_digit()
                    || bytes[j] == '.'
                    || bytes[j] == 'e'
                    || bytes[j] == 'E'
                    || ((bytes[j] == '+' || bytes[j] == '-')
                        && j > i
                        && (bytes[j - 1] == 'e' || bytes[j - 1] == 'E')))
            {
                if bytes[j] == '.' || bytes[j] == 'e' || bytes[j] == 'E' {
                    is_float = true;
                }
                j += 1;
            }
            let text: String = bytes[i..j].iter().collect();
            if is_float {
                let v: f64 = text.parse().map_err(|_| format!("bad float `{text}`"))?;
                out.push(Token::Float(v));
            } else {
                let v: i64 = text.parse().map_err(|_| format!("bad integer `{text}`"))?;
                out.push(Token::Int(v));
            }
            i = j;
            continue;
        }
        // Two-char operators.
        let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
        let op2 = match two.as_str() {
            "<=" => Some("<="),
            ">=" => Some(">="),
            "==" => Some("=="),
            "+=" => Some("+="),
            "-=" => Some("-="),
            "*=" => Some("*="),
            "++" => Some("++"),
            "--" => Some("--"),
            _ => None,
        };
        if let Some(op) = op2 {
            out.push(Token::Op2(op));
            i += 2;
            continue;
        }
        // Single punctuation.
        if "()[]{};,=<>+-*/".contains(c) {
            out.push(Token::Punct(c));
            i += 1;
            continue;
        }
        return Err(format!("unexpected character `{c}`"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_loop_header() {
        let t = tokenize("for (int i = 0; i < 64; i++)").unwrap();
        assert_eq!(t[0], Token::Ident("for".into()));
        assert!(t.contains(&Token::Op2("++")));
        assert!(t.contains(&Token::Int(64)));
    }

    #[test]
    fn pragmas_and_comments() {
        let t = tokenize("// intro\n#pragma scop\n/* body */ x = 1; #pragma endscop").unwrap();
        assert_eq!(t[0], Token::PragmaScop);
        assert_eq!(*t.last().unwrap(), Token::PragmaEndScop);
    }

    #[test]
    fn omp_parallel_for_pragma_with_and_without_clauses() {
        let t = tokenize("#pragma omp parallel for\nfor").unwrap();
        assert_eq!(t[0], Token::PragmaOmpParallelFor);
        let t = tokenize("#pragma omp  parallel for private(j) schedule(static)\nfor").unwrap();
        assert_eq!(t[0], Token::PragmaOmpParallelFor);
        // Other omp pragmas stay ignored.
        let t = tokenize("#pragma omp barrier\nfor").unwrap();
        assert_eq!(t[0], Token::Ident("for".into()));
    }

    #[test]
    fn floats_and_compound_ops() {
        let t = tokenize("C[i][j] += 0.5e-2 * A[i][k];").unwrap();
        assert!(t.contains(&Token::Op2("+=")));
        assert!(t
            .iter()
            .any(|x| matches!(x, Token::Float(v) if (*v - 0.005).abs() < 1e-12)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("a @ b").is_err());
    }
}
