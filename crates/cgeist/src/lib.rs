//! A C-subset frontend for affine kernels — the stand-in for Polygeist's
//! `cgeist` (paper Fig. 2: "Input programs in C/C++ are compiled to MLIR
//! modules using cgeist").
//!
//! The accepted subset is the static-control-part (SCoP) language of
//! polyhedral compilation:
//!
//! ```c
//! double A[512][512]; double B[512][512]; double C[512][512];
//!
//! #pragma scop
//! for (int i = 0; i < 512; i++)
//!   for (int j = 0; j < 512; j++)
//!     for (int k = 0; k < 512; k++)
//!       C[i][j] = C[i][j] + A[i][k] * B[k][j];
//! #pragma endscop
//! ```
//!
//! * array declarations: `double|float NAME[d0][d1]...;`
//! * `for (int i = <affine>; i < <affine>; i++)` — bounds affine in the
//!   enclosing iterators (also `<=`, and `min(a, b)` / `max(a, b)`)
//! * innermost statements: `X[aff]...[aff] = <expr>;` (also `+=`, `-=`,
//!   `*=`) where `<expr>` is built from array references, numeric
//!   literals, scalar names, `+ - * /`, and parentheses
//! * flops are counted per arithmetic operator (the paper's unitary flop
//!   model, footnote 13); scalar names contribute no memory traffic
//!
//! The result is a [`polyufc_ir::AffineProgram`] ready for the PolyUFC
//! pipeline. See [`parse_scop`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod lexer;
mod parser;

pub use lexer::{tokenize, Token};
pub use parser::{parse_scop, ParseError};

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_ir::interp::{interpret_program, TraceStats};

    const GEMM: &str = r#"
        double A[64][64]; double B[64][64]; double C[64][64];
        #pragma scop
        for (int i = 0; i < 64; i++)
          for (int j = 0; j < 64; j++)
            C[i][j] = C[i][j] * 0.5;
        for (int i = 0; i < 64; i++)
          for (int j = 0; j < 64; j++)
            for (int k = 0; k < 64; k++)
              C[i][j] = C[i][j] + A[i][k] * B[k][j];
        #pragma endscop
    "#;

    #[test]
    fn gemm_parses_and_traces() {
        let p = parse_scop(GEMM, "gemm").unwrap();
        assert_eq!(p.arrays.len(), 3);
        assert_eq!(p.kernels.len(), 2);
        assert!(p.validate().is_ok());
        let mut st = TraceStats::default();
        interpret_program(&p, &mut st);
        // scale: 64²·(1 read + 1 write); main: 64³·(3 reads + 1 write).
        assert_eq!(st.accesses, 64 * 64 * 2 + 64 * 64 * 64 * 4);
        // flops: 64²·1 + 64³·2.
        assert_eq!(st.flops, 64 * 64 + 2 * 64 * 64 * 64);
    }

    #[test]
    fn matches_handwritten_builder() {
        use polyufc_workloads_free::gemm_like;
        let parsed = parse_scop(GEMM, "gemm").unwrap();
        let built = gemm_like(64);
        let mut a = TraceStats::default();
        interpret_program(&parsed, &mut a);
        let mut b = TraceStats::default();
        interpret_program(&built, &mut b);
        assert_eq!(a.accesses, b.accesses);
        assert_eq!(a.flops, b.flops);
    }

    /// Local stand-in to avoid a circular dev-dependency on workloads.
    mod polyufc_workloads_free {
        use polyufc_ir::affine::{Access, AffineKernel, AffineProgram, Loop, Statement};
        use polyufc_ir::types::ElemType;
        use polyufc_presburger::LinExpr;

        pub fn gemm_like(n: usize) -> AffineProgram {
            let mut p = AffineProgram::new("gemm");
            let a = p.add_array("A", vec![n, n], ElemType::F64);
            let b = p.add_array("B", vec![n, n], ElemType::F64);
            let c = p.add_array("C", vec![n, n], ElemType::F64);
            let (vi, vj, vk) = (LinExpr::var(0), LinExpr::var(1), LinExpr::var(2));
            p.kernels.push(AffineKernel {
                name: "s".into(),
                loops: vec![Loop::range(n as i64), Loop::range(n as i64)],
                statements: vec![Statement {
                    name: "s".into(),
                    accesses: vec![
                        Access::read(c, vec![vi.clone(), vj.clone()]),
                        Access::write(c, vec![vi.clone(), vj.clone()]),
                    ],
                    flops: 1,
                }],
            });
            p.kernels.push(AffineKernel {
                name: "m".into(),
                loops: vec![Loop::range(n as i64); 3],
                statements: vec![Statement {
                    name: "m".into(),
                    accesses: vec![
                        Access::read(c, vec![vi.clone(), vj.clone()]),
                        Access::read(a, vec![vi.clone(), vk.clone()]),
                        Access::read(b, vec![vk, vj.clone()]),
                        Access::write(c, vec![vi, vj]),
                    ],
                    flops: 2,
                }],
            });
            p
        }
    }
}
