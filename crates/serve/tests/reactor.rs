//! Event-loop edge cases: pipelining order, partial reads and writes,
//! mid-request disconnects, oversized-line resync, and bounded
//! connection admission — everything the reactor's state machines must
//! get right that a one-request-at-a-time client never exercises.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use proptest::prelude::*;

use polyufc_serve::{
    json, oneshot_response, CompileOptions, CompileRequest, EngineConfig, Listen, Server,
    ServerConfig, ShutdownHandle, SourceFormat,
};
use polyufc_workloads::{polybench_suite, PolybenchSize};

/// A daemon started for one test, stopped on drop.
struct Daemon {
    addr: String,
    stop: ShutdownHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    fn start(configure: impl FnOnce(&mut Server)) -> Daemon {
        // A queue deep enough that pipelined batches of *distinct*
        // compiles measure ordering, not backpressure shed (wire tests
        // cover shed).
        let mut engine = EngineConfig::default();
        engine.queue_cap = engine.queue_cap.max(64);
        let mut server = Server::bind(&ServerConfig {
            listen: Listen::Tcp("127.0.0.1:0".to_string()),
            engine,
        })
        .expect("bind");
        configure(&mut server);
        let addr = server.local_addr().expect("addr").to_string();
        let stop = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run().expect("run"));
        Daemon {
            addr,
            stop,
            thread: Some(thread),
        }
    }

    fn connect(&self) -> TcpStream {
        let s = TcpStream::connect(&self.addr).expect("connect");
        s.set_nodelay(true).ok();
        s
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn mini_source(name: &str) -> String {
    let suite = polybench_suite(PolybenchSize::Mini);
    let w = suite
        .iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("workload {name}"));
    format!("{}", w.program)
}

fn compile_line(source: &str, epsilon: f64) -> String {
    let mut line = format!("{{\"op\":\"compile\",\"epsilon\":{epsilon},\"source\":");
    json::push_escaped(&mut line, source);
    line.push('}');
    line
}

fn expected_compile(source: &str, epsilon: f64) -> String {
    let opts = CompileOptions {
        epsilon,
        ..CompileOptions::default()
    };
    oneshot_response(&CompileRequest {
        format: SourceFormat::TextualIr,
        source: source.to_string(),
        name: "request".to_string(),
        opts,
    })
}

const PONG: &str = "{\"ok\":true,\"pong\":true}";

#[test]
fn request_bytes_dribbled_one_at_a_time_still_parse() {
    let d = Daemon::start(|_| {});
    let mut s = d.connect();
    let src = mini_source("gemm");
    let batch = format!(
        "{{\"op\":\"ping\"}}\n{}\n{{\"op\":\"ping\"}}\n",
        compile_line(&src, 1e-3)
    );
    // One byte per segment: the reactor must accumulate partial lines
    // across an arbitrary number of reads.
    for chunk in batch.as_bytes().chunks(1) {
        s.write_all(chunk).expect("dribble");
    }
    let mut reader = BufReader::new(s);
    let mut reply = String::new();
    for expected in [
        PONG.to_string(),
        expected_compile(&src, 1e-3),
        PONG.to_string(),
    ] {
        reply.clear();
        reader.read_line(&mut reply).expect("reply");
        assert_eq!(reply.trim_end(), expected);
    }
}

#[test]
fn slow_reader_forces_partial_writes_without_reordering() {
    let d = Daemon::start(|_| {});
    let s = d.connect();
    let src = mini_source("gemm");
    // Megabytes of identical responses pipelined at a dawdling reader:
    // the daemon's socket buffer must fill, forcing the
    // partial-write/EPOLLOUT state machine through many cycles, and the
    // pipeline-depth cap must pause reading without deadlocking (the
    // writer thread below keeps streaming while replies drain).
    let mut line = format!(
        "{{\"op\":\"compile\",\"emit\":\"scf\",\"epsilon\":{},\"source\":",
        1e-3
    );
    json::push_escaped(&mut line, &src);
    line.push('}');
    let reps = 2048;

    let opts = CompileOptions {
        epsilon: 1e-3,
        emit_scf: true,
        ..CompileOptions::default()
    };
    let expected = oneshot_response(&CompileRequest {
        format: SourceFormat::TextualIr,
        source: src.clone(),
        name: "request".to_string(),
        opts,
    });
    assert!(
        reps * (expected.len() + 1) > 1 << 20,
        "response volume too small to overflow socket buffers"
    );

    let writer = {
        let mut s = s.try_clone().expect("clone");
        let line = line.clone();
        std::thread::spawn(move || {
            for _ in 0..reps {
                s.write_all(line.as_bytes()).expect("send");
                s.write_all(b"\n").expect("send");
            }
        })
    };

    let mut reader = BufReader::new(s);
    let mut reply = String::new();
    for i in 0..reps {
        if i % 64 == 0 {
            // Dawdle: keep the kernel buffers full a while longer.
            std::thread::sleep(Duration::from_millis(1));
        }
        reply.clear();
        reader.read_line(&mut reply).expect("reply");
        assert_eq!(reply.trim_end(), expected, "reply {i} diverged");
    }
    writer.join().expect("writer");
}

#[test]
fn mid_request_disconnect_leaves_the_daemon_serving() {
    let d = Daemon::start(|_| {});
    {
        let mut s = d.connect();
        // Half a request, no newline — then vanish.
        s.write_all(b"{\"op\":\"comp").expect("partial");
        s.flush().ok();
    } // dropped: RST/FIN mid-line
    {
        let mut s = d.connect();
        // A full request followed by a disconnect before reading the
        // reply: the daemon must tolerate writing into a closed socket.
        s.write_all(format!("{}\n", compile_line(&mini_source("mvt"), 1e-3)).as_bytes())
            .expect("send");
    }
    let mut s = d.connect();
    s.write_all(b"{\"op\":\"ping\"}\n").expect("ping");
    let mut reader = BufReader::new(s);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply");
    assert_eq!(reply.trim_end(), PONG);
}

#[test]
fn oversized_line_resyncs_inside_a_pipelined_batch() {
    let d = Daemon::start(|_| {});
    let mut s = d.connect();
    let mut batch = Vec::new();
    batch.extend_from_slice(b"{\"op\":\"ping\"}\n");
    batch.extend_from_slice(&vec![b'x'; polyufc_serve::MAX_REQUEST_BYTES + 4096]);
    batch.push(b'\n');
    batch.extend_from_slice(b"{\"op\":\"ping\"}\n");
    s.write_all(&batch).expect("send");
    let mut reader = BufReader::new(s);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply 0");
    assert_eq!(reply.trim_end(), PONG);
    reply.clear();
    reader.read_line(&mut reply).expect("reply 1");
    assert!(
        reply.contains("\"code\":\"oversized\""),
        "expected oversized error, got {reply:?}"
    );
    reply.clear();
    reader.read_line(&mut reply).expect("reply 2");
    assert_eq!(
        reply.trim_end(),
        PONG,
        "stream must be line-synchronized after the oversized discard"
    );
}

#[test]
fn connections_past_the_cap_shed_with_a_typed_error() {
    let d = Daemon::start(|s| s.set_max_conns(2));
    // Two admitted connections, proven live with a round trip each.
    let mut held = Vec::new();
    for _ in 0..2 {
        let mut s = d.connect();
        s.write_all(b"{\"op\":\"ping\"}\n").expect("ping");
        let mut reader = BufReader::new(s.try_clone().expect("clone"));
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        assert_eq!(reply.trim_end(), PONG);
        held.push(s);
    }
    // The N+1th is rejected at accept: one typed line, then EOF.
    let s = d.connect();
    let mut reader = BufReader::new(s);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("shed line");
    assert!(
        reply.contains("\"code\":\"overloaded\""),
        "expected overloaded shed, got {reply:?}"
    );
    reply.clear();
    assert_eq!(
        reader.read_line(&mut reply).expect("eof"),
        0,
        "shed connection must close"
    );

    // Freeing a slot readmits: drop one held connection and retry until
    // the daemon notices the close.
    drop(held.pop());
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut s = d.connect();
        s.write_all(b"{\"op\":\"ping\"}\n").expect("ping");
        let mut reader = BufReader::new(s);
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        if reply.trim_end() == PONG {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slot never freed after disconnect; last reply {reply:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any pipelined batch comes back in request order with every reply
    /// byte-identical to the one-shot CLI path for that request.
    #[test]
    fn pipelined_replies_in_request_order_match_oneshot(
        picks in proptest::collection::vec((0usize..3, 0usize..3), 2..12),
    ) {
        static WORKLOADS: &[&str] = &["gemm", "mvt", "atax"];
        let d = Daemon::start(|_| {});
        let sources: Vec<String> = WORKLOADS.iter().map(|w| mini_source(w)).collect();
        let epsilons = [1e-3, 2e-3, 5e-3];

        let mut batch = String::new();
        let mut expected = Vec::new();
        for &(w, e) in &picks {
            batch.push_str(&compile_line(&sources[w], epsilons[e]));
            batch.push('\n');
            expected.push(expected_compile(&sources[w], epsilons[e]));
        }
        let mut s = d.connect();
        s.write_all(batch.as_bytes()).expect("send batch");
        let mut reader = BufReader::new(s);
        let mut reply = String::new();
        for (i, want) in expected.iter().enumerate() {
            reply.clear();
            reader.read_line(&mut reply).expect("reply");
            prop_assert_eq!(reply.trim_end(), want.as_str(), "reply {} out of order or diverged", i);
        }
    }
}
