//! SIGTERM-to-drain latency: a delivered signal must wake the reactor
//! through the eventfd doorbell immediately, not at the next timeout
//! tick. Lives in its own test binary because the signal flag is
//! process-global and sticky — any other test in the same process
//! would see a permanently-stopping server.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use polyufc_serve::{install_signal_handlers, EngineConfig, Listen, Server, ServerConfig};

extern "C" {
    fn raise(sig: i32) -> i32;
}

const SIGTERM: i32 = 15;

#[test]
fn sigterm_drains_and_stops_promptly() {
    install_signal_handlers();
    let server = Server::bind(&ServerConfig {
        listen: Listen::Tcp("127.0.0.1:0".to_string()),
        engine: EngineConfig::default(),
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let thread = std::thread::spawn(move || server.run().expect("run"));

    // A live connection with a completed round trip, so the drain path
    // has real connection state to tear down.
    let mut s = TcpStream::connect(&addr).expect("connect");
    s.set_nodelay(true).ok();
    s.write_all(b"{\"op\":\"ping\"}\n").expect("ping");
    let mut reader = BufReader::new(s.try_clone().expect("clone"));
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply");
    assert_eq!(reply.trim_end(), "{\"ok\":true,\"pong\":true}");

    let start = Instant::now();
    unsafe {
        raise(SIGTERM);
    }
    // The handler rings the reactor's wakeup fd, so run() must return
    // well inside the old 10ms-poll-loop latency floor — the bound here
    // is generous to absorb a loaded CI box, not a sleep interval.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = thread.join();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(2))
        .expect("server did not drain within 2s of SIGTERM");
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "drain took {elapsed:?}; the signal doorbell is not waking the reactor"
    );
}
