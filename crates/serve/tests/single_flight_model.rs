//! Property test: the real sharded cache's single-flight protocol
//! (`shard.rs` lookup/fulfill/abort + `artifact.rs` subscribe/complete)
//! agrees with the `chk` protocol model's slot semantics
//! (`polyufc_chk::models::single_flight`: a key is Empty, Pending with
//! attached waiters, or Ready) on randomized operation sequences.
//!
//! The schedule explorer checks the model against *interleavings*; this
//! test checks the model against the *implementation*: for every random
//! op sequence, the cache must classify lookups exactly as the reference
//! slot machine does, deliver every subscriber exactly one result, and
//! deliver the result the reference predicts. A double completion, lost
//! waiter, or slot misclassification fails the property.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use polyufc_serve::{Abort, ArtifactCache, Body, Flight, Lookup};

/// Reference slot state, mirroring `chk::models::single_flight::Slot`.
enum RefSlot {
    Pending { subscribers: Vec<usize> },
    Ready(Vec<u8>),
}

/// One randomized operation over a small key space.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Probe a key; leads when empty, waits when pending, hits when
    /// ready.
    Lookup(u8),
    /// Complete the key's pending flight with a body derived from the
    /// step index (no-op when not pending).
    Fulfill(u8),
    /// Abort the key's pending flight (no-op when not pending).
    AbortKey(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..3, 0u8..4).prop_map(|(kind, key)| match kind {
        0 => Op::Lookup(key),
        1 => Op::Fulfill(key),
        _ => Op::AbortKey(key),
    })
}

/// What one subscriber observed: completion count and the result.
#[derive(Default)]
struct Observed {
    completions: AtomicUsize,
    result: Mutex<Option<Result<Vec<u8>, Abort>>>,
}

fn run_sequence(ops: &[Op]) -> Result<(), String> {
    // One shard forces every key through the same lock, the worst case
    // for slot-state confusion; capacity high enough that eviction never
    // interferes with the reference (eviction is a separate concern).
    let cache = ArtifactCache::new(1024, 1);
    let mut reference: HashMap<u8, RefSlot> = HashMap::new();
    let mut flights: HashMap<u8, Arc<Flight>> = HashMap::new();
    let mut observers: Vec<Arc<Observed>> = Vec::new();
    // What the reference expects each subscriber to eventually receive.
    let mut expected: Vec<Result<Vec<u8>, Abort>> = Vec::new();

    let subscribe = |flight: &Arc<Flight>, observers: &mut Vec<Arc<Observed>>| {
        let obs = Arc::new(Observed::default());
        let o = Arc::clone(&obs);
        flight.subscribe(move |r| {
            o.completions.fetch_add(1, Ordering::SeqCst);
            *o.result.lock().unwrap() = Some(r.map(|b| b.to_vec()));
        });
        observers.push(obs);
        observers.len() - 1
    };

    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Lookup(k) => match (cache.lookup(&[k]), reference.get_mut(&k)) {
                (Lookup::Lead(flight), None) => {
                    let id = subscribe(&flight, &mut observers);
                    expected.push(Err(Abort::ShuttingDown)); // placeholder
                    reference.insert(
                        k,
                        RefSlot::Pending {
                            subscribers: vec![id],
                        },
                    );
                    flights.insert(k, flight);
                }
                (Lookup::Wait(flight), Some(RefSlot::Pending { subscribers })) => {
                    if !Arc::ptr_eq(&flight, &flights[&k]) {
                        return Err(format!(
                            "step {step}: waiter joined a different flight than the leader's"
                        ));
                    }
                    let id = subscribe(&flight, &mut observers);
                    expected.push(Err(Abort::ShuttingDown)); // placeholder
                    subscribers.push(id);
                }
                (Lookup::Hit(body), Some(RefSlot::Ready(want))) => {
                    if *body != want[..] {
                        return Err(format!("step {step}: hit served stale bytes"));
                    }
                }
                (got, r) => {
                    let model = match r {
                        None => "Empty",
                        Some(RefSlot::Pending { .. }) => "Pending",
                        Some(RefSlot::Ready(_)) => "Ready",
                    };
                    return Err(format!(
                        "step {step}: cache said {got:?} but the model slot is {model}"
                    ));
                }
            },
            // Fulfill and abort only act on pending slots (the real
            // engine only ever completes flights it leads); anything
            // else is a no-op in both the cache and the reference.
            Op::Fulfill(k) => {
                if matches!(reference.get(&k), Some(RefSlot::Pending { .. })) {
                    let Some(RefSlot::Pending { subscribers }) = reference.remove(&k) else {
                        unreachable!()
                    };
                    let body: Body = Arc::from(vec![k, step as u8].into_boxed_slice());
                    let flight = flights.remove(&k).expect("leader recorded a flight");
                    cache.fulfill(&[k], &flight, Arc::clone(&body));
                    for id in subscribers {
                        expected[id] = Ok(body.to_vec());
                    }
                    reference.insert(k, RefSlot::Ready(body.to_vec()));
                }
            }
            Op::AbortKey(k) => {
                if matches!(reference.get(&k), Some(RefSlot::Pending { .. })) {
                    let Some(RefSlot::Pending { subscribers }) = reference.remove(&k) else {
                        unreachable!()
                    };
                    let flight = flights.remove(&k).expect("leader recorded a flight");
                    cache.abort(&[k], &flight, Abort::Internal);
                    for id in subscribers {
                        expected[id] = Err(Abort::Internal);
                    }
                    // Aborted key is free again: reference slot Empty.
                }
            }
        }
    }

    // Drain: abort every still-pending flight so all subscribers settle.
    for (k, slot) in reference.iter() {
        if let RefSlot::Pending { subscribers } = slot {
            let flight = &flights[k];
            cache.abort(&[*k], flight, Abort::ShuttingDown);
            for &id in subscribers {
                expected[id] = Err(Abort::ShuttingDown);
            }
        }
    }

    // Every subscriber completed exactly once with the predicted result.
    for (id, obs) in observers.iter().enumerate() {
        let n = obs.completions.load(Ordering::SeqCst);
        if n != 1 {
            return Err(format!(
                "subscriber {id} completed {n} times (want exactly 1)"
            ));
        }
        let got = obs.result.lock().unwrap().clone().expect("completed");
        if got != expected[id] {
            return Err(format!(
                "subscriber {id} got {got:?}, but the model predicted {:?}",
                expected[id]
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn real_single_flight_matches_the_protocol_model(
        ops in proptest::collection::vec(op_strategy(), 1..48)
    ) {
        run_sequence(&ops)?;
    }
}

#[test]
fn pinned_lead_wait_fulfill_hit_sequence() {
    // The canonical leader/follower/fulfill/hit shape, pinned so a
    // strategy change can never silently stop covering it.
    let ops = [
        Op::Lookup(0),
        Op::Lookup(0),
        Op::Fulfill(0),
        Op::Lookup(0),
        Op::Lookup(1),
        Op::AbortKey(1),
        Op::Lookup(1),
    ];
    run_sequence(&ops).expect("pinned sequence agrees with the model");
}
