//! Signal-storm regression: SIGUSR1 delivered thousands of times per
//! second across the process must not corrupt a single reply. glibc's
//! `signal()` restarts reads and writes, but `epoll_wait`, `accept`,
//! and the eventfd doorbell return `EINTR` — this drives every one of
//! those retry loops under live traffic. Lives in its own test binary
//! because signal dispositions are process-global and sticky.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use polyufc_serve::{
    json, oneshot_response, CompileOptions, CompileRequest, EngineConfig, Listen, Server,
    ServerConfig, SourceFormat,
};
use polyufc_workloads::{polybench_suite, PolybenchSize};

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn kill(pid: i32, sig: i32) -> i32;
    fn getpid() -> i32;
}

extern "C" fn sigusr1_noop(_sig: i32) {}

const SIGUSR1: i32 = 10;

#[test]
fn a_sigusr1_storm_does_not_corrupt_replies() {
    unsafe {
        signal(SIGUSR1, sigusr1_noop as *const () as usize);
    }

    let server = Server::bind(&ServerConfig {
        listen: Listen::Tcp("127.0.0.1:0".to_string()),
        engine: EngineConfig::default(),
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let stop = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run().expect("run"));

    // ~4k signals/s at the whole process: any thread not blocking the
    // signal can be interrupted mid-syscall, including the reactor.
    let storming = Arc::new(AtomicBool::new(true));
    let storm = {
        let storming = Arc::clone(&storming);
        std::thread::spawn(move || {
            while storming.load(Ordering::Relaxed) {
                unsafe {
                    kill(getpid(), SIGUSR1);
                }
                std::thread::sleep(Duration::from_micros(250));
            }
        })
    };

    let src = {
        let suite = polybench_suite(PolybenchSize::Mini);
        let w = suite.iter().find(|w| w.name == "gemm").expect("gemm");
        format!("{}", w.program)
    };
    let expected = oneshot_response(&CompileRequest {
        format: SourceFormat::TextualIr,
        source: src.clone(),
        name: "request".to_string(),
        opts: CompileOptions {
            epsilon: 1e-3,
            ..CompileOptions::default()
        },
    });
    let mut line = "{\"op\":\"compile\",\"epsilon\":1e-3,\"source\":".to_string();
    json::push_escaped(&mut line, &src);
    line.push('}');

    let stream = TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    for i in 0..200 {
        // Alternate pings and (mostly cached) compiles under the storm.
        let (want, send): (&str, &str) = if i % 2 == 0 {
            ("{\"ok\":true,\"pong\":true}", "{\"op\":\"ping\"}")
        } else {
            (expected.as_str(), line.as_str())
        };
        writer.write_all(send.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
        reply.clear();
        reader.read_line(&mut reply).expect("reply under storm");
        assert_eq!(reply.trim_end(), want, "reply {i} corrupted under storm");
    }

    storming.store(false, Ordering::Relaxed);
    storm.join().expect("storm thread");
    stop.shutdown();
    server_thread.join().expect("server thread");
}
