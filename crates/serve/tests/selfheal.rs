//! Self-healing behavior over the wire: per-request deadlines, stalled
//! worker replacement, the quarantine circuit breaker, and shutdown
//! with flights still pending. Chaos plans make every failure
//! deterministic: `budget`-bounded plans inject exactly N faults and
//! then behave pristine, so each test scripts its own fault sequence.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use polyufc_serve::{
    json, oneshot_response, ChaosPlan, CompileOptions, CompileRequest, Engine, EngineConfig,
    Listen, Server, ServerConfig, ShutdownHandle, SourceFormat,
};
use polyufc_workloads::{polybench_suite, PolybenchSize};

/// A daemon started with an explicit [`EngineConfig`], stopped on drop.
/// (The reactor-test helper hides the config; every test here is about
/// the config.)
struct Daemon {
    addr: String,
    engine: Arc<Engine>,
    stop: ShutdownHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    fn start(engine: EngineConfig) -> Daemon {
        let server = Server::bind(&ServerConfig {
            listen: Listen::Tcp("127.0.0.1:0".to_string()),
            engine,
        })
        .expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let engine = server.engine();
        let stop = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run().expect("run"));
        Daemon {
            addr,
            engine,
            stop,
            thread: Some(thread),
        }
    }

    fn connect(&self) -> TcpStream {
        let s = TcpStream::connect(&self.addr).expect("connect");
        s.set_nodelay(true).ok();
        s.set_read_timeout(Some(Duration::from_secs(20))).ok();
        s
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn mini_source(name: &str) -> String {
    let suite = polybench_suite(PolybenchSize::Mini);
    let w = suite
        .iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("workload {name}"));
    format!("{}", w.program)
}

fn compile_line(source: &str, epsilon: f64) -> String {
    let mut line = format!("{{\"op\":\"compile\",\"epsilon\":{epsilon},\"source\":");
    json::push_escaped(&mut line, source);
    line.push('}');
    line
}

fn expected_compile(source: &str, epsilon: f64) -> String {
    oneshot_response(&CompileRequest {
        format: SourceFormat::TextualIr,
        source: source.to_string(),
        name: "request".to_string(),
        opts: CompileOptions {
            epsilon,
            ..CompileOptions::default()
        },
    })
}

/// One request, one reply, on a fresh connection.
fn roundtrip(d: &Daemon, line: &str) -> String {
    let s = d.connect();
    let mut w = s.try_clone().expect("clone");
    let mut r = BufReader::new(s);
    w.write_all(line.as_bytes()).expect("send");
    w.write_all(b"\n").expect("send");
    let mut reply = String::new();
    r.read_line(&mut reply).expect("reply");
    reply.trim_end().to_string()
}

const PONG: &str = "{\"ok\":true,\"pong\":true}";

/// With a pristine chaos plan and an (idle) watchdog configured, the
/// dispatch path must stay byte-identical to the one-shot CLI — the
/// self-healing layer may not perturb healthy traffic.
#[test]
fn pristine_chaos_and_idle_watchdog_keep_dispatch_byte_identical() {
    let d = Daemon::start(EngineConfig {
        deadline: Some(Duration::from_secs(10)),
        chaos: ChaosPlan::pristine(),
        ..EngineConfig::default()
    });
    let src = mini_source("gemm");
    let expected = expected_compile(&src, 1e-3);
    // Cold, then cached: both must match the oneshot body exactly.
    assert_eq!(roundtrip(&d, &compile_line(&src, 1e-3)), expected);
    assert_eq!(roundtrip(&d, &compile_line(&src, 1e-3)), expected);
    assert_eq!(roundtrip(&d, "{\"op\":\"ping\"}"), PONG);
    assert_eq!(d.engine.chaos().injections_charged(), 0);
    // The stats wire op reports the self-heal section.
    let stats = roundtrip(&d, "{\"op\":\"stats\"}");
    assert!(stats.contains("\"self_heal\":{"), "stats: {stats}");
    assert!(stats.contains("\"deadline_ms\":10000"), "stats: {stats}");
}

/// A hung compile trips the deadline for the leader *and* a follower
/// sharing the flight; the watchdog then detaches the wedged worker,
/// replaces it, and a retry compiles cleanly on the fresh worker.
#[test]
fn deadline_aborts_leader_and_follower_then_worker_is_replaced() {
    let mut plan = ChaosPlan::hung_compiles(11, 1.0, 4_000);
    plan.budget = 1;
    let d = Daemon::start(EngineConfig {
        workers: 2,
        chaos: plan,
        deadline: Some(Duration::from_millis(250)),
        quarantine_threshold: 0, // isolate the deadline behavior
        ..EngineConfig::default()
    });

    let src = mini_source("mvt");
    let line = compile_line(&src, 1e-3);
    let t0 = Instant::now();
    let mut replies = Vec::new();
    let mut clients = Vec::new();
    for _ in 0..2 {
        let d_line = line.clone();
        let s = d.connect();
        clients.push(std::thread::spawn(move || {
            let mut w = s.try_clone().expect("clone");
            let mut r = BufReader::new(s);
            w.write_all(d_line.as_bytes()).expect("send");
            w.write_all(b"\n").expect("send");
            let mut reply = String::new();
            r.read_line(&mut reply).expect("reply");
            reply.trim_end().to_string()
        }));
    }
    for c in clients {
        replies.push(c.join().expect("client"));
    }
    let elapsed = t0.elapsed();
    for reply in &replies {
        assert!(
            reply.contains("\"code\":\"deadline_exceeded\""),
            "wanted a typed deadline error, got {reply}"
        );
    }
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline replies took {elapsed:?}"
    );
    assert_eq!(d.engine.deadlines_fired(), 1, "one flight, one deadline");

    // The wedged worker must be detached and replaced within 2× the
    // deadline (1.5× stall threshold + one watchdog period), counted
    // from when the deadline reply landed.
    let t1 = Instant::now();
    while d.engine.workers_replaced() == 0 {
        assert!(
            t1.elapsed() < Duration::from_millis(500),
            "stalled worker not replaced within 2x deadline"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Budget exhausted: the retry compiles for real on a healthy worker.
    assert_eq!(roundtrip(&d, &line), expected_compile(&src, 1e-3));
}

/// N consecutive contained panics quarantine the kernel's fingerprint:
/// later requests get the cached typed rejection without ever reaching
/// the pool, and the counters say so.
#[test]
fn repeated_panics_quarantine_the_kernel() {
    let d = Daemon::start(EngineConfig {
        chaos: ChaosPlan::panicking_compiles(12, 1.0),
        quarantine_threshold: 2,
        ..EngineConfig::default()
    });

    let src = mini_source("gemm");
    let line = compile_line(&src, 1e-3);
    for want in ["internal", "internal", "quarantined", "quarantined"] {
        let reply = roundtrip(&d, &line);
        let code = format!("\"code\":\"{want}\"");
        assert!(reply.contains(&code), "wanted {want}, got {reply}");
    }
    // Epsilon variants share the kernel's structural fingerprint, so the
    // breaker covers them too — quarantine is per kernel, not per key.
    let variant = roundtrip(&d, &compile_line(&src, 2e-3));
    assert!(
        variant.contains("\"code\":\"quarantined\""),
        "variant escaped quarantine: {variant}"
    );
    let stats = d.engine.cache_stats();
    assert_eq!(stats.quarantined, 1);
    assert_eq!(stats.quarantined_total, 1);
    assert!(
        stats.quarantine_hits >= 3,
        "hits: {}",
        stats.quarantine_hits
    );
}

/// Strikes are consecutive, not cumulative: a success between failures
/// resets the count, so a kernel two panics away from quarantine that
/// then compiles cleanly starts over from zero.
#[test]
fn a_successful_compile_resets_quarantine_strikes() {
    let mut plan = ChaosPlan::panicking_compiles(13, 1.0);
    plan.budget = 2; // exactly two panics, then pristine forever
    let d = Daemon::start(EngineConfig {
        chaos: plan,
        quarantine_threshold: 3,
        ..EngineConfig::default()
    });

    let src = mini_source("jacobi-2d");
    let line = compile_line(&src, 1e-3);
    for _ in 0..2 {
        let reply = roundtrip(&d, &line);
        assert!(reply.contains("\"code\":\"internal\""), "got {reply}");
    }
    // Third attempt succeeds (budget spent) and must clear the strikes.
    assert_eq!(roundtrip(&d, &line), expected_compile(&src, 1e-3));
    assert_eq!(d.engine.cache_stats().quarantined, 0);
    assert_eq!(d.engine.cache_stats().quarantined_total, 0);
}

/// Shutting down with a flight still pending must not strand the
/// waiter: the drain path aborts pending flights with a typed
/// `shutting_down` error instead of leaving the connection hung.
#[test]
fn shutdown_with_a_pending_flight_sends_a_typed_error() {
    let mut plan = ChaosPlan::hung_compiles(14, 1.0, 20_000);
    plan.budget = 1;
    let d = Daemon::start(EngineConfig {
        workers: 1,
        chaos: plan,
        deadline: None, // no watchdog: only shutdown can free the waiter
        shutdown_grace: Duration::from_millis(200),
        ..EngineConfig::default()
    });

    let src = mini_source("gemm");
    let line = compile_line(&src, 1e-3);
    let s = d.connect();
    let mut w = s.try_clone().expect("clone");
    let mut r = BufReader::new(s);
    w.write_all(line.as_bytes()).expect("send");
    w.write_all(b"\n").expect("send");
    // Let the job reach the (about to hang) worker.
    std::thread::sleep(Duration::from_millis(150));

    // Engine shutdown is `&self` and idempotent: tests hold Arcs to the
    // engine, and the server's own drain calls it again on the way out.
    let t0 = Instant::now();
    let engine = Arc::clone(&d.engine);
    engine.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shutdown grace was not bounded: {:?}",
        t0.elapsed()
    );

    let mut reply = String::new();
    r.read_line(&mut reply).expect("reply");
    assert!(
        reply.contains("\"code\":\"shutting_down\""),
        "wanted a typed shutdown error, got {}",
        reply.trim_end()
    );
}

/// A worker replaced mid-pipelined-batch must not reorder replies. The
/// deadline counts from submit (queue wait included), so with one
/// worker the batch-mate queued behind the wedge deadlines too — that
/// is the bounded-latency contract, not a bug: replacement lands at
/// 1.5× the deadline, after every same-batch flight has already been
/// aborted. Recovery shows up on the *next* request, which the fresh
/// worker compiles on the same connection.
#[test]
fn worker_replacement_mid_batch_preserves_reply_order() {
    let mut plan = ChaosPlan::hung_compiles(15, 1.0, 10_000);
    plan.budget = 1;
    let d = Daemon::start(EngineConfig {
        workers: 1, // the batch-mate is stuck behind the wedge
        chaos: plan,
        deadline: Some(Duration::from_millis(150)),
        quarantine_threshold: 0,
        ..EngineConfig::default()
    });

    let gemm = mini_source("gemm");
    let mvt = mini_source("mvt");
    let batch = format!(
        "{}\n{}\n{{\"op\":\"ping\"}}\n",
        compile_line(&gemm, 1e-3),
        compile_line(&mvt, 1e-3)
    );
    let s = d.connect();
    let mut w = s.try_clone().expect("clone");
    let mut r = BufReader::new(s);
    w.write_all(batch.as_bytes()).expect("send batch");

    let mut reply = String::new();
    for i in 1..=2 {
        reply.clear();
        r.read_line(&mut reply).expect("deadline reply");
        assert!(
            reply.contains("\"code\":\"deadline_exceeded\""),
            "reply {i}: {}",
            reply.trim_end()
        );
    }
    // The ping never touches the pool but must not jump the queue.
    reply.clear();
    r.read_line(&mut reply).expect("reply 3");
    assert_eq!(reply.trim_end(), PONG);

    // Once the watchdog swaps the wedged worker out, the same
    // connection compiles cleanly (budget spent: no more hangs).
    let t0 = Instant::now();
    while d.engine.workers_replaced() == 0 {
        assert!(t0.elapsed() < Duration::from_secs(2), "worker not replaced");
        std::thread::sleep(Duration::from_millis(5));
    }
    w.write_all(compile_line(&mvt, 1e-3).as_bytes())
        .expect("send");
    w.write_all(b"\n").expect("send");
    reply.clear();
    r.read_line(&mut reply).expect("post-replacement reply");
    assert_eq!(reply.trim_end(), expected_compile(&mvt, 1e-3));
}

/// A quarantined rejection is daemon state, not a cached artifact: it
/// never enters the keyed or exact-line tiers, so flushing quarantine
/// (here via the generational clear at shard capacity) lets the kernel
/// lead a real compile again.
#[test]
fn quarantine_rejections_never_poison_the_artifact_cache() {
    let mut plan = ChaosPlan::panicking_compiles(16, 1.0);
    plan.budget = 2;
    let d = Daemon::start(EngineConfig {
        chaos: plan,
        quarantine_threshold: 2,
        ..EngineConfig::default()
    });

    let src = mini_source("mvt");
    let line = compile_line(&src, 1e-3);
    for want in ["internal", "internal", "quarantined"] {
        let reply = roundtrip(&d, &line);
        let code = format!("\"code\":\"{want}\"");
        assert!(reply.contains(&code), "wanted {want}, got {reply}");
    }
    // The quarantined body must not have been recorded as the kernel's
    // cached artifact in the keyed or exact-line tiers.
    let stats = d.engine.cache_stats();
    assert_eq!(stats.entries, 0, "rejection leaked into the keyed tier");
    assert_eq!(stats.line_entries, 0, "rejection leaked into the line tier");
}
