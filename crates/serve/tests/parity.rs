//! Property: for any compile request, the live daemon's response bytes
//! are identical to [`oneshot_response`] — the exact function behind the
//! CLI's `compile --json`. This is the serve/one-shot parity guarantee:
//! caching, batching, and worker reuse must never change a single byte.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Mutex, OnceLock};

use proptest::prelude::*;

use polyufc::Objective;
use polyufc_cache::AssocMode;
use polyufc_machine::Platform;
use polyufc_serve::{
    json, oneshot_response, CompileOptions, CompileRequest, EngineConfig, Listen, Server,
    ServerConfig, SourceFormat,
};
use polyufc_workloads::{polybench_suite, PolybenchSize};

/// Workload mix: a compute-bound blas kernel, a bandwidth-bound mat-vec
/// composition, and a two-kernel reduction.
const WORKLOADS: &[&str] = &["gemm", "mvt", "atax"];

static CLIENT: OnceLock<Mutex<(TcpStream, BufReader<TcpStream>)>> = OnceLock::new();

fn client() -> &'static Mutex<(TcpStream, BufReader<TcpStream>)> {
    CLIENT.get_or_init(|| {
        let server = Server::bind(&ServerConfig {
            listen: Listen::Tcp("127.0.0.1:0".to_string()),
            engine: EngineConfig::default(),
        })
        .expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        // Runs until the test process exits.
        std::thread::spawn(move || server.run().expect("run"));
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().expect("clone");
        Mutex::new((writer, BufReader::new(stream)))
    })
}

fn roundtrip(line: &str) -> String {
    let mut guard = client().lock().unwrap();
    let (writer, reader) = &mut *guard;
    writer.write_all(line.as_bytes()).expect("send");
    writer.write_all(b"\n").expect("send");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("recv");
    reply.trim_end().to_string()
}

fn sources() -> &'static Vec<String> {
    static SOURCES: OnceLock<Vec<String>> = OnceLock::new();
    SOURCES.get_or_init(|| {
        let suite = polybench_suite(PolybenchSize::Mini);
        WORKLOADS
            .iter()
            .map(|name| {
                let w = suite
                    .iter()
                    .find(|w| w.name == *name)
                    .unwrap_or_else(|| panic!("workload {name}"));
                format!("{}", w.program)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Serve response == one-shot response, byte for byte, across
    /// workloads, platforms, objectives, epsilons, and assoc modes.
    #[test]
    fn serve_matches_the_oneshot_cli_path(
        w in 0usize..WORKLOADS.len(),
        plat in 0usize..2,
        obj in 0usize..3,
        eps_ix in 0usize..3,
        assoc_full in any::<bool>(),
    ) {
        let source = sources()[w].clone();
        let (platform, platform_s) = if plat == 0 {
            (Platform::broadwell(), "bdw")
        } else {
            (Platform::raptor_lake(), "rpl")
        };
        let (objective, objective_s) = match obj {
            0 => (Objective::Edp, "edp"),
            1 => (Objective::Energy, "energy"),
            _ => (Objective::Performance, "perf"),
        };
        let epsilon = [1e-3, 5e-3, 1e-2][eps_ix];
        let (assoc, assoc_s) = if assoc_full {
            (AssocMode::FullyAssociative, "full")
        } else {
            (AssocMode::SetAssociative, "set")
        };

        let expected = oneshot_response(&CompileRequest {
            format: SourceFormat::TextualIr,
            source: source.clone(),
            name: "request".to_string(),
            opts: CompileOptions {
                platform,
                objective,
                epsilon,
                assoc,
                emit_scf: false,
            },
        });

        let mut line = format!(
            "{{\"op\":\"compile\",\"platform\":\"{platform_s}\",\
             \"objective\":\"{objective_s}\",\"epsilon\":{epsilon},\
             \"assoc\":\"{assoc_s}\",\"source\":"
        );
        json::push_escaped(&mut line, &source);
        line.push('}');
        let reply = roundtrip(&line);
        prop_assert_eq!(
            reply, expected,
            "daemon and one-shot responses diverge for {} on {}/{}/{}/{}",
            WORKLOADS[w], platform_s, objective_s, epsilon, assoc_s
        );
    }
}
