//! Wire-level fuzz: the textual-parser fuzz corpus (the fragment soup
//! from `crates/ir/tests/fuzz_textual.rs`) fed through the daemon's
//! NDJSON protocol as compile sources. Every soup must come back as one
//! valid JSON response line — artifact or typed error — on the same
//! connection; the daemon must never panic and the connection must never
//! lose line synchronization.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Mutex, OnceLock};

use proptest::prelude::*;

use polyufc_serve::{json, EngineConfig, Listen, Server, ServerConfig};

/// The same grammar-biased fragments the parser fuzz test concatenates;
/// here each soup additionally crosses JSON escaping and the wire
/// round trip before it reaches the parser.
const FRAGMENTS: &[&str] = &[
    "// affine program `f`\n",
    "memref %A : 8x8xf64\n",
    "memref %B : 99999999999x99999999999xf64\n",
    "memref %C : f32\n",
    "memref %D 8xf64\n",
    "func @k {\n",
    "  affine.for %i0 = max(0) to min(8) {\n",
    "  affine.parallel %i1 = max(0) to min(i0) {\n",
    "  affine.for %i2 = max to min {\n",
    "  S0: load %A[i0, i1]; store %A[i1, i0] // 2 flops\n",
    "  S1: load %A[i99999, 0] // 1 flops\n",
    "  S2: load %Z[i0] // 1 flops\n",
    "  S3: load %A[999999999999999999999i0] // 1 flops\n",
    "}\n",
    "}}\n",
    "garbage\n",
    "",
];

/// One daemon and one client connection shared by every fuzz case — a
/// wedged or desynchronized connection fails the *next* case's read.
static CLIENT: OnceLock<Mutex<(TcpStream, BufReader<TcpStream>)>> = OnceLock::new();

fn client() -> &'static Mutex<(TcpStream, BufReader<TcpStream>)> {
    CLIENT.get_or_init(|| {
        let server = Server::bind(&ServerConfig {
            listen: Listen::Tcp("127.0.0.1:0".to_string()),
            engine: EngineConfig::default(),
        })
        .expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        // Runs until the test process exits.
        std::thread::spawn(move || server.run().expect("run"));
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().expect("clone");
        Mutex::new((writer, BufReader::new(stream)))
    })
}

fn roundtrip(line: &str) -> String {
    let mut guard = client().lock().unwrap();
    let (writer, reader) = &mut *guard;
    writer.write_all(line.as_bytes()).expect("send");
    writer.write_all(b"\n").expect("send");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("recv");
    assert!(reply.ends_with('\n'), "unterminated reply: {reply:?}");
    reply.trim_end().to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Any fragment soup, wrapped in a compile request, gets exactly one
    /// JSON reply with a boolean `ok` — and the connection stays usable.
    #[test]
    fn fragment_soup_over_the_wire_never_wedges(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..12)
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let mut line = String::from("{\"op\":\"compile\",\"source\":");
        json::push_escaped(&mut line, &src);
        line.push('}');
        let reply = roundtrip(&line);
        let v = json::parse(&reply);
        prop_assert!(v.is_ok(), "reply is not valid JSON: {reply}");
        let ok = v.unwrap().get("ok").and_then(|o| o.as_bool());
        prop_assert!(ok.is_some(), "reply has no boolean `ok`: {reply}");
    }
}

#[test]
fn the_shared_connection_answers_ping_after_fuzzing() {
    // Regardless of test order, the shared connection must serve a
    // normal request — before, between, or after fuzz cases.
    assert_eq!(
        roundtrip("{\"op\":\"ping\"}"),
        "{\"ok\":true,\"pong\":true}"
    );
}
