//! Live-daemon wire tests: a real [`Server`] on an ephemeral TCP port,
//! driven through the NDJSON protocol exactly as a client would.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use polyufc_serve::json;
use polyufc_serve::{
    oneshot_response, CompileOptions, CompileRequest, Engine, EngineConfig, Listen, Server,
    ServerConfig, ShutdownHandle, SourceFormat, MAX_REQUEST_BYTES,
};
use polyufc_workloads::{polybench_suite, PolybenchSize};

/// A running daemon plus the handles the tests poke at.
struct Daemon {
    addr: String,
    engine: Arc<Engine>,
    stop: ShutdownHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    fn start(engine_cfg: EngineConfig) -> Daemon {
        let server = Server::bind(&ServerConfig {
            listen: Listen::Tcp("127.0.0.1:0".to_string()),
            engine: engine_cfg,
        })
        .expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let engine = server.engine();
        let stop = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run().expect("run"));
        Daemon {
            addr,
            engine,
            stop,
            thread: Some(thread),
        }
    }

    fn connect(&self) -> Client {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().expect("clone");
        Client {
            writer,
            reader: BufReader::new(stream),
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn roundtrip(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("recv");
        assert!(reply.ends_with('\n'), "unterminated reply: {reply:?}");
        reply.trim_end().to_string()
    }
}

fn mini_source(name: &str) -> String {
    let w = polybench_suite(PolybenchSize::Mini)
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("workload {name}"));
    format!("{}", w.program)
}

fn compile_line(source: &str) -> String {
    let mut s = String::from("{\"op\":\"compile\",\"source\":");
    let mut quoted = String::new();
    json::push_escaped(&mut quoted, source);
    s.push_str(&quoted);
    s.push('}');
    s
}

fn error_code(reply: &str) -> String {
    let v = json::parse(reply).expect("reply must be valid JSON");
    assert_eq!(
        v.get("ok").and_then(|o| o.as_bool()),
        Some(false),
        "{reply}"
    );
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(|c| c.as_str())
        .unwrap_or_else(|| panic!("no error.code in {reply}"))
        .to_string()
}

#[test]
fn ping_stats_and_compile_roundtrip() {
    let d = Daemon::start(EngineConfig::default());
    let mut c = d.connect();
    assert_eq!(
        c.roundtrip("{\"op\":\"ping\"}"),
        "{\"ok\":true,\"pong\":true}"
    );

    let stats = c.roundtrip("{\"op\":\"stats\"}");
    let v = json::parse(&stats).expect("stats is JSON");
    assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(true));
    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some("polyufc-stats/1")
    );
    // The chk section appears exactly when the daemon is built with the
    // lockdep feature; default builds must stay byte-identical.
    let instrumented = polyufc_chk::lockdep_stats().is_some();
    assert_eq!(stats.contains("\"chk\":{"), instrumented, "stats: {stats}");
    if instrumented {
        let chk = v.get("chk").expect("chk section parses");
        assert!(
            chk.get("lock_sites")
                .and_then(|x| x.as_f64())
                .unwrap_or(0.0)
                >= 1.0,
            "stats: {stats}"
        );
        assert_eq!(
            chk.get("cycles").and_then(|x| x.as_f64()),
            Some(0.0),
            "stats: {stats}"
        );
    }

    let reply = c.roundtrip(&compile_line(&mini_source("gemm")));
    let v = json::parse(&reply).expect("artifact is JSON");
    assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(true));
    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some("polyufc-artifact/1")
    );
    let kernels = v.get("kernels").and_then(|k| k.as_arr()).expect("kernels");
    assert!(!kernels.is_empty());
    for k in kernels {
        let cap = k.get("cap_ghz").and_then(|x| x.as_f64()).expect("cap_ghz");
        assert!(cap > 0.0);
    }
}

#[test]
fn repeated_requests_hit_the_cache_with_identical_bytes() {
    let d = Daemon::start(EngineConfig::default());
    let mut c = d.connect();
    let line = compile_line(&mini_source("mvt"));
    let first = c.roundtrip(&line);
    let before = d.engine.cache_stats();
    let second = c.roundtrip(&line);
    let after = d.engine.cache_stats();
    assert_eq!(first, second, "cached response must be byte-identical");
    assert_eq!(after.hits, before.hits + 1);
    assert_eq!(after.misses, before.misses);

    // ...and identical to the one-shot (CLI) path for the same request.
    let oneshot = oneshot_response(&CompileRequest {
        format: SourceFormat::TextualIr,
        source: mini_source("mvt"),
        name: "request".to_string(),
        opts: CompileOptions::default(),
    });
    assert_eq!(first, oneshot);
}

#[test]
fn malformed_requests_get_typed_errors_and_the_daemon_keeps_serving() {
    let d = Daemon::start(EngineConfig::default());
    let mut c = d.connect();
    let cases: &[(&str, &str)] = &[
        ("{", "bad_json"),
        ("nonsense", "bad_json"),
        ("[1,2]", "bad_request"),
        ("{\"op\":42}", "bad_request"),
        ("{\"op\":\"frobnicate\"}", "unknown_op"),
        ("{\"op\":\"compile\"}", "bad_request"),
        (
            "{\"op\":\"compile\",\"source\":\"func @k { wat\"}",
            "parse_error",
        ),
        (
            "{\"op\":\"compile\",\"source\":\"x\",\"epsilon\":\"tiny\"}",
            "bad_request",
        ),
    ];
    for (line, code) in cases {
        assert_eq!(error_code(&c.roundtrip(line)), *code, "for {line}");
    }
    // The same connection still serves valid requests afterwards.
    assert_eq!(
        c.roundtrip("{\"op\":\"ping\"}"),
        "{\"ok\":true,\"pong\":true}"
    );
}

#[test]
fn oversized_line_is_rejected_without_wedging_the_connection() {
    let d = Daemon::start(EngineConfig::default());
    let mut c = d.connect();
    let big = format!(
        "{{\"op\":\"compile\",\"source\":\"{}\"}}",
        "a".repeat(MAX_REQUEST_BYTES + 1)
    );
    assert_eq!(error_code(&c.roundtrip(&big)), "oversized");
    // Line framing recovered: the next request parses normally.
    assert_eq!(
        c.roundtrip("{\"op\":\"ping\"}"),
        "{\"ok\":true,\"pong\":true}"
    );
}

#[test]
fn invalid_utf8_is_a_typed_error() {
    let d = Daemon::start(EngineConfig::default());
    let stream = TcpStream::connect(&d.addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"{\"op\":\"ping\xff\"}\n").expect("send");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("recv");
    assert_eq!(error_code(reply.trim_end()), "bad_json");
    writer.write_all(b"{\"op\":\"ping\"}\n").expect("send");
    reply.clear();
    reader.read_line(&mut reply).expect("recv");
    assert_eq!(reply.trim_end(), "{\"ok\":true,\"pong\":true}");
}

#[test]
fn verifier_rejection_carries_diagnostics() {
    // An out-of-bounds access the static verifier must refuse: A is 8x8
    // but the load reads A[i0 + 1].
    let src = "// affine program `oob`\nmemref %A : 8x8xf64\nfunc @k {\n  affine.for %i0 = max(0) to min(8) {\n    affine.for %i1 = max(0) to min(8) {\n      S0: load %A[i0 + 1, i1]; store %A[i0, i1] // 1 flops\n    }\n  }\n}\n";
    let d = Daemon::start(EngineConfig::default());
    let mut c = d.connect();
    let reply = c.roundtrip(&compile_line(src));
    assert_eq!(error_code(&reply), "rejected");
    let v = json::parse(&reply).unwrap();
    let diags = v
        .get("error")
        .and_then(|e| e.get("diagnostics"))
        .and_then(|x| x.as_arr())
        .expect("diagnostics array");
    assert!(!diags.is_empty());
    // Deterministic rejections are cached like artifacts.
    assert_eq!(c.roundtrip(&compile_line(src)), reply);
}

#[test]
fn concurrent_identical_requests_compile_once() {
    const N: usize = 8;
    let d = Daemon::start(EngineConfig {
        workers: 2,
        queue_cap: 2 * N,
        cache_capacity: 64,
        ..EngineConfig::default()
    });
    let line = Arc::new(compile_line(&mini_source("gemm")));
    let before = d.engine.cache_stats();
    let mut handles = Vec::new();
    for _ in 0..N {
        let line = Arc::clone(&line);
        let mut c = d.connect();
        handles.push(std::thread::spawn(move || c.roundtrip(&line)));
    }
    let replies: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &replies {
        assert_eq!(r, &replies[0], "all N responses must be byte-identical");
    }
    let after = d.engine.cache_stats();
    assert_eq!(
        after.misses - before.misses,
        1,
        "N identical requests must lead exactly one compile"
    );
    assert!(
        after.hits - before.hits >= (N - 1) as u64,
        "expected >= {} artifact-cache hits, got {}",
        N - 1,
        after.hits - before.hits
    );
}

#[test]
fn shutdown_request_drains_and_stops() {
    let d = Daemon::start(EngineConfig::default());
    let mut c = d.connect();
    // Some work first, so the drain path has something behind it.
    let _ = c.roundtrip(&compile_line(&mini_source("gemm")));
    let mut c2 = d.connect();
    assert_eq!(
        c2.roundtrip("{\"op\":\"shutdown\"}"),
        "{\"ok\":true,\"shutdown\":true}"
    );
    // The accept loop observes the stop flag and run() returns; Daemon's
    // Drop would hang here if shutdown didn't actually stop the server.
}
