//! `polyufc serve`: a long-running compile-and-cap daemon.
//!
//! The daemon speaks newline-delimited JSON over TCP or a unix socket:
//! one request per line, one response line per request. Compile requests
//! carry a kernel (textual affine IR or a cgeist-style C scop) plus a
//! platform/objective spec and come back as a *cap artifact* — per-kernel
//! roofline characterization and uncore-frequency caps — or as a typed
//! error (lint rejection, parse error, overload, ...).
//!
//! The performance architecture, bottom-up:
//!
//! * [`artifact`] / [`shard`]: a sharded content-addressed response cache
//!   keyed on the structural fingerprints the measure cache already
//!   computes, with single-flight dedup — N concurrent identical requests
//!   compile once — plus an exact-line response tier that answers repeat
//!   request lines without parsing them.
//! * [`engine`]: asynchronous compile submission into the bounded
//!   [`polyufc_par::StatefulPool`], one persistent
//!   [`polyufc::CompileSession`] and an ε-independent characterization
//!   prefix cache per worker, and explicit shed (`overloaded`) when the
//!   queue is full.
//! * [`reactor`] / [`server`]: on Linux, a single epoll event loop owns
//!   every connection — nonblocking sockets, pipelined NDJSON with
//!   in-order replies, vectored writes of shared body buffers, an eventfd
//!   doorbell for worker completions, and bounded connection admission.
//!   Elsewhere, a thread-per-connection fallback with the same wire
//!   behavior.
//! * [`protocol`] / [`json`]: the strict wire layer. Responses are
//!   byte-deterministic, so a cache hit, a fresh compile, a pipelined
//!   batch, and the one-shot CLI (`polyufc compile --json`) all emit
//!   identical bytes for identical requests.

#![warn(missing_docs)]

pub mod artifact;
pub mod chaos;
pub mod engine;
pub mod json;
pub mod protocol;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod server;
pub mod shard;

pub use artifact::{Abort, ArtifactCacheStats, Body, Flight, Lookup};
pub use chaos::{ChaosPlan, CompileFault};
pub use engine::{oneshot_response, Engine, EngineConfig, Outcome, Submitted};
pub use protocol::{
    parse_request, render_error, CompileOptions, CompileRequest, Request, SourceFormat, WireError,
    MAX_REQUEST_BYTES,
};
pub use server::{install_signal_handlers, Listen, Server, ServerConfig, ShutdownHandle};
pub use shard::ArtifactCache;
