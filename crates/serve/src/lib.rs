//! `polyufc serve`: a long-running compile-and-cap daemon.
//!
//! The daemon speaks newline-delimited JSON over TCP or a unix socket:
//! one request per line, one response line per request. Compile requests
//! carry a kernel (textual affine IR or a cgeist-style C scop) plus a
//! platform/objective spec and come back as a *cap artifact* — per-kernel
//! roofline characterization and uncore-frequency caps — or as a typed
//! error (lint rejection, parse error, overload, ...).
//!
//! The performance architecture, bottom-up:
//!
//! * [`artifact`]: a content-addressed response cache keyed on the
//!   structural fingerprints the measure cache already computes, with
//!   single-flight dedup — N concurrent identical requests compile once.
//! * [`engine`]: request batching into the bounded
//!   [`polyufc_par::StatefulPool`], one persistent
//!   [`polyufc::CompileSession`] per worker (warm Presburger caches), and
//!   explicit shed (`overloaded`) when the queue is full.
//! * [`server`]: nonblocking listeners, bounded line framing, and clean
//!   drain on SIGINT/SIGTERM or a `shutdown` request.
//! * [`protocol`] / [`json`]: the strict wire layer. Responses are
//!   byte-deterministic, so a cache hit, a fresh compile, and the
//!   one-shot CLI (`polyufc compile --json`) all emit identical bytes
//!   for identical requests.

#![warn(missing_docs)]

pub mod artifact;
pub mod engine;
pub mod json;
pub mod protocol;
pub mod server;

pub use artifact::{ArtifactCache, ArtifactCacheStats};
pub use engine::{oneshot_response, Engine, EngineConfig, Outcome};
pub use protocol::{
    parse_request, render_error, CompileOptions, CompileRequest, Request, SourceFormat, WireError,
    MAX_REQUEST_BYTES,
};
pub use server::{install_signal_handlers, Listen, Server, ServerConfig};
