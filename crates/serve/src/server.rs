//! The daemon shell around the [`Engine`](crate::engine::Engine):
//! listeners, per-connection line framing, and clean shutdown on
//! SIGINT/SIGTERM or a `shutdown` request.
//!
//! The accept loop is nonblocking with a short sleep so the stop flag
//! (set by a signal handler or a `shutdown` request on any connection)
//! is observed within tens of milliseconds without busy-spinning.
//! Connection sockets use a read timeout for the same reason: an idle
//! client must not pin a reader thread through shutdown.
//!
//! Lines are read with a hand-rolled `fill_buf`/`consume` loop rather
//! than `read_until`: a client streaming one enormous "line" must be
//! answered with a typed `oversized` error and have its excess bytes
//! discarded in constant memory, not buffered until allocation fails.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::{Engine, EngineConfig, Outcome};
use crate::protocol::{codes, render_error, MAX_REQUEST_BYTES};

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Listen {
    /// A TCP address, e.g. `127.0.0.1:7077` (or `:0` for an ephemeral
    /// port, which tests and the loadtest use).
    Tcp(String),
    /// A unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Daemon configuration: where to listen and how to size the engine.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listener address.
    pub listen: Listen,
    /// Engine sizing (workers, queue, cache).
    pub engine: EngineConfig,
}

/// Set by the SIGINT/SIGTERM handler; every accept loop polls it.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Installs process-wide SIGINT/SIGTERM handlers that request a clean
/// drain-and-stop. Uses the C `signal` entry point directly — the only
/// async-signal work is one atomic store, and the workspace vendors no
/// libc crate.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" fn on_signal(_sig: i32) {
            SIGNALLED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

enum Acceptor {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

/// A bound, not-yet-running daemon.
pub struct Server {
    acceptor: Acceptor,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and spins up the engine.
    ///
    /// # Errors
    ///
    /// Propagates bind errors (address in use, bad path, ...).
    pub fn bind(cfg: &ServerConfig) -> std::io::Result<Server> {
        let acceptor = match &cfg.listen {
            Listen::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Acceptor::Tcp(l)
            }
            #[cfg(unix)]
            Listen::Unix(path) => {
                // A stale socket file from a crashed run would make bind
                // fail forever; only an unbound path is safe to clear.
                if path.exists() && UnixStream::connect(path).is_err() {
                    let _ = std::fs::remove_file(path);
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Acceptor::Unix(l, path.clone())
            }
        };
        Ok(Server {
            acceptor,
            engine: Arc::new(Engine::new(&cfg.engine)),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound TCP address (for `:0` ephemeral binds); `None`
    /// for unix sockets.
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        match &self.acceptor {
            Acceptor::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Acceptor::Unix(..) => None,
        }
    }

    /// The engine, for out-of-band inspection (tests, the loadtest).
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    /// A flag that stops the accept loop when set (tests use this to stop
    /// a server without a signal or a `shutdown` request).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serves until a `shutdown` request, SIGINT/SIGTERM, or the stop
    /// flag; then drains in-flight connections and compiles and returns.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O errors other than `WouldBlock`.
    pub fn run(self) -> std::io::Result<()> {
        let mut conn_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let live = Arc::new(AtomicUsize::new(0));
        loop {
            if self.stop.load(Ordering::SeqCst) || SIGNALLED.load(Ordering::SeqCst) {
                break;
            }
            let conn = match &self.acceptor {
                Acceptor::Tcp(l) => match l.accept() {
                    Ok((s, _)) => Some(Conn::Tcp(s)),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
                #[cfg(unix)]
                Acceptor::Unix(l, _) => match l.accept() {
                    Ok((s, _)) => Some(Conn::Unix(s)),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
            };
            match conn {
                None => std::thread::sleep(Duration::from_millis(10)),
                Some(conn) => {
                    let engine = Arc::clone(&self.engine);
                    let stop = Arc::clone(&self.stop);
                    let live = Arc::clone(&live);
                    live.fetch_add(1, Ordering::SeqCst);
                    conn_handles.push(std::thread::spawn(move || {
                        serve_connection(conn, &engine, &stop);
                        live.fetch_sub(1, Ordering::SeqCst);
                    }));
                    // Reap finished handles so a long-lived daemon does
                    // not accumulate one JoinHandle per past connection.
                    conn_handles.retain(|h| !h.is_finished());
                }
            }
        }
        for h in conn_handles {
            let _ = h.join();
        }
        #[cfg(unix)]
        if let Acceptor::Unix(_, path) = &self.acceptor {
            let _ = std::fs::remove_file(path);
        }
        // Unwrap the engine and drain its queue. Connection threads are
        // joined, so test-held engine Arcs are the only other owners;
        // those can't submit work, so skipping the drain there is fine.
        if let Ok(engine) = Arc::try_unwrap(self.engine) {
            engine.shutdown();
        }
        Ok(())
    }
}

fn serve_connection(conn: Conn, engine: &Engine, stop: &Arc<AtomicBool>) {
    match conn {
        Conn::Tcp(s) => {
            // One small write per response: without NODELAY, Nagle +
            // delayed ACK turns every round trip into ~40 ms.
            let _ = s.set_nodelay(true);
            let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
            let mut writer = match s.try_clone() {
                Ok(w) => w,
                Err(_) => return,
            };
            serve_stream(BufReader::new(s), &mut writer, engine, stop);
        }
        #[cfg(unix)]
        Conn::Unix(s) => {
            let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
            let mut writer = match s.try_clone() {
                Ok(w) => w,
                Err(_) => return,
            };
            serve_stream(BufReader::new(s), &mut writer, engine, stop);
        }
    }
}

fn serve_stream<R: Read, W: Write>(
    mut reader: BufReader<R>,
    writer: &mut W,
    engine: &Engine,
    stop: &Arc<AtomicBool>,
) {
    let mut line: Vec<u8> = Vec::new();
    loop {
        match read_line_bounded(&mut reader, &mut line, stop) {
            LineRead::Closed => return,
            LineRead::Stopping => return,
            LineRead::Oversized => {
                let body = render_error(
                    codes::OVERSIZED,
                    &format!("request line exceeds {MAX_REQUEST_BYTES} bytes"),
                );
                if write_reply(writer, &body).is_err() {
                    return;
                }
            }
            LineRead::Line => {
                let text = match std::str::from_utf8(&line) {
                    Ok(t) => t.trim(),
                    Err(_) => {
                        let body = render_error(codes::BAD_JSON, "request line is not valid UTF-8");
                        if write_reply(writer, &body).is_err() {
                            return;
                        }
                        continue;
                    }
                };
                if text.is_empty() {
                    continue;
                }
                match engine.handle_line(text) {
                    Outcome::Reply(body) => {
                        if write_reply(writer, &body).is_err() {
                            return;
                        }
                    }
                    Outcome::ReplyAndShutdown(body) => {
                        let _ = write_reply(writer, &body);
                        stop.store(true, Ordering::SeqCst);
                        return;
                    }
                }
            }
        }
    }
}

fn write_reply<W: Write>(w: &mut W, body: &str) -> std::io::Result<()> {
    w.write_all(body.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

enum LineRead {
    /// `line` holds one complete request line (without the newline).
    Line,
    /// The line exceeded the limit; its remainder was discarded.
    Oversized,
    /// The peer closed the connection.
    Closed,
    /// The daemon is stopping.
    Stopping,
}

/// Reads one newline-terminated line into `line`, capped at
/// [`MAX_REQUEST_BYTES`]; past the cap it switches to discarding until
/// the newline so one oversized request costs bounded memory and exactly
/// one error reply. Read timeouts are polls, not failures: they give the
/// stop flag a look-in on idle connections.
fn read_line_bounded<R: Read>(
    reader: &mut BufReader<R>,
    line: &mut Vec<u8>,
    stop: &Arc<AtomicBool>,
) -> LineRead {
    line.clear();
    let mut discarding = false;
    loop {
        if stop.load(Ordering::SeqCst) || SIGNALLED.load(Ordering::SeqCst) {
            return LineRead::Stopping;
        }
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => return LineRead::Closed,
        };
        if buf.is_empty() {
            return LineRead::Closed; // EOF
        }
        let (chunk, ate_newline) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (buf.len(), false),
        };
        if !discarding {
            let take = chunk - usize::from(ate_newline);
            line.extend_from_slice(&buf[..take]);
            if line.len() > MAX_REQUEST_BYTES {
                discarding = true;
            }
        }
        reader.consume(chunk);
        if ate_newline {
            return if discarding {
                LineRead::Oversized
            } else {
                LineRead::Line
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn quiet_stop() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(false))
    }

    #[test]
    fn bounded_reader_splits_lines() {
        let mut r = BufReader::new(Cursor::new(b"abc\ndef\n".to_vec()));
        let mut line = Vec::new();
        let stop = quiet_stop();
        assert!(matches!(
            read_line_bounded(&mut r, &mut line, &stop),
            LineRead::Line
        ));
        assert_eq!(line, b"abc");
        assert!(matches!(
            read_line_bounded(&mut r, &mut line, &stop),
            LineRead::Line
        ));
        assert_eq!(line, b"def");
        assert!(matches!(
            read_line_bounded(&mut r, &mut line, &stop),
            LineRead::Closed
        ));
    }

    #[test]
    fn bounded_reader_discards_oversized_in_constant_memory() {
        let mut big = vec![b'x'; MAX_REQUEST_BYTES + 4096];
        big.push(b'\n');
        big.extend_from_slice(b"{\"op\":\"ping\"}\n");
        let mut r = BufReader::new(Cursor::new(big));
        let mut line = Vec::new();
        let stop = quiet_stop();
        assert!(matches!(
            read_line_bounded(&mut r, &mut line, &stop),
            LineRead::Oversized
        ));
        assert!(line.len() <= MAX_REQUEST_BYTES + 8192);
        // The connection is still line-synchronized after the discard.
        assert!(matches!(
            read_line_bounded(&mut r, &mut line, &stop),
            LineRead::Line
        ));
        assert_eq!(line, b"{\"op\":\"ping\"}");
    }
}
