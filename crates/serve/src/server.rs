//! The daemon shell around the [`Engine`](crate::engine::Engine):
//! listeners, connection admission, and clean shutdown on SIGINT/SIGTERM,
//! a `shutdown` request, or a [`ShutdownHandle`].
//!
//! On Linux, [`Server::run`] hands the listener to the epoll
//! [`reactor`](crate::reactor): one event-loop thread owns every
//! connection, requests pipeline, and nothing sleeps — worker
//! completions and signals arrive through an eventfd doorbell. Elsewhere
//! it falls back to the original thread-per-connection loop with the same
//! wire behavior.
//!
//! Shutdown is event-driven end to end: the signal handler both sets
//! [`SIGNALLED`] *and* writes the doorbell (one `write(2)` — both are
//! async-signal-safe), so a parked `epoll_wait` wakes immediately instead
//! of on its next timeout. [`ShutdownHandle::shutdown`] does the same
//! from safe code; tests use it to stop a daemon without a signal.
//!
//! Admission is bounded: at most `max_conns` concurrent connections
//! (default 1024, `--max-conns` / `POLYUFC_MAX_CONNS`); a connection past
//! the limit is answered with one typed `overloaded` line and closed at
//! accept, before it can buffer requests the daemon cannot serve.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(target_os = "linux")]
use std::os::fd::AsRawFd;
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
#[cfg(target_os = "linux")]
use std::sync::atomic::AtomicI32;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::{Engine, EngineConfig, Outcome};
use crate::protocol::{codes, render_error, MAX_REQUEST_BYTES};

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Listen {
    /// A TCP address, e.g. `127.0.0.1:7077` (or `:0` for an ephemeral
    /// port, which tests and the loadtest use).
    Tcp(String),
    /// A unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Daemon configuration: where to listen and how to size the engine.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listener address.
    pub listen: Listen,
    /// Engine sizing (workers, queue, cache).
    pub engine: EngineConfig,
}

/// Set by the SIGINT/SIGTERM handler; the event loop (and the fallback
/// accept loop) checks it on every wakeup.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// The reactor's doorbell fd, published while a daemon runs so the
/// signal handler can wake a parked `epoll_wait`; −1 when no daemon is
/// running.
#[cfg(target_os = "linux")]
static SIGNAL_WAKE_FD: AtomicI32 = AtomicI32::new(-1);

pub(crate) fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Installs process-wide SIGINT/SIGTERM handlers that request a clean
/// drain-and-stop. Uses the C `signal` entry point directly — the only
/// async-signal work is one atomic store plus one `write(2)` to the
/// reactor's doorbell (both async-signal-safe), and the workspace
/// vendors no libc crate.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        // chk:signal-handler
        extern "C" fn on_signal(_sig: i32) {
            SIGNALLED.store(true, Ordering::SeqCst);
            #[cfg(target_os = "linux")]
            {
                extern "C" {
                    fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
                }
                let fd = SIGNAL_WAKE_FD.load(Ordering::SeqCst);
                if fd >= 0 {
                    let one: u64 = 1;
                    unsafe { write(fd, (&one as *const u64).cast(), 8) };
                }
            }
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

pub(crate) enum Acceptor {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Acceptor {
    /// One nonblocking accept; `Ok(None)` when no connection is pending.
    /// Restarts on EINTR — `accept(2)` never auto-restarts under the BSD
    /// `signal()` semantics glibc installs, so without the loop one
    /// signal landing mid-accept would bubble an error out of the
    /// reactor and kill the daemon.
    pub(crate) fn accept(&self) -> std::io::Result<Option<Conn>> {
        loop {
            let result = match self {
                Acceptor::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
                #[cfg(unix)]
                Acceptor::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
            };
            match result {
                Ok(conn) => return Ok(Some(conn)),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    #[cfg(target_os = "linux")]
    pub(crate) fn raw_fd(&self) -> i32 {
        match self {
            Acceptor::Tcp(l) => l.as_raw_fd(),
            Acceptor::Unix(l, _) => l.as_raw_fd(),
        }
    }
}

pub(crate) enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Socket options for the reactor: nonblocking, and NODELAY on TCP —
    /// one small write per response round trip must not wait out Nagle.
    #[cfg(target_os = "linux")]
    pub(crate) fn prepare_nonblocking(&self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                let _ = s.set_nodelay(true);
                s.set_nonblocking(true)
            }
            Conn::Unix(s) => s.set_nonblocking(true),
        }
    }

    #[cfg(target_os = "linux")]
    pub(crate) fn raw_fd(&self) -> i32 {
        match self {
            Conn::Tcp(s) => s.as_raw_fd(),
            Conn::Unix(s) => s.as_raw_fd(),
        }
    }
}

#[cfg(target_os = "linux")]
impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

#[cfg(target_os = "linux")]
impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn write_vectored(&mut self, bufs: &[std::io::IoSlice<'_>]) -> std::io::Result<usize> {
        // Both streams lower this onto writev(2): one syscall flushes a
        // whole batch of pipelined response bodies.
        match self {
            Conn::Tcp(s) => s.write_vectored(bufs),
            Conn::Unix(s) => s.write_vectored(bufs),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The one typed response an over-limit connection receives at accept.
pub(crate) fn admission_reject_line() -> String {
    let mut s = render_error(
        codes::OVERLOADED,
        "connection limit reached; retry against a less loaded daemon",
    );
    s.push('\n');
    s
}

fn default_max_conns() -> usize {
    std::env::var("POLYUFC_MAX_CONNS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1024)
}

/// Stops a running daemon from outside: sets the stop flag *and* rings
/// the reactor's doorbell, so a parked `epoll_wait` (or a sleeping
/// fallback accept loop) observes the request immediately rather than on
/// its next timeout. Clone freely; all clones control the same daemon.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    #[cfg(target_os = "linux")]
    wake: Arc<crate::reactor::WakeupFd>,
}

impl std::fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownHandle")
            .field("requested", &self.flag.load(Ordering::SeqCst))
            .finish()
    }
}

impl ShutdownHandle {
    /// Requests a clean drain-and-stop.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        #[cfg(target_os = "linux")]
        self.wake.ring();
    }

    /// Whether a stop was requested (by this handle, a signal, or a
    /// `shutdown` request).
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst) || signalled()
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    acceptor: Acceptor,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    max_conns: usize,
    #[cfg(target_os = "linux")]
    wakeup: Arc<crate::reactor::WakeupFd>,
}

impl Server {
    /// Binds the listener, spins up the engine, and (on Linux) creates
    /// the reactor's doorbell eventfd.
    ///
    /// # Errors
    ///
    /// Propagates bind errors (address in use, bad path, ...).
    pub fn bind(cfg: &ServerConfig) -> std::io::Result<Server> {
        let acceptor = match &cfg.listen {
            Listen::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Acceptor::Tcp(l)
            }
            #[cfg(unix)]
            Listen::Unix(path) => {
                // A stale socket file from a crashed run would make bind
                // fail forever; only an unbound path is safe to clear.
                if path.exists() && UnixStream::connect(path).is_err() {
                    let _ = std::fs::remove_file(path);
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Acceptor::Unix(l, path.clone())
            }
        };
        Ok(Server {
            acceptor,
            engine: Arc::new(Engine::new(&cfg.engine)),
            stop: Arc::new(AtomicBool::new(false)),
            max_conns: default_max_conns(),
            #[cfg(target_os = "linux")]
            wakeup: Arc::new(crate::reactor::WakeupFd::new()?),
        })
    }

    /// The actually-bound TCP address (for `:0` ephemeral binds); `None`
    /// for unix sockets.
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        match &self.acceptor {
            Acceptor::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Acceptor::Unix(..) => None,
        }
    }

    /// The engine, for out-of-band inspection (tests, the loadtest).
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    /// A handle that stops this daemon cleanly from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.stop),
            #[cfg(target_os = "linux")]
            wake: Arc::clone(&self.wakeup),
        }
    }

    /// Caps concurrent connections (at least 1); connections past the cap
    /// are answered with one typed `overloaded` line and closed at accept.
    pub fn set_max_conns(&mut self, max_conns: usize) {
        self.max_conns = max_conns.max(1);
    }

    /// Serves until a `shutdown` request, SIGINT/SIGTERM, or a
    /// [`ShutdownHandle`]; then drains in-flight connections and compiles
    /// and returns.
    ///
    /// # Errors
    ///
    /// Propagates listener/reactor I/O errors other than `WouldBlock`.
    #[cfg(target_os = "linux")]
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            acceptor,
            engine,
            stop,
            max_conns,
            wakeup,
        } = self;
        // The doorbell: every finished compile job rings once, so the
        // reactor drains its completion queue without ever polling.
        {
            let bell = Arc::clone(&wakeup);
            engine.set_completion_hook(move || bell.ring());
        }
        SIGNAL_WAKE_FD.store(wakeup.fd(), Ordering::SeqCst);
        let result = crate::reactor::run(&acceptor, &engine, &stop, &wakeup, max_conns);
        SIGNAL_WAKE_FD.store(-1, Ordering::SeqCst);
        #[cfg(unix)]
        if let Acceptor::Unix(_, path) = &acceptor {
            let _ = std::fs::remove_file(path);
        }
        drop(acceptor);
        // Drain the engine through the Arc: stops the watchdog, gives
        // workers the shutdown grace, then completes any still-pending
        // flight with a typed `shutting_down` error — even when tests
        // hold extra engine Arcs (the old `Arc::try_unwrap` skipped the
        // drain in exactly that case, leaking hung workers).
        engine.shutdown();
        result
    }

    /// Serves until a `shutdown` request, SIGINT/SIGTERM, or a
    /// [`ShutdownHandle`] (portable fallback: thread per connection).
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O errors other than `WouldBlock`.
    #[cfg(not(target_os = "linux"))]
    pub fn run(self) -> std::io::Result<()> {
        use std::sync::atomic::AtomicUsize;

        let mut conn_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let live = Arc::new(AtomicUsize::new(0));
        loop {
            if self.stop.load(Ordering::SeqCst) || signalled() {
                break;
            }
            match self.acceptor.accept() {
                Err(e) => return Err(e),
                Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                Ok(Some(conn)) if live.load(Ordering::SeqCst) >= self.max_conns => {
                    shed_connection(conn);
                }
                Ok(Some(conn)) => {
                    let engine = Arc::clone(&self.engine);
                    let stop = Arc::clone(&self.stop);
                    let live = Arc::clone(&live);
                    live.fetch_add(1, Ordering::SeqCst);
                    conn_handles.push(std::thread::spawn(move || {
                        serve_connection(conn, &engine, &stop);
                        live.fetch_sub(1, Ordering::SeqCst);
                    }));
                    // Reap finished handles so a long-lived daemon does
                    // not accumulate one JoinHandle per past connection.
                    conn_handles.retain(|h| !h.is_finished());
                }
            }
        }
        for h in conn_handles {
            let _ = h.join();
        }
        #[cfg(unix)]
        if let Acceptor::Unix(_, path) = &self.acceptor {
            let _ = std::fs::remove_file(path);
        }
        self.engine.shutdown();
        Ok(())
    }
}

/// Answers an over-limit connection with one `overloaded` line and drops
/// it (fallback path; the reactor has its own copy of this policy).
#[cfg(not(target_os = "linux"))]
fn shed_connection(conn: Conn) {
    let line = admission_reject_line();
    match conn {
        Conn::Tcp(mut s) => {
            let _ = s.set_nodelay(true);
            let _ = s.write_all(line.as_bytes());
        }
        #[cfg(unix)]
        Conn::Unix(mut s) => {
            let _ = s.write_all(line.as_bytes());
        }
    }
}

#[cfg_attr(target_os = "linux", allow(dead_code))]
fn serve_connection(conn: Conn, engine: &Engine, stop: &Arc<AtomicBool>) {
    match conn {
        Conn::Tcp(s) => {
            // One small write per response: without NODELAY, Nagle +
            // delayed ACK turns every round trip into ~40 ms.
            let _ = s.set_nodelay(true);
            let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
            let mut writer = match s.try_clone() {
                Ok(w) => w,
                Err(_) => return,
            };
            serve_stream(BufReader::new(s), &mut writer, engine, stop);
        }
        #[cfg(unix)]
        Conn::Unix(s) => {
            let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
            let mut writer = match s.try_clone() {
                Ok(w) => w,
                Err(_) => return,
            };
            serve_stream(BufReader::new(s), &mut writer, engine, stop);
        }
    }
}

#[cfg_attr(target_os = "linux", allow(dead_code))]
fn serve_stream<R: Read, W: Write>(
    mut reader: BufReader<R>,
    writer: &mut W,
    engine: &Engine,
    stop: &Arc<AtomicBool>,
) {
    let mut line: Vec<u8> = Vec::new();
    loop {
        match read_line_bounded(&mut reader, &mut line, stop) {
            LineRead::Closed => return,
            LineRead::Stopping => return,
            LineRead::Oversized => {
                let body = render_error(
                    codes::OVERSIZED,
                    &format!("request line exceeds {MAX_REQUEST_BYTES} bytes"),
                );
                if write_reply(writer, &body).is_err() {
                    return;
                }
            }
            LineRead::Line => {
                let text = match std::str::from_utf8(&line) {
                    Ok(t) => t.trim(),
                    Err(_) => {
                        let body = render_error(codes::BAD_JSON, "request line is not valid UTF-8");
                        if write_reply(writer, &body).is_err() {
                            return;
                        }
                        continue;
                    }
                };
                if text.is_empty() {
                    continue;
                }
                match engine.handle_line(text) {
                    Outcome::Reply(body) => {
                        if write_reply(writer, &body).is_err() {
                            return;
                        }
                    }
                    Outcome::ReplyAndShutdown(body) => {
                        let _ = write_reply(writer, &body);
                        stop.store(true, Ordering::SeqCst);
                        return;
                    }
                }
            }
        }
    }
}

#[cfg_attr(target_os = "linux", allow(dead_code))]
fn write_reply<W: Write>(w: &mut W, body: &str) -> std::io::Result<()> {
    w.write_all(body.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

#[cfg_attr(target_os = "linux", allow(dead_code))]
enum LineRead {
    /// `line` holds one complete request line (without the newline).
    Line,
    /// The line exceeded the limit; its remainder was discarded.
    Oversized,
    /// The peer closed the connection.
    Closed,
    /// The daemon is stopping.
    Stopping,
}

/// Reads one newline-terminated line into `line`, capped at
/// [`MAX_REQUEST_BYTES`]; past the cap it switches to discarding until
/// the newline so one oversized request costs bounded memory and exactly
/// one error reply. Read timeouts are polls, not failures: they give the
/// stop flag a look-in on idle connections.
#[cfg_attr(target_os = "linux", allow(dead_code))]
fn read_line_bounded<R: Read>(
    reader: &mut BufReader<R>,
    line: &mut Vec<u8>,
    stop: &Arc<AtomicBool>,
) -> LineRead {
    line.clear();
    let mut discarding = false;
    loop {
        if stop.load(Ordering::SeqCst) || signalled() {
            return LineRead::Stopping;
        }
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => return LineRead::Closed,
        };
        if buf.is_empty() {
            return LineRead::Closed; // EOF
        }
        let (chunk, ate_newline) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (buf.len(), false),
        };
        if !discarding {
            let take = chunk - usize::from(ate_newline);
            line.extend_from_slice(&buf[..take]);
            if line.len() > MAX_REQUEST_BYTES {
                discarding = true;
            }
        }
        reader.consume(chunk);
        if ate_newline {
            return if discarding {
                LineRead::Oversized
            } else {
                LineRead::Line
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn quiet_stop() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(false))
    }

    #[test]
    fn bounded_reader_splits_lines() {
        let mut r = BufReader::new(Cursor::new(b"abc\ndef\n".to_vec()));
        let mut line = Vec::new();
        let stop = quiet_stop();
        assert!(matches!(
            read_line_bounded(&mut r, &mut line, &stop),
            LineRead::Line
        ));
        assert_eq!(line, b"abc");
        assert!(matches!(
            read_line_bounded(&mut r, &mut line, &stop),
            LineRead::Line
        ));
        assert_eq!(line, b"def");
        assert!(matches!(
            read_line_bounded(&mut r, &mut line, &stop),
            LineRead::Closed
        ));
    }

    #[test]
    fn bounded_reader_discards_oversized_in_constant_memory() {
        let mut big = vec![b'x'; MAX_REQUEST_BYTES + 4096];
        big.push(b'\n');
        big.extend_from_slice(b"{\"op\":\"ping\"}\n");
        let mut r = BufReader::new(Cursor::new(big));
        let mut line = Vec::new();
        let stop = quiet_stop();
        assert!(matches!(
            read_line_bounded(&mut r, &mut line, &stop),
            LineRead::Oversized
        ));
        assert!(line.len() <= MAX_REQUEST_BYTES + 8192);
        // The connection is still line-synchronized after the discard.
        assert!(matches!(
            read_line_bounded(&mut r, &mut line, &stop),
            LineRead::Line
        ));
        assert_eq!(line, b"{\"op\":\"ping\"}");
    }
}
