//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, always. Every
//! malformed input — bad JSON, wrong field types, unparseable kernel
//! sources, oversized lines — comes back as a typed `{"ok":false,
//! "error":{...}}` object on the same connection; the daemon never
//! panics, never closes the connection on bad input, and never leaves a
//! request unanswered.
//!
//! Response bytes are deterministic: field order is fixed by the
//! renderers below and floats print in shortest round-trip form, so a
//! cached artifact is byte-identical to a fresh compilation of the same
//! request and to the one-shot CLI's `--json` output.

use polyufc::Objective;
use polyufc_cache::AssocMode;
use polyufc_machine::Platform;

use crate::json::{self, Value};

/// Hard cap on one request line. Compile requests carry whole kernel
/// sources, so the limit is generous, but a bound must exist: an
/// unbounded line is an allocation attack on a long-running daemon.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Stable machine-readable error codes of the `error.code` field.
pub mod codes {
    /// The request line was not valid JSON.
    pub const BAD_JSON: &str = "bad_json";
    /// The request was JSON but violated the request schema.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The request's `op` is not one the daemon knows.
    pub const UNKNOWN_OP: &str = "unknown_op";
    /// The request line exceeded [`super::MAX_REQUEST_BYTES`].
    pub const OVERSIZED: &str = "oversized";
    /// The kernel source did not parse (textual IR or cgeist C).
    pub const PARSE_ERROR: &str = "parse_error";
    /// The static verifier rejected the program with errors.
    pub const REJECTED: &str = "rejected";
    /// The cache model could not analyze a kernel.
    pub const MODEL: &str = "model";
    /// Every worker was busy and the queue was full; the request was
    /// shed (backpressure — retry later).
    pub const OVERLOADED: &str = "overloaded";
    /// A compile worker panicked; the daemon recovered and keeps
    /// serving, the request did not.
    pub const INTERNAL: &str = "internal";
    /// The compile exceeded the configured per-request deadline and was
    /// aborted by the watchdog.
    pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";
    /// This kernel's structural fingerprint repeatedly panicked or timed
    /// out and is quarantined; the request was rejected from cache.
    pub const QUARANTINED: &str = "quarantined";
    /// The daemon is shutting down; pending flights were drained with
    /// this error instead of compiling.
    pub const SHUTTING_DOWN: &str = "shutting_down";
}

/// A typed protocol error, rendered as one `{"ok":false,...}` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds an error from a code and message.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }

    /// The one-line JSON response body.
    pub fn render(&self) -> String {
        render_error(self.code, &self.message)
    }
}

/// Renders a typed error response body (no trailing newline).
pub fn render_error(code: &str, message: &str) -> String {
    let mut s = String::with_capacity(64 + message.len());
    s.push_str("{\"ok\":false,\"error\":{\"code\":");
    json::push_escaped(&mut s, code);
    s.push_str(",\"message\":");
    json::push_escaped(&mut s, message);
    s.push_str("}}");
    s
}

/// How the kernel source in a compile request is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceFormat {
    /// The textual affine dialect (`polyufc_ir::textual`).
    TextualIr,
    /// A cgeist-style C scop (`polyufc_cgeist`).
    C,
}

/// Pipeline configuration shared by the daemon and the one-shot CLI.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Target platform.
    pub platform: Platform,
    /// Search objective.
    pub objective: Objective,
    /// POLYUFC-SEARCH ε threshold.
    pub epsilon: f64,
    /// PolyUFC-CM associativity mode.
    pub assoc: AssocMode,
    /// Include the generated scf program text in the artifact.
    pub emit_scf: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            platform: Platform::broadwell(),
            objective: Objective::Edp,
            epsilon: 1e-3,
            assoc: AssocMode::SetAssociative,
            emit_scf: false,
        }
    }
}

/// A validated compile request.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// Source encoding.
    pub format: SourceFormat,
    /// The kernel source text.
    pub source: String,
    /// Program name for C sources (textual IR embeds its own names).
    pub name: String,
    /// Pipeline configuration.
    pub opts: CompileOptions,
}

/// A validated request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Compile a kernel source and return the cap artifact.
    Compile(Box<CompileRequest>),
    /// Return the daemon's structured cache/pool counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Drain and stop the daemon.
    Shutdown,
}

/// The spelled form of an objective, as used on the wire.
pub fn objective_str(o: Objective) -> &'static str {
    match o {
        Objective::Edp => "edp",
        Objective::Energy => "energy",
        Objective::Performance => "perf",
    }
}

/// The spelled form of an associativity mode, as used on the wire.
pub fn assoc_str(a: AssocMode) -> &'static str {
    match a {
        AssocMode::SetAssociative => "set",
        AssocMode::FullyAssociative => "full",
    }
}

/// Parses and validates one request line.
///
/// # Errors
///
/// Returns a [`WireError`] (`bad_json` / `bad_request` / `unknown_op` /
/// `oversized`) describing exactly what was wrong; the caller renders it
/// as the response.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    if line.len() > MAX_REQUEST_BYTES {
        return Err(WireError::new(
            codes::OVERSIZED,
            format!(
                "request line is {} bytes; the limit is {MAX_REQUEST_BYTES}",
                line.len()
            ),
        ));
    }
    let v = json::parse(line).map_err(|e| WireError::new(codes::BAD_JSON, e.to_string()))?;
    let Value::Obj(_) = &v else {
        return Err(WireError::new(
            codes::BAD_REQUEST,
            "request must be a JSON object",
        ));
    };
    let op = req_str(&v, "op")?
        .ok_or_else(|| WireError::new(codes::BAD_REQUEST, "missing required string field `op`"))?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "compile" => parse_compile(&v).map(|c| Request::Compile(Box::new(c))),
        other => Err(WireError::new(
            codes::UNKNOWN_OP,
            format!("unknown op `{other}` (compile|stats|ping|shutdown)"),
        )),
    }
}

fn parse_compile(v: &Value) -> Result<CompileRequest, WireError> {
    let source = req_str(v, "source")?
        .ok_or_else(|| {
            WireError::new(
                codes::BAD_REQUEST,
                "compile requires a string field `source`",
            )
        })?
        .to_string();
    let format = match req_str(v, "format")?.unwrap_or("ir") {
        "ir" | "mlir" => SourceFormat::TextualIr,
        "c" => SourceFormat::C,
        other => {
            return Err(WireError::new(
                codes::BAD_REQUEST,
                format!("unknown format `{other}` (ir|c)"),
            ))
        }
    };
    let name = req_str(v, "name")?.unwrap_or("request").to_string();
    let platform = match req_str(v, "platform")?.unwrap_or("bdw") {
        "bdw" | "BDW" => Platform::broadwell(),
        "rpl" | "RPL" => Platform::raptor_lake(),
        other => {
            return Err(WireError::new(
                codes::BAD_REQUEST,
                format!("unknown platform `{other}` (bdw|rpl)"),
            ))
        }
    };
    let objective = match req_str(v, "objective")?.unwrap_or("edp") {
        "edp" => Objective::Edp,
        "energy" => Objective::Energy,
        "perf" | "performance" => Objective::Performance,
        other => {
            return Err(WireError::new(
                codes::BAD_REQUEST,
                format!("unknown objective `{other}` (edp|energy|perf)"),
            ))
        }
    };
    let epsilon = match v.get("epsilon") {
        None => 1e-3,
        Some(Value::Num(e)) if e.is_finite() && *e > 0.0 => *e,
        Some(_) => {
            return Err(WireError::new(
                codes::BAD_REQUEST,
                "`epsilon` must be a positive finite number",
            ))
        }
    };
    let assoc = match req_str(v, "assoc")?.unwrap_or("set") {
        "set" => AssocMode::SetAssociative,
        "full" => AssocMode::FullyAssociative,
        other => {
            return Err(WireError::new(
                codes::BAD_REQUEST,
                format!("unknown assoc mode `{other}` (set|full)"),
            ))
        }
    };
    let emit_scf = match v.get("emit") {
        None => false,
        Some(Value::Str(s)) if s == "none" => false,
        Some(Value::Str(s)) if s == "scf" => true,
        Some(_) => {
            return Err(WireError::new(
                codes::BAD_REQUEST,
                "`emit` must be \"none\" or \"scf\"",
            ))
        }
    };
    Ok(CompileRequest {
        format,
        source,
        name,
        opts: CompileOptions {
            platform,
            objective,
            epsilon,
            assoc,
            emit_scf,
        },
    })
}

/// Optional string field: `Ok(None)` if absent, error if present with a
/// non-string type.
fn req_str<'a>(v: &'a Value, key: &str) -> Result<Option<&'a str>, WireError> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s)),
        Some(_) => Err(WireError::new(
            codes::BAD_REQUEST,
            format!("field `{key}` must be a string"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_compile() {
        let r = parse_request(r#"{"op":"compile","source":"func @k {\n}\n"}"#).unwrap();
        match r {
            Request::Compile(c) => {
                assert_eq!(c.format, SourceFormat::TextualIr);
                assert_eq!(c.opts.platform.name, "BDW");
                assert_eq!(c.opts.objective, Objective::Edp);
                assert!(!c.opts.emit_scf);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_full_compile() {
        let line = r#"{"op":"compile","format":"c","name":"m","source":"x",
                       "platform":"rpl","objective":"perf","epsilon":0.01,
                       "assoc":"full","emit":"scf"}"#
            .replace('\n', " ");
        match parse_request(&line).unwrap() {
            Request::Compile(c) => {
                assert_eq!(c.format, SourceFormat::C);
                assert_eq!(c.name, "m");
                assert_eq!(c.opts.platform.name, "RPL");
                assert_eq!(c.opts.objective, Objective::Performance);
                assert!((c.opts.epsilon - 0.01).abs() < 1e-12);
                assert_eq!(c.opts.assoc, AssocMode::FullyAssociative);
                assert!(c.opts.emit_scf);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_each_malformation_with_its_code() {
        let cases: &[(&str, &str)] = &[
            ("{", codes::BAD_JSON),
            ("[1,2]", codes::BAD_REQUEST),
            ("{\"op\":42}", codes::BAD_REQUEST),
            ("{\"x\":1}", codes::BAD_REQUEST),
            ("{\"op\":\"frobnicate\"}", codes::UNKNOWN_OP),
            ("{\"op\":\"compile\"}", codes::BAD_REQUEST),
            (
                "{\"op\":\"compile\",\"source\":\"x\",\"format\":\"rust\"}",
                codes::BAD_REQUEST,
            ),
            (
                "{\"op\":\"compile\",\"source\":\"x\",\"platform\":\"m1\"}",
                codes::BAD_REQUEST,
            ),
            (
                "{\"op\":\"compile\",\"source\":\"x\",\"epsilon\":-1}",
                codes::BAD_REQUEST,
            ),
            (
                "{\"op\":\"compile\",\"source\":\"x\",\"epsilon\":\"small\"}",
                codes::BAD_REQUEST,
            ),
            (
                "{\"op\":\"compile\",\"source\":\"x\",\"emit\":\"exe\"}",
                codes::BAD_REQUEST,
            ),
        ];
        for (line, code) in cases {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.code, *code, "{line}");
        }
    }

    #[test]
    fn oversized_lines_are_typed_errors() {
        let big = format!(
            "{{\"op\":\"compile\",\"source\":\"{}\"}}",
            "a".repeat(MAX_REQUEST_BYTES)
        );
        assert_eq!(parse_request(&big).unwrap_err().code, codes::OVERSIZED);
    }

    #[test]
    fn error_render_is_valid_json() {
        let body = render_error(codes::PARSE_ERROR, "line 3: bad \"token\"");
        let v = json::parse(&body).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        let err = v.get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("parse_error"));
    }
}
