//! A small, strict JSON layer for the wire protocol.
//!
//! The workspace's `serde` is an offline no-op stub (marker traits only),
//! so the daemon carries its own parser and emitter. The parser is a
//! plain recursive-descent over the full JSON grammar with a depth limit
//! (malformed requests must come back as typed errors, never stack
//! overflows); the emitter is a set of string-builder helpers that keep
//! response field order — and therefore response bytes — deterministic.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth a request may use. Requests are flat objects;
/// 32 is generous while keeping adversarial `[[[[…]]]]` inputs bounded.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Sorted keys (BTreeMap) make lookups deterministic;
    /// duplicate keys keep the last occurrence, like serde_json.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Field of an object, if this is an object and the field exists.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array content, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Why a JSON document failed to parse (byte offset + message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error (a request line must be exactly one document).
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or nesting beyond the depth
/// limit.
pub fn parse(src: &str) -> Result<Value, JsonError> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        let n: f64 = s.parse().map_err(|_| self.err("bad number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Value::Num(n))
    }
}

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` as a JSON number: shortest round-trip form for finite
/// values, `null` for NaN/inf (JSON has no non-finite numbers; the only
/// producer is an infinite operational intensity on a zero-traffic
/// kernel, where "no number" is the honest answer).
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request_shapes() {
        let v = parse(r#"{"op":"compile","epsilon":1e-3,"n":42,"b":true,"x":null}"#).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("compile"));
        assert_eq!(v.get("epsilon").unwrap().as_f64(), Some(1e-3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(42.0));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("x"), Some(&Value::Null));
    }

    #[test]
    fn escapes_round_trip() {
        let mut out = String::new();
        push_escaped(&mut out, "a\"b\\c\nd\te\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\te\u{1}"));

        let v = parse(r#""\u00e9\uD83D\uDE00""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{]",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "[1,]",
            "tru",
            "\"abc",
            "1 2",
            "{\"a\":1}x",
            "\"\\q\"",
            "\"\\uD800\"",
            "nan",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn fmt_f64_is_json_safe() {
        assert_eq!(fmt_f64(2.0), "2");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }
}
