//! Deterministic, seedable chaos injection for the serving path.
//!
//! The daemon's failure story is only as good as its worst untested
//! timing: a compile that hangs a pool worker, a client socket that
//! dribbles bytes one at a time, a signal storm landing mid-`epoll_wait`.
//! A [`ChaosPlan`] describes one such adversarial environment for
//! `polyufc serve` the same way [`polyufc_machine`]'s `FaultPlan`
//! describes one for the capping runtime — and obeys the same two
//! invariants that make the layer safe to compile in everywhere:
//!
//! * **Off by default.** [`ChaosPlan::pristine`] is the `Default`, every
//!   injection site checks [`ChaosPlan::is_pristine`] first, and the
//!   pristine path is byte-identical to a build without the layer (A/B
//!   checked by the `serve_chaos` harness and a dispatch-identity test).
//! * **Deterministic.** Every chaos decision is a pure function of
//!   `(seed, domain, key, salt)` through FNV-1a folded into SplitMix64 —
//!   the serve crate vendors no rand, so the generator is inlined here;
//!   the construction matches the fault layer's bit-for-bit philosophy.
//!
//! Plans serialize as compact `key=value` spec strings
//! ([`ChaosPlan::parse_spec`] / [`ChaosPlan::spec_string`] round-trip),
//! which is also how the `--chaos` CLI flag takes them.
//!
//! An optional **budget** bounds the total number of injections: tests
//! use `panic=1,budget=2` to get exactly two deterministic panics and
//! then pristine behavior, instead of tuning probabilities.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the worker should do to one compile job before running it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileFault {
    /// Sleep this long, then compile normally (latency injection).
    Slow(Duration),
    /// Sleep this long while *appearing* hung: long enough to trip the
    /// deadline watchdog, bounded so detached workers eventually exit.
    Hang(Duration),
    /// Panic inside the compile (exercises `catch_unwind` containment,
    /// session rebuild, and the quarantine strike path).
    Panic,
}

/// A seeded description of the chaos to inject into the serving path.
///
/// All probabilities are per-event in `[0, 1]`; a field at zero disables
/// that chaos class entirely. The all-zero plan is
/// [`ChaosPlan::pristine`] and injects nothing.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Seed for every chaos decision (mixed with the event key).
    pub seed: u64,
    /// Probability that a compile is delayed before running.
    pub slow_prob: f64,
    /// Delay applied to slow compiles, in milliseconds.
    pub slow_ms: u64,
    /// Probability that a compile hangs its worker.
    pub hang_prob: f64,
    /// How long a hung compile occupies its worker, in milliseconds
    /// (bounded, so a detached worker eventually exits).
    pub hang_ms: u64,
    /// Probability that a compile panics mid-pipeline.
    pub panic_prob: f64,
    /// Probability that one socket read is clamped short.
    pub short_read_prob: f64,
    /// Max bytes a clamped read may return (at least 1).
    pub short_read_cap: usize,
    /// Probability that one socket write is clamped short.
    pub short_write_prob: f64,
    /// Max bytes a clamped write may move (at least 1).
    pub short_write_cap: usize,
    /// Total injections allowed across the plan's lifetime; `0` means
    /// unlimited. Shared across clones, so an engine-wide plan has one
    /// budget no matter how many threads consult it.
    pub budget: u64,
    used: Arc<AtomicU64>,
}

impl PartialEq for ChaosPlan {
    fn eq(&self, other: &Self) -> bool {
        // The budget counter is runtime state, not plan identity.
        self.seed == other.seed
            && self.slow_prob == other.slow_prob
            && self.slow_ms == other.slow_ms
            && self.hang_prob == other.hang_prob
            && self.hang_ms == other.hang_ms
            && self.panic_prob == other.panic_prob
            && self.short_read_prob == other.short_read_prob
            && self.short_read_cap == other.short_read_cap
            && self.short_write_prob == other.short_write_prob
            && self.short_write_cap == other.short_write_cap
            && self.budget == other.budget
    }
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan::pristine()
    }
}

/// SplitMix64: the dependency-free generator behind every chaos stream.
/// One state word, full 2^64 period, excellent dispersion — and stable
/// across Rust releases, unlike `DefaultHasher`.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl ChaosPlan {
    /// The no-chaos plan: every injection site becomes a no-op and the
    /// daemon behaves byte-identically to a build without the layer.
    pub fn pristine() -> Self {
        ChaosPlan {
            seed: 0,
            slow_prob: 0.0,
            slow_ms: 0,
            hang_prob: 0.0,
            hang_ms: 0,
            panic_prob: 0.0,
            short_read_prob: 0.0,
            short_read_cap: 0,
            short_write_prob: 0.0,
            short_write_cap: 0,
            budget: 0,
            used: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Latency injection: compiles randomly pause before running.
    pub fn slow_compiles(seed: u64, prob: f64, ms: u64) -> Self {
        ChaosPlan {
            seed,
            slow_prob: prob,
            slow_ms: ms,
            ..ChaosPlan::pristine()
        }
    }

    /// Hung compiles: a worker sits on one job long enough to trip the
    /// deadline watchdog (and get itself detached and replaced).
    pub fn hung_compiles(seed: u64, prob: f64, ms: u64) -> Self {
        ChaosPlan {
            seed,
            hang_prob: prob,
            hang_ms: ms,
            ..ChaosPlan::pristine()
        }
    }

    /// Panicking compiles: exercises containment, session rebuild, and
    /// the quarantine circuit breaker.
    pub fn panicking_compiles(seed: u64, prob: f64) -> Self {
        ChaosPlan {
            seed,
            panic_prob: prob,
            ..ChaosPlan::pristine()
        }
    }

    /// Socket-level chaos: short reads and short writes force the
    /// reactor's partial-I/O state machines through every resume path.
    pub fn socket_faults(seed: u64, prob: f64) -> Self {
        ChaosPlan {
            seed,
            short_read_prob: prob,
            short_read_cap: 7,
            short_write_prob: prob,
            short_write_cap: 33,
            ..ChaosPlan::pristine()
        }
    }

    /// The documented "standard chaos matrix" the `serve_chaos` harness
    /// and the CI `serve-chaos` job run: a mild mix of every class at
    /// once.
    pub fn standard_matrix(seed: u64) -> Self {
        ChaosPlan {
            seed,
            slow_prob: 0.10,
            slow_ms: 5,
            hang_prob: 0.03,
            hang_ms: 800,
            panic_prob: 0.03,
            short_read_prob: 0.20,
            short_read_cap: 7,
            short_write_prob: 0.20,
            short_write_cap: 33,
            ..ChaosPlan::pristine()
        }
    }

    /// Whether this plan injects nothing (the fast-path check at every
    /// injection site).
    pub fn is_pristine(&self) -> bool {
        self.slow_prob == 0.0
            && self.hang_prob == 0.0
            && self.panic_prob == 0.0
            && self.short_read_prob == 0.0
            && self.short_write_prob == 0.0
    }

    /// A deterministic stream for one chaos event, keyed by `(seed,
    /// domain, key, salt)`: FNV-1a folds the key material, SplitMix64
    /// generates from the fold.
    fn stream(&self, domain: &str, key: &[u8], salt: u64) -> SplitMix64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in self.seed.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        for b in domain.bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        for &b in key {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        for b in salt.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        SplitMix64(h)
    }

    /// Bernoulli draw for one event.
    fn chance(&self, p: f64, domain: &str, key: &[u8], salt: u64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.stream(domain, key, salt).next_f64() < p
    }

    /// Consumes one budget unit; `false` when the budget is exhausted
    /// (the plan then behaves pristine for that event). Unbounded plans
    /// (budget 0) always succeed but still count the injection.
    fn charge(&self) -> bool {
        if self.budget == 0 {
            self.used.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            if cur >= self.budget {
                return false;
            }
            match self.used.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total injections this plan has granted so far (shared across
    /// clones, counted whether or not a budget bounds them).
    pub fn injections_charged(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// The fault (if any) to apply to one compile, keyed by the
    /// request's structural fingerprint and a per-fingerprint attempt
    /// counter — retry N of the same kernel draws independently from
    /// retry N+1, so a hang on the first attempt does not doom every
    /// retry.
    pub fn compile_fault(&self, fingerprint: &[u8], attempt: u64) -> Option<CompileFault> {
        if self.is_pristine() {
            return None;
        }
        if self.chance(self.panic_prob, "compile-panic", fingerprint, attempt) && self.charge() {
            return Some(CompileFault::Panic);
        }
        if self.chance(self.hang_prob, "compile-hang", fingerprint, attempt) && self.charge() {
            return Some(CompileFault::Hang(Duration::from_millis(
                self.hang_ms.max(1),
            )));
        }
        if self.chance(self.slow_prob, "compile-slow", fingerprint, attempt) && self.charge() {
            return Some(CompileFault::Slow(Duration::from_millis(
                self.slow_ms.max(1),
            )));
        }
        None
    }

    /// Byte cap (if any) for one socket read, keyed by connection id and
    /// a per-connection I/O counter. Always at least 1 — a zero-byte
    /// read would be indistinguishable from EOF.
    pub fn read_clamp(&self, conn: u64, io_seq: u64) -> Option<usize> {
        if self.short_read_prob == 0.0 {
            return None;
        }
        let key = conn.to_le_bytes();
        if !self.chance(self.short_read_prob, "short-read", &key, io_seq) || !self.charge() {
            return None;
        }
        let cap = self.short_read_cap.max(1) as u64;
        Some((1 + self.stream("short-read-len", &key, io_seq).next() % cap) as usize)
    }

    /// Byte cap (if any) for one socket write, keyed like
    /// [`ChaosPlan::read_clamp`]. Always at least 1 — a zero-byte write
    /// reads back as `WriteZero` and would kill the connection.
    pub fn write_clamp(&self, conn: u64, io_seq: u64) -> Option<usize> {
        if self.short_write_prob == 0.0 {
            return None;
        }
        let key = conn.to_le_bytes();
        if !self.chance(self.short_write_prob, "short-write", &key, io_seq) || !self.charge() {
            return None;
        }
        let cap = self.short_write_cap.max(1) as u64;
        Some((1 + self.stream("short-write-len", &key, io_seq).next() % cap) as usize)
    }

    /// Serializes the plan as a canonical spec string that
    /// [`ChaosPlan::parse_spec`] round-trips.
    pub fn spec_string(&self) -> String {
        if self.is_pristine() && self.budget == 0 {
            return "pristine".to_string();
        }
        format!(
            "seed={},slow={},slow-ms={},hang={},hang-ms={},panic={},short-read={},\
             short-read-cap={},short-write={},short-write-cap={},budget={}",
            self.seed,
            self.slow_prob,
            self.slow_ms,
            self.hang_prob,
            self.hang_ms,
            self.panic_prob,
            self.short_read_prob,
            self.short_read_cap,
            self.short_write_prob,
            self.short_write_cap,
            self.budget
        )
    }

    /// Parses a chaos spec: a preset name (`pristine`/`none`/`off`,
    /// `slow`, `hung`, `panic`, `socket`, `standard`) and/or
    /// comma-separated `key=value` overrides, e.g. `standard,seed=7` or
    /// `hang=1,hang-ms=500,budget=1`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unknown key or malformed
    /// value.
    pub fn parse_spec(spec: &str) -> Result<ChaosPlan, String> {
        let mut plan = ChaosPlan::pristine();
        for (i, tok) in spec.split(',').enumerate() {
            let tok = tok.trim();
            if tok.is_empty() {
                continue;
            }
            if let Some((k, v)) = tok.split_once('=') {
                let k = k.trim();
                let v = v.trim();
                let f = |v: &str| -> Result<f64, String> {
                    v.parse::<f64>()
                        .map_err(|_| format!("chaos: bad number '{v}' for '{k}'"))
                };
                let u = |v: &str| -> Result<u64, String> {
                    v.parse::<u64>()
                        .map_err(|_| format!("chaos: bad integer '{v}' for '{k}'"))
                };
                match k {
                    "seed" => plan.seed = u(v)?,
                    "slow" => plan.slow_prob = f(v)?,
                    "slow-ms" => plan.slow_ms = u(v)?,
                    "hang" => plan.hang_prob = f(v)?,
                    "hang-ms" => plan.hang_ms = u(v)?,
                    "panic" => plan.panic_prob = f(v)?,
                    "short-read" => plan.short_read_prob = f(v)?,
                    "short-read-cap" => plan.short_read_cap = u(v)? as usize,
                    "short-write" => plan.short_write_prob = f(v)?,
                    "short-write-cap" => plan.short_write_cap = u(v)? as usize,
                    "budget" => plan.budget = u(v)?,
                    _ => return Err(format!("chaos: unknown key '{k}'")),
                }
            } else {
                // Preset name; only meaningful as the leading token so
                // overrides compose on top of it.
                let preset = match tok {
                    "pristine" | "none" | "off" => ChaosPlan::pristine(),
                    "slow" => ChaosPlan::slow_compiles(42, 0.3, 10),
                    "hung" => ChaosPlan::hung_compiles(42, 0.08, 800),
                    "panic" => ChaosPlan::panicking_compiles(42, 0.08),
                    "socket" => ChaosPlan::socket_faults(42, 0.4),
                    "standard" => ChaosPlan::standard_matrix(42),
                    _ => return Err(format!("chaos: unknown preset '{tok}'")),
                };
                if i != 0 {
                    return Err(format!("chaos: preset '{tok}' must be the first token"));
                }
                plan = preset;
            }
        }
        for p in [
            plan.slow_prob,
            plan.hang_prob,
            plan.panic_prob,
            plan.short_read_prob,
            plan.short_write_prob,
        ] {
            if !p.is_finite() || p < 0.0 {
                return Err(format!("chaos: negative or non-finite rate {p}"));
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_is_default_and_injects_nothing() {
        let p = ChaosPlan::default();
        assert!(p.is_pristine());
        assert_eq!(p.compile_fault(b"k", 0), None);
        assert_eq!(p.read_clamp(1, 0), None);
        assert_eq!(p.write_clamp(1, 0), None);
        assert_eq!(p.spec_string(), "pristine");
    }

    #[test]
    fn events_are_deterministic_per_key() {
        let p = ChaosPlan::standard_matrix(7);
        let a = p.compile_fault(b"gemm", 3);
        assert_eq!(a, p.compile_fault(b"gemm", 3));
        let clamp = p.read_clamp(9, 2);
        assert_eq!(clamp, p.read_clamp(9, 2));
        // Across 64 attempts at 3% hang + 3% panic + 10% slow, some draw
        // must trip and some must not — and a different seed must not
        // reproduce the same trip pattern.
        let trips = |plan: &ChaosPlan| -> Vec<bool> {
            (0..64)
                .map(|s| plan.compile_fault(b"gemm", s).is_some())
                .collect()
        };
        let t7 = trips(&p);
        assert!(t7.iter().any(|&b| b) && t7.iter().any(|&b| !b));
        assert_ne!(t7, trips(&ChaosPlan::standard_matrix(8)));
    }

    #[test]
    fn certain_faults_fire_and_clamps_stay_positive() {
        let p = ChaosPlan::hung_compiles(1, 1.0, 250);
        assert_eq!(
            p.compile_fault(b"k", 0),
            Some(CompileFault::Hang(Duration::from_millis(250)))
        );
        let s = ChaosPlan::socket_faults(1, 1.0);
        for io in 0..32 {
            let r = s.read_clamp(5, io).expect("certain clamp");
            assert!((1..=7).contains(&r));
            let w = s.write_clamp(5, io).expect("certain clamp");
            assert!((1..=33).contains(&w));
        }
    }

    #[test]
    fn budget_bounds_total_injections_then_goes_pristine() {
        let p = ChaosPlan::parse_spec("panic=1,budget=2").unwrap();
        assert_eq!(p.compile_fault(b"a", 0), Some(CompileFault::Panic));
        assert_eq!(p.compile_fault(b"a", 1), Some(CompileFault::Panic));
        assert_eq!(p.compile_fault(b"a", 2), None, "budget exhausted");
        assert_eq!(p.injections_charged(), 2);
        // Clones share the budget: an engine-wide plan has one pool.
        assert_eq!(p.clone().compile_fault(b"b", 0), None);
    }

    #[test]
    fn spec_round_trips() {
        let p = ChaosPlan::standard_matrix(9);
        assert_eq!(ChaosPlan::parse_spec(&p.spec_string()).unwrap(), p);
        assert_eq!(
            ChaosPlan::parse_spec("pristine").unwrap(),
            ChaosPlan::pristine()
        );
        assert_eq!(
            ChaosPlan::parse_spec("standard,seed=7").unwrap(),
            ChaosPlan::standard_matrix(7)
        );
        assert!(ChaosPlan::parse_spec("bogus").is_err());
        assert!(ChaosPlan::parse_spec("hang=abc").is_err());
        assert!(ChaosPlan::parse_spec("seed=1,standard").is_err());
        assert!(ChaosPlan::parse_spec("slow=-0.5").is_err());
    }
}
