//! The epoll event loop: one thread, every connection, no sleeps.
//!
//! The previous daemon accepted with a 10 ms sleep-poll and spawned one
//! thread per connection, each blocking on a 200 ms-timeout read — fine
//! for a handful of interactive clients, hostile to tail latency (up to
//! 10 ms of queueing before `accept`) and to fan-in (N clients = N
//! stacks, N schedulers' worth of wakeups). This module replaces all of
//! it with a single level-triggered epoll loop built on raw FFI (the
//! workspace vendors no libc crate; the `signal(2)` shim in
//! [`crate::server`] set the precedent):
//!
//! * **Nonblocking everything.** The listener, every connection, and the
//!   doorbell eventfd are registered with one epoll instance; the loop
//!   parks in `epoll_wait` and does work only when the kernel has some.
//! * **Pipelining with in-order replies.** A client may write many NDJSON
//!   requests without reading. Each connection keeps a FIFO of response
//!   *slots*; a request claims the next slot at parse time, fast-path
//!   responses fill it immediately, and compiles fill it from a worker
//!   via the completion queue + doorbell. Writes flush the longest
//!   ready prefix of the FIFO — replies leave in request order no matter
//!   what order compiles finish.
//! * **Zero-copy bodies.** Responses are `Arc<[u8]>` shared with the
//!   artifact cache; a flush gathers up to [`MAX_IOVECS`] bodies and
//!   their newlines into one `writev(2)` (via `write_vectored`).
//! * **Bounded everything.** Connections are capped at accept
//!   ([`crate::server::Server::set_max_conns`]); per-connection input is
//!   capped by the oversized-line resync (constant memory, one typed
//!   error, stream stays line-synchronized); pipelining depth is capped
//!   at [`MAX_PIPELINE`] — past it the reactor simply stops reading that
//!   socket and lets TCP flow control push back.
//!
//! Shutdown (signal, `shutdown` op, or [`crate::server::ShutdownHandle`])
//! flips the loop into drain mode: stop accepting, stop reading, keep
//! the loop alive until every claimed slot is filled and flushed or the
//! drain deadline passes, then tear down.

use polyufc_chk::OrderedMutex;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::sync::atomic::AtomicBool;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::artifact::Body;
use crate::engine::{Engine, Submitted};
use crate::protocol::{codes, render_error, MAX_REQUEST_BYTES};
use crate::server::{admission_reject_line, signalled, Acceptor, Conn};

// epoll / eventfd FFI. Constants are from the Linux UAPI headers and are
// identical across architectures; the event struct is packed on x86_64
// only (a kernel ABI quirk inherited from the 32-bit days).
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EFD_NONBLOCK: i32 = 0o4000;

#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut core::ffi::c_void, count: usize) -> isize;
    fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// The reactor's doorbell: a nonblocking eventfd counter. Workers ring it
/// after each completed compile, [`crate::server::ShutdownHandle`] rings
/// it on stop, and the signal handler rings it from async context — all
/// collapse into one `EPOLLIN` on the event loop.
pub(crate) struct WakeupFd {
    fd: i32,
}

impl WakeupFd {
    pub(crate) fn new() -> std::io::Result<WakeupFd> {
        let fd = unsafe { eventfd(0, EFD_NONBLOCK) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(WakeupFd { fd })
    }

    pub(crate) fn fd(&self) -> i32 {
        self.fd
    }

    /// Adds 1 to the counter; wakes an `epoll_wait` parked on this fd.
    /// Safe to call from any thread, any number of times; rings coalesce.
    /// Restarts on EINTR: a signal storm must not eat a doorbell ring —
    /// a worker completion whose ring vanished would strand its reply
    /// until the next unrelated wakeup.
    pub(crate) fn ring(&self) {
        let one: u64 = 1;
        loop {
            let n = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
            if n >= 0 || std::io::Error::last_os_error().kind() != ErrorKind::Interrupted {
                return;
            }
        }
    }

    /// Resets the counter so level-triggered epoll stops reporting it.
    /// Restarts on EINTR — a failed drain would leave the eventfd
    /// permanently readable and turn the loop into a spin.
    fn drain(&self) {
        let mut count: u64 = 0;
        loop {
            let n = unsafe { read(self.fd, (&mut count as *mut u64).cast(), 8) };
            if n >= 0 || std::io::Error::last_os_error().kind() != ErrorKind::Interrupted {
                return;
            }
        }
    }
}

impl Drop for WakeupFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

// An i32 fd is freely shareable; the syscalls above are thread-safe.
unsafe impl Send for WakeupFd {}
unsafe impl Sync for WakeupFd {}

/// Epoll token of the listener.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Epoll token of the doorbell.
const TOKEN_WAKEUP: u64 = u64::MAX - 1;

/// Max responses awaiting completion or flush per connection before the
/// reactor stops reading that socket (TCP flow control backpressures the
/// client). Re-reading resumes below half of this.
const MAX_PIPELINE: usize = 256;
/// Max gathered (body, newline) pairs per `writev`.
const MAX_IOVECS: usize = 64;
/// How long drain mode waits for claimed slots to fill and flush.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// A finished compile headed for connection `0`'s slot `1`.
type Completion = (u64, u64, Body);

struct Connection {
    sock: Conn,
    /// Bytes received but not yet parsed into a line.
    rbuf: Vec<u8>,
    /// Inside an oversized line: drop bytes until the next newline.
    discarding: bool,
    /// Response FIFO in request order; `None` = claimed by an in-flight
    /// compile. `slots[i]` answers request `base_seq + i`.
    slots: VecDeque<Option<Body>>,
    /// Sequence number of `slots[0]`.
    base_seq: u64,
    /// Sequence number the next parsed request will claim.
    next_seq: u64,
    /// Bytes of `slots[0]` + its newline already written.
    written: usize,
    /// Event mask currently registered with epoll.
    interest: u32,
    /// Pipelining cap reached: not reading until the FIFO drains.
    paused: bool,
    /// Read side saw EOF/RDHUP; close once the FIFO flushes.
    peer_closed: bool,
    /// Unrecoverable socket error; close now, drop pending slots.
    dead: bool,
    /// Per-connection I/O sequence number, bumped per syscall *only when
    /// a chaos plan is active* — the pristine path never touches it, so
    /// pristine dispatch stays instruction-identical.
    io_salt: u64,
}

impl Connection {
    fn new(sock: Conn) -> Connection {
        Connection {
            sock,
            rbuf: Vec::new(),
            discarding: false,
            slots: VecDeque::new(),
            base_seq: 0,
            next_seq: 0,
            written: 0,
            interest: EPOLLIN | EPOLLRDHUP,
            paused: false,
            peer_closed: false,
            dead: false,
            io_salt: 0,
        }
    }

    fn slot_ready(&mut self, body: Body) {
        self.next_seq += 1;
        self.slots.push_back(Some(body));
    }

    fn claim_slot(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.push_back(None);
        seq
    }

    fn fill_slot(&mut self, seq: u64, body: Body) {
        if let Some(idx) = seq.checked_sub(self.base_seq) {
            if let Some(slot) = self.slots.get_mut(idx as usize) {
                *slot = Some(body);
            }
        }
    }

    /// Whether every claimed slot has been answered and written.
    fn flushed(&self) -> bool {
        self.slots.is_empty()
    }

    fn should_close(&self) -> bool {
        self.dead || (self.peer_closed && self.flushed())
    }
}

fn epoll_add(epfd: i32, fd: i32, events: u32, token: u64) -> std::io::Result<()> {
    let mut ev = EpollEvent {
        events,
        data: token,
    };
    if unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &mut ev) } < 0 {
        return Err(std::io::Error::last_os_error());
    }
    Ok(())
}

fn epoll_mod(epfd: i32, fd: i32, events: u32, token: u64) {
    let mut ev = EpollEvent {
        events,
        data: token,
    };
    unsafe { epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &mut ev) };
}

fn epoll_del(epfd: i32, fd: i32) {
    let mut ev = EpollEvent { events: 0, data: 0 };
    unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &mut ev) };
}

/// Closes the epoll fd even on early error returns.
struct EpollGuard(i32);

impl Drop for EpollGuard {
    fn drop(&mut self) {
        unsafe { close(self.0) };
    }
}

/// Runs the event loop until shutdown; returns after drain.
// chk:reactor-thread
pub(crate) fn run(
    acceptor: &Acceptor,
    engine: &Arc<Engine>,
    stop: &Arc<AtomicBool>,
    wakeup: &Arc<WakeupFd>,
    max_conns: usize,
) -> std::io::Result<()> {
    let epfd = unsafe { epoll_create1(0) };
    if epfd < 0 {
        return Err(std::io::Error::last_os_error());
    }
    let _guard = EpollGuard(epfd);
    epoll_add(epfd, acceptor.raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
    epoll_add(epfd, wakeup.fd(), EPOLLIN, TOKEN_WAKEUP)?;

    let completions: Arc<OrderedMutex<Vec<Completion>>> =
        Arc::new(OrderedMutex::new("serve.reactor.completions", Vec::new()));
    let mut conns: HashMap<u64, Connection> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut stopping = false;
    let mut drain_deadline: Option<Instant> = None;
    let mut events = [EpollEvent { events: 0, data: 0 }; 128];

    loop {
        if !stopping && (stop.load(Ordering::SeqCst) || signalled()) {
            stopping = true;
        }
        if stopping && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + DRAIN_DEADLINE);
            epoll_del(epfd, acceptor.raw_fd());
        }
        if stopping {
            let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if expired || conns.values().all(Connection::flushed) {
                break;
            }
        }

        let timeout_ms = if stopping { 50 } else { 500 };
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if n < 0 {
            let e = std::io::Error::last_os_error();
            if e.kind() == ErrorKind::Interrupted {
                continue;
            }
            return Err(e);
        }

        let mut touched: Vec<u64> = Vec::new();
        for ev in &events[..n as usize] {
            // Copy out of the (possibly packed) struct before use.
            let token = ev.data;
            let mask = ev.events;
            match token {
                TOKEN_WAKEUP => wakeup.drain(),
                TOKEN_LISTENER => {
                    if !stopping {
                        accept_all(epfd, acceptor, &mut conns, &mut next_id, max_conns)?;
                    }
                }
                id => {
                    let Some(conn) = conns.get_mut(&id) else {
                        continue;
                    };
                    if mask & EPOLLERR != 0 {
                        conn.dead = true;
                    }
                    if mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0
                        && !conn.dead
                        && !conn.paused
                        && !stopping
                    {
                        stopping |= ingest(conn, id, engine, &completions, wakeup);
                    } else if mask & EPOLLHUP != 0 {
                        conn.peer_closed = true;
                    }
                    touched.push(id);
                }
            }
        }

        // Worker completions (and inline shed aborts from this very
        // iteration) fill their slots now; their connections then flush
        // alongside the ones with socket events.
        for (id, seq, body) in drain_completions(&completions) {
            if let Some(conn) = conns.get_mut(&id) {
                conn.fill_slot(seq, body);
                touched.push(id);
            }
        }

        touched.sort_unstable();
        touched.dedup();
        for id in touched {
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            // Flush, and resume a paused connection once its FIFO drains
            // below the low-water mark — repeatedly, because a resume can
            // refill to the cap and the next flush can drain it right
            // back down. Stopping anywhere in between would strand a
            // paused connection with no registered interest and no
            // future event. The loop ends when the socket runs dry
            // (`WouldBlock` leaves `paused` false) or the FIFO stays
            // above the mark (EPOLLOUT is registered and drives the next
            // round).
            loop {
                if !conn.dead {
                    if let Err(_e) = flush(conn, id, engine) {
                        conn.dead = true;
                    }
                }
                let resume =
                    conn.paused && !conn.dead && !stopping && conn.slots.len() <= MAX_PIPELINE / 2;
                if !resume {
                    break;
                }
                // Resume reading, starting with any bytes already
                // buffered (epoll will not re-announce those).
                conn.paused = false;
                stopping |= ingest(conn, id, engine, &completions, wakeup);
            }
            if conn.should_close() {
                let fd = conn.sock.raw_fd();
                epoll_del(epfd, fd);
                conns.remove(&id);
            } else {
                update_interest(epfd, conn, id);
            }
        }
    }

    // Teardown: close every socket; pending compiles finish inside the
    // pool during Engine::shutdown, their completions going nowhere.
    for (_, conn) in conns.drain() {
        epoll_del(epfd, conn.sock.raw_fd());
    }
    Ok(())
}

/// Accepts until `WouldBlock`; connections past `max_conns` get one typed
/// `overloaded` line and an immediate close.
fn accept_all(
    epfd: i32,
    acceptor: &Acceptor,
    conns: &mut HashMap<u64, Connection>,
    next_id: &mut u64,
    max_conns: usize,
) -> std::io::Result<()> {
    while let Some(sock) = acceptor.accept()? {
        if conns.len() >= max_conns {
            let mut sock = sock;
            let _ = sock.prepare_nonblocking();
            // Best effort: ~100 bytes into a fresh socket buffer will not
            // block; if it somehow does, the close alone signals shed.
            let _ = sock.write(admission_reject_line().as_bytes());
            continue;
        }
        if sock.prepare_nonblocking().is_err() {
            continue;
        }
        let id = *next_id;
        // Skip the reserved tokens on wraparound (a daemon would need
        // ~2^64 connections to get here, but the check is free).
        *next_id = next_id.wrapping_add(1);
        if *next_id >= TOKEN_WAKEUP {
            *next_id = 0;
        }
        let conn = Connection::new(sock);
        if epoll_add(epfd, conn.sock.raw_fd(), conn.interest, id).is_ok() {
            conns.insert(id, conn);
        }
    }
    Ok(())
}

/// Reads and parses everything available on one socket, claiming a slot
/// per request and submitting compiles. Returns `true` when a `shutdown`
/// request asks the daemon to drain and stop.
fn ingest(
    conn: &mut Connection,
    id: u64,
    engine: &Arc<Engine>,
    completions: &Arc<OrderedMutex<Vec<Completion>>>,
    wakeup: &Arc<WakeupFd>,
) -> bool {
    let mut buf = [0u8; 16384];
    let mut wants_shutdown = false;
    loop {
        // Parse every complete line currently buffered.
        while let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = conn.rbuf.drain(..=pos).collect();
            if conn.discarding {
                // The tail of an oversized line: its error reply was
                // slotted when the cap tripped; the stream is now
                // line-synchronized again.
                conn.discarding = false;
                continue;
            }
            let text = match std::str::from_utf8(&line[..line.len() - 1]) {
                Ok(t) => t.trim(),
                Err(_) => {
                    let body = render_error(codes::BAD_JSON, "request line is not valid UTF-8");
                    conn.slot_ready(Arc::from(body.into_bytes().into_boxed_slice()));
                    continue;
                }
            };
            if text.is_empty() {
                continue;
            }
            let seq = conn.claim_slot();
            let notify = {
                let completions = Arc::clone(completions);
                let wakeup = Arc::clone(wakeup);
                move |body: Body| {
                    completions.lock().unwrap().push((id, seq, body));
                    wakeup.ring();
                }
            };
            match engine.submit(text, notify) {
                Submitted::Ready(body) => conn.fill_slot(seq, body),
                Submitted::ReadyShutdown(body) => {
                    conn.fill_slot(seq, body);
                    wants_shutdown = true;
                    return wants_shutdown;
                }
                Submitted::Pending => {}
            }
            if conn.slots.len() >= MAX_PIPELINE {
                conn.paused = true;
                return wants_shutdown;
            }
        }
        // A partial line past the cap: answer once, then discard to the
        // next newline in constant memory.
        if !conn.discarding && conn.rbuf.len() > MAX_REQUEST_BYTES {
            conn.discarding = true;
            conn.rbuf.clear();
            let body = render_error(
                codes::OVERSIZED,
                &format!("request line exceeds {MAX_REQUEST_BYTES} bytes"),
            );
            conn.slot_ready(Arc::from(body.into_bytes().into_boxed_slice()));
        }
        if conn.discarding {
            conn.rbuf.clear();
        }
        // Chaos: clamp this read short (≥1 byte — zero would read as
        // EOF), forcing the line accumulator through arbitrary split
        // points. Pristine plans skip the draw entirely.
        let cap = if engine.chaos().is_pristine() {
            buf.len()
        } else {
            let salt = conn.io_salt;
            conn.io_salt += 1;
            match engine.chaos().read_clamp(id, salt) {
                Some(k) => {
                    engine.count_chaos_injection();
                    k.clamp(1, buf.len())
                }
                None => buf.len(),
            }
        };
        match conn.sock.read(&mut buf[..cap]) {
            Ok(0) => {
                conn.peer_closed = true;
                return wants_shutdown;
            }
            Ok(n) => conn.rbuf.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => return wants_shutdown,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return wants_shutdown;
            }
        }
    }
}

/// Writes the longest ready prefix of the response FIFO, gathering up to
/// [`MAX_IOVECS`] bodies per `writev`.
///
/// # Errors
///
/// Any socket error other than `WouldBlock` (the connection should be
/// closed).
fn flush(conn: &mut Connection, id: u64, engine: &Arc<Engine>) -> std::io::Result<()> {
    const NEWLINE: &[u8] = b"\n";
    loop {
        let mut iovecs: Vec<IoSlice<'_>> = Vec::new();
        for slot in conn.slots.iter().take(MAX_IOVECS) {
            match slot {
                Some(body) => {
                    let skip = if iovecs.is_empty() { conn.written } else { 0 };
                    if skip <= body.len() {
                        iovecs.push(IoSlice::new(&body[skip..]));
                        iovecs.push(IoSlice::new(NEWLINE));
                    } else {
                        // Mid-newline: only the terminator remains.
                        iovecs.push(IoSlice::new(NEWLINE));
                    }
                }
                None => break,
            }
        }
        if iovecs.is_empty() {
            return Ok(());
        }
        // Chaos: clamp this write short (≥1 byte — a zero-byte write is
        // `WriteZero` and would kill the connection), driving the
        // partial-write accounting below through every resume path. The
        // clamped write moves a prefix of the logical stream, so the
        // accounting loop needs no special casing.
        let clamp = if engine.chaos().is_pristine() {
            None
        } else {
            let salt = conn.io_salt;
            conn.io_salt += 1;
            engine.chaos().write_clamp(id, salt)
        };
        let wrote = match clamp {
            Some(k) => {
                engine.count_chaos_injection();
                let first = iovecs
                    .iter()
                    .find(|s| !s.is_empty())
                    .expect("nonempty iovec: every entry pairs with a newline");
                let k = k.clamp(1, first.len());
                conn.sock.write(&first[..k])
            }
            None => conn.sock.write_vectored(&iovecs),
        };
        match wrote {
            Ok(0) => return Err(std::io::Error::from(ErrorKind::WriteZero)),
            Ok(mut n) => {
                while n > 0 {
                    let front_len = match conn.slots.front() {
                        Some(Some(body)) => body.len() + 1,
                        _ => break,
                    };
                    let remaining = front_len - conn.written;
                    if n >= remaining {
                        n -= remaining;
                        conn.slots.pop_front();
                        conn.base_seq += 1;
                        conn.written = 0;
                    } else {
                        conn.written += n;
                        n = 0;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Re-registers the connection's epoll mask when it changed: `EPOLLOUT`
/// only while a flush is blocked, `EPOLLIN` only while not paused.
fn update_interest(epfd: i32, conn: &mut Connection, id: u64) {
    let mut want = EPOLLRDHUP;
    if !conn.paused && !conn.peer_closed {
        want |= EPOLLIN;
    }
    if matches!(conn.slots.front(), Some(Some(_))) {
        want |= EPOLLOUT;
    }
    if want != conn.interest {
        conn.interest = want;
        epoll_mod(epfd, conn.sock.raw_fd(), want, id);
    }
}

fn drain_completions(completions: &Arc<OrderedMutex<Vec<Completion>>>) -> Vec<Completion> {
    std::mem::take(&mut *completions.lock().unwrap())
}
