//! The sharded content-addressed artifact cache.
//!
//! Keys are byte-exact structural fingerprints (built by the engine from
//! [`polyufc_machine::program_fingerprint`] plus the request's pipeline
//! configuration and the response-visible names); values are fully
//! rendered response bodies as [`Body`] (`Arc<[u8]>`). Caching the
//! *bytes* rather than a parsed artifact makes the hot path a single map
//! probe + `Arc` clone, and makes byte-identity between hits, fresh
//! compilations, and the one-shot CLI a structural property instead of a
//! test hope.
//!
//! **Sharding:** PR 7 guarded the whole cache with one `Mutex`, so cache
//! *hits* — the common case — serialized on one lock. Keys now hash
//! (FNV-1a) onto `next_pow2(workers * 4)` shards, each with its own
//! `Mutex` and its own single-flight [`Flight`] slots; hits never cross
//! shards, and the hit/miss/eviction counters are `AtomicU64`s bumped
//! outside any lock.
//!
//! **Exact-line tier:** the keyed tier still costs a parse + sanitize +
//! fingerprint (~35 µs) before the probe. Repeated requests are usually
//! *byte-identical* lines, so each shard also maps raw request lines to
//! bodies; a line hit skips request preparation entirely (~1 µs). Line
//! hits count as cache hits — both tiers serve the same deterministic
//! bytes, by construction.
//!
//! **Bounding:** eviction is generational per shard and per tier — when
//! a shard's ready-entry count reaches its share of the capacity, the
//! next insert clears that shard's ready entries (one `evictions` tick)
//! while in-flight leaders are retained, since dropping a pending flight
//! would strand its followers.

use polyufc_chk::OrderedMutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::artifact::{Abort, ArtifactCacheStats, Body, Flight, Lookup};

/// FNV-1a, the workspace-standard dependency-free hash; shard choice
/// only needs dispersion, not DoS resistance (keys are fingerprints the
/// server computed itself, not attacker-chosen bytes).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug)]
enum Slot {
    Ready(Body),
    Pending(Arc<Flight>),
}

#[derive(Debug, Default)]
struct ShardInner {
    /// Keyed artifact tier: fingerprint key → ready body or in-flight
    /// compile.
    map: HashMap<Vec<u8>, Slot>,
    /// Ready entries in `map` (pending ones are `map.len() - ready`).
    ready: usize,
    /// Exact-line response tier: trimmed request line → body.
    lines: HashMap<Box<str>, Body>,
    /// Consecutive-failure strike counts per structural fingerprint
    /// (cleared on the fingerprint's next success).
    strikes: HashMap<Vec<u8>, u32>,
    /// Poison-pill tier: fingerprints that struck out, mapped to the
    /// cached typed rejection their requests get without compiling.
    quarantined: HashMap<Vec<u8>, Body>,
}

/// Bounded, sharded, content-addressed response cache with single-flight
/// dedup and an exact-line fast tier.
#[derive(Debug)]
pub struct ArtifactCache {
    shards: Box<[OrderedMutex<ShardInner>]>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
    /// Ready-entry capacity per shard (keyed tier).
    shard_cap: usize,
    /// Entry capacity per shard for the line tier.
    line_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    quarantine_hits: AtomicU64,
    quarantined_total: AtomicU64,
}

impl ArtifactCache {
    /// A cache bounded to `capacity` ready entries (at least 1) split
    /// over `shards` shards (rounded up to a power of two, at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let capacity = capacity.max(1);
        let shard_cap = capacity.div_ceil(n).max(1);
        ArtifactCache {
            shards: (0..n)
                .map(|_| OrderedMutex::new("serve.shard", ShardInner::default()))
                .collect(),
            mask: (n - 1) as u64,
            shard_cap,
            line_cap: shard_cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            quarantine_hits: AtomicU64::new(0),
            quarantined_total: AtomicU64::new(0),
        }
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, bytes: &[u8]) -> &OrderedMutex<ShardInner> {
        &self.shards[(fnv1a(bytes) & self.mask) as usize]
    }

    /// Probes the keyed tier; a miss atomically registers this caller as
    /// the key's compile leader.
    pub fn lookup(&self, key: &[u8]) -> Lookup {
        let out = {
            let mut inner = self.shard(key).lock().unwrap();
            match inner.map.get(key) {
                Some(Slot::Ready(body)) => Lookup::Hit(Arc::clone(body)),
                Some(Slot::Pending(flight)) => Lookup::Wait(Arc::clone(flight)),
                None => {
                    let flight = Arc::new(Flight::default());
                    inner
                        .map
                        .insert(key.to_vec(), Slot::Pending(Arc::clone(&flight)));
                    Lookup::Lead(flight)
                }
            }
        };
        match &out {
            // A follower is served from the leader's work: a hit.
            Lookup::Hit(_) | Lookup::Wait(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            Lookup::Lead(_) => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        out
    }

    /// Publishes the leader's rendered response: the pending slot becomes
    /// ready and every follower wakes (or has its callback run) with the
    /// same bytes.
    pub fn fulfill(&self, key: &[u8], flight: &Arc<Flight>, body: Body) -> Body {
        {
            let mut inner = self.shard(key).lock().unwrap();
            if let Some(Slot::Pending(f)) = inner.map.get(key) {
                if Arc::ptr_eq(f, flight) {
                    if inner.ready >= self.shard_cap {
                        // Generational clear of this shard's ready entries
                        // only: pending flights have waiters parked on
                        // them.
                        inner.map.retain(|_, s| matches!(s, Slot::Pending(_)));
                        inner.ready = 0;
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    inner
                        .map
                        .insert(key.to_vec(), Slot::Ready(Arc::clone(&body)));
                    inner.ready += 1;
                }
            }
        }
        flight.complete(Ok(Arc::clone(&body)));
        body
    }

    /// Cancels the leader's flight without publishing an artifact: the
    /// pending slot is removed (the next request for this key leads a
    /// fresh compile) and every follower wakes with `abort`.
    pub fn abort(&self, key: &[u8], flight: &Arc<Flight>, abort: Abort) {
        {
            let mut inner = self.shard(key).lock().unwrap();
            if let Some(Slot::Pending(f)) = inner.map.get(key) {
                if Arc::ptr_eq(f, flight) {
                    inner.map.remove(key);
                }
            }
        }
        flight.complete(Err(abort));
    }

    /// Probes the exact-line tier. A hit counts as a cache hit; a miss
    /// counts nothing — the keyed-tier probe that follows will.
    pub fn line_get(&self, line: &str) -> Option<Body> {
        let body = {
            let inner = self.shard(line.as_bytes()).lock().unwrap();
            inner.lines.get(line).map(Arc::clone)
        };
        if body.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        body
    }

    /// Publishes a line → response mapping into the exact-line tier.
    /// Only deterministic bodies may be inserted (artifacts and typed
    /// compile errors — never `stats` or transient `overloaded` bodies).
    pub fn line_put(&self, line: &str, body: &Body) {
        let mut inner = self.shard(line.as_bytes()).lock().unwrap();
        if inner.lines.len() >= self.line_cap && !inner.lines.contains_key(line) {
            inner.lines.clear();
        }
        inner.lines.insert(Box::from(line), Arc::clone(body));
    }

    /// Probes the quarantine tier: `Some(body)` means this fingerprint
    /// struck out and gets the cached typed rejection without touching a
    /// worker.
    pub fn quarantine_get(&self, fingerprint: &[u8]) -> Option<Body> {
        let body = {
            let inner = self.shard(fingerprint).lock().unwrap();
            inner.quarantined.get(fingerprint).map(Arc::clone)
        };
        if body.is_some() {
            self.quarantine_hits.fetch_add(1, Ordering::Relaxed);
        }
        body
    }

    /// Records one failure (panic or deadline expiry) against a
    /// fingerprint. At `threshold` consecutive failures the fingerprint
    /// is quarantined behind `rejection()`'s body and `true` is returned;
    /// a `threshold` of 0 disables the breaker. Strikes are
    /// *consecutive*, not cumulative — [`ArtifactCache::clear_strikes`]
    /// resets them on success, so a kernel that fails under transient
    /// pressure but then compiles fine is never poisoned.
    pub fn record_strike(
        &self,
        fingerprint: &[u8],
        threshold: u32,
        rejection: impl FnOnce() -> Body,
    ) -> bool {
        if threshold == 0 {
            return false;
        }
        let quarantined = {
            let mut inner = self.shard(fingerprint).lock().unwrap();
            if inner.quarantined.contains_key(fingerprint) {
                return false; // already poisoned; nothing new to record
            }
            let strikes = inner.strikes.entry(fingerprint.to_vec()).or_insert(0);
            *strikes += 1;
            if *strikes < threshold {
                false
            } else {
                inner.strikes.remove(fingerprint);
                // The strike and quarantine maps are bounded the same
                // generational way as the ready tier: a pathological
                // *stream* of distinct failing fingerprints must not
                // grow without bound.
                if inner.quarantined.len() >= self.shard_cap {
                    inner.quarantined.clear();
                }
                if inner.strikes.len() >= self.shard_cap {
                    inner.strikes.clear();
                }
                inner.quarantined.insert(fingerprint.to_vec(), rejection());
                true
            }
        };
        if quarantined {
            self.quarantined_total.fetch_add(1, Ordering::Relaxed);
        }
        quarantined
    }

    /// Clears a fingerprint's consecutive-failure strikes after a
    /// successful compile.
    pub fn clear_strikes(&self, fingerprint: &[u8]) {
        let mut inner = self.shard(fingerprint).lock().unwrap();
        inner.strikes.remove(fingerprint);
    }

    /// Counter snapshot. Counters are lock-free reads; entry counts take
    /// each shard lock briefly (`stats` requests are rare).
    pub fn stats(&self) -> ArtifactCacheStats {
        let mut entries = 0;
        let mut inflight = 0;
        let mut line_entries = 0;
        let mut quarantined = 0;
        for shard in self.shards.iter() {
            let inner = shard.lock().unwrap();
            entries += inner.ready;
            inflight += inner.map.len() - inner.ready;
            line_entries += inner.lines.len();
            quarantined += inner.quarantined.len();
        }
        ArtifactCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            inflight,
            line_entries,
            quarantined,
            quarantine_hits: self.quarantine_hits.load(Ordering::Relaxed),
            quarantined_total: self.quarantined_total.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn body(s: &str) -> Body {
        Arc::from(s.as_bytes())
    }

    #[test]
    fn leader_then_hits() {
        let c = ArtifactCache::new(8, 1);
        let flight = match c.lookup(b"k1") {
            Lookup::Lead(f) => f,
            other => panic!("{other:?}"),
        };
        let published = c.fulfill(b"k1", &flight, body("resp"));
        assert_eq!(&*published, b"resp");
        match c.lookup(b"k1") {
            Lookup::Hit(b) => assert_eq!(&*b, b"resp"),
            other => panic!("{other:?}"),
        }
        let st = c.stats();
        assert_eq!((st.hits, st.misses, st.entries, st.inflight), (1, 1, 1, 0));
    }

    #[test]
    fn followers_share_the_leaders_flight() {
        let c = Arc::new(ArtifactCache::new(8, 4));
        let leader = match c.lookup(b"k") {
            Lookup::Lead(f) => f,
            other => panic!("{other:?}"),
        };
        let mut joins = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            joins.push(thread::spawn(move || match c.lookup(b"k") {
                Lookup::Hit(b) => b.to_vec(),
                Lookup::Wait(f) => f.wait().unwrap().to_vec(),
                Lookup::Lead(_) => panic!("second leader for one key"),
            }));
        }
        c.fulfill(b"k", &leader, body("shared"));
        for j in joins {
            assert_eq!(j.join().unwrap(), b"shared");
        }
        let st = c.stats();
        assert_eq!(st.misses, 1, "exactly one compile for 5 requests");
        assert_eq!(st.hits, 4);
    }

    #[test]
    fn abort_wakes_followers_and_frees_the_key() {
        let c = Arc::new(ArtifactCache::new(8, 2));
        let leader = match c.lookup(b"k") {
            Lookup::Lead(f) => f,
            other => panic!("{other:?}"),
        };
        let follower = match c.lookup(b"k") {
            Lookup::Wait(f) => f,
            other => panic!("{other:?}"),
        };
        c.abort(b"k", &leader, Abort::Overloaded);
        assert_eq!(follower.wait().unwrap_err(), Abort::Overloaded);
        // The key is free again: the next request leads a fresh compile.
        assert!(matches!(c.lookup(b"k"), Lookup::Lead(_)));
        assert_eq!(c.stats().inflight, 1);
    }

    #[test]
    fn generational_eviction_retains_pending() {
        // One shard so the eviction arithmetic is deterministic.
        let c = ArtifactCache::new(2, 1);
        for key in [b"a".as_slice(), b"b"] {
            match c.lookup(key) {
                Lookup::Lead(f) => {
                    c.fulfill(key, &f, body("x"));
                }
                other => panic!("{other:?}"),
            }
        }
        let pending = match c.lookup(b"inflight") {
            Lookup::Lead(f) => f,
            other => panic!("{other:?}"),
        };
        // Third ready insert overflows: ready entries clear, the pending
        // flight survives.
        match c.lookup(b"c") {
            Lookup::Lead(f) => {
                c.fulfill(b"c", &f, body("y"));
            }
            other => panic!("{other:?}"),
        }
        let st = c.stats();
        assert_eq!(st.evictions, 1);
        assert_eq!(st.entries, 1);
        assert_eq!(st.inflight, 1);
        c.fulfill(b"inflight", &pending, body("z"));
        match c.lookup(b"inflight") {
            Lookup::Hit(b) => assert_eq!(&*b, b"z"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn line_tier_hits_skip_the_keyed_tier() {
        let c = ArtifactCache::new(8, 2);
        assert!(c.line_get("{\"op\":\"compile\"}").is_none());
        let b = body("artifact");
        c.line_put("{\"op\":\"compile\"}", &b);
        let hit = c.line_get("{\"op\":\"compile\"}").expect("line hit");
        assert!(Arc::ptr_eq(&hit, &b), "line tier shares the same bytes");
        let st = c.stats();
        assert_eq!((st.hits, st.misses), (1, 0));
        assert_eq!(st.line_entries, 1);
    }

    #[test]
    fn line_tier_is_bounded_per_shard() {
        let c = ArtifactCache::new(4, 1);
        for i in 0..64 {
            let line = format!("line-{i}");
            c.line_put(&line, &body("x"));
        }
        assert!(c.stats().line_entries <= 4);
    }

    #[test]
    fn shard_count_rounds_to_pow2() {
        assert_eq!(ArtifactCache::new(16, 3).shard_count(), 4);
        assert_eq!(ArtifactCache::new(16, 0).shard_count(), 1);
        assert_eq!(ArtifactCache::new(16, 8).shard_count(), 8);
    }

    #[test]
    fn strikes_quarantine_at_threshold_and_reset_on_success() {
        let c = ArtifactCache::new(8, 2);
        let fp = b"bad-kernel";
        assert!(!c.record_strike(fp, 3, || body("poison")));
        assert!(!c.record_strike(fp, 3, || body("poison")));
        // A success between failures resets the consecutive count.
        c.clear_strikes(fp);
        assert!(!c.record_strike(fp, 3, || body("poison")));
        assert!(!c.record_strike(fp, 3, || body("poison")));
        assert!(c.quarantine_get(fp).is_none());
        assert!(c.record_strike(fp, 3, || body("poison")));
        assert_eq!(&*c.quarantine_get(fp).expect("quarantined"), b"poison");
        // Further strikes against a quarantined fingerprint are no-ops.
        assert!(!c.record_strike(fp, 3, || body("other")));
        let st = c.stats();
        assert_eq!(st.quarantined, 1);
        assert_eq!(st.quarantined_total, 1);
        assert_eq!(st.quarantine_hits, 1);
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let c = ArtifactCache::new(8, 1);
        for _ in 0..32 {
            assert!(!c.record_strike(b"fp", 0, || body("poison")));
        }
        assert!(c.quarantine_get(b"fp").is_none());
        assert_eq!(c.stats().quarantined_total, 0);
    }

    #[test]
    fn quarantined_entry_evicted_then_rerequested_leads_again() {
        // One shard, capacity 2: quarantining a third distinct
        // fingerprint clears the tier generationally. An evicted
        // fingerprint must fall back to a normal compile lead, not get a
        // stale rejection or a dangling strike count.
        let c = ArtifactCache::new(2, 1);
        for fp in [b"p1".as_slice(), b"p2"] {
            assert!(c.record_strike(fp, 1, || body("poison")));
            assert!(c.quarantine_get(fp).is_some());
        }
        assert!(c.record_strike(b"p3", 1, || body("poison")));
        // p1/p2 were swept by the generational clear; p3 is resident.
        assert!(c.quarantine_get(b"p1").is_none());
        assert!(c.quarantine_get(b"p3").is_some());
        assert_eq!(c.stats().quarantined, 1);
        assert_eq!(c.stats().quarantined_total, 3);
        // The evicted fingerprint's requests flow through the normal
        // keyed tier again.
        match c.lookup(b"p1") {
            Lookup::Lead(f) => {
                c.fulfill(b"p1", &f, body("recovered"));
            }
            other => panic!("{other:?}"),
        }
        match c.lookup(b"p1") {
            Lookup::Hit(b) => assert_eq!(&*b, b"recovered"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn keys_disperse_across_shards() {
        let c = ArtifactCache::new(1024, 8);
        for i in 0..256u32 {
            let key = i.to_le_bytes();
            match c.lookup(&key) {
                Lookup::Lead(f) => {
                    c.fulfill(&key, &f, body("x"));
                }
                other => panic!("{other:?}"),
            }
        }
        // With 256 keys over 8 shards, every shard must hold something —
        // a broken hash (all keys on one shard) would re-serialize hits.
        let per_shard: Vec<usize> = c.shards.iter().map(|s| s.lock().unwrap().ready).collect();
        assert!(per_shard.iter().all(|&n| n > 0), "{per_shard:?}");
    }
}
