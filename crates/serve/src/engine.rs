//! The compile engine: request batching into the worker pool, the
//! content-addressed artifact cache, and deterministic response
//! rendering.
//!
//! The split of one compile request across threads is deliberate:
//!
//! * the **connection thread** parses and sanitizes the kernel source and
//!   derives the artifact key — cheap, and it lets a cache hit complete
//!   without ever touching the pool;
//! * a **worker thread** (with its persistent [`CompileSession`]) runs
//!   the expensive pipeline only when the key missed, and only once per
//!   key no matter how many requests race (single flight).
//!
//! When the bounded queue is full the leader sheds with a typed
//! `overloaded` response and aborts its flight so followers shed too —
//! backpressure is explicit, never an unbounded buffer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use polyufc::{CompileReport, CompileSession, Pipeline, PipelineOutput};
use polyufc_analysis::sanitize_parallel;
use polyufc_cgeist::parse_scop;
use polyufc_ir::affine::AffineProgram;
use polyufc_ir::textual::parse_affine_program;
use polyufc_machine::program_fingerprint;
use polyufc_par::StatefulPool;

use crate::artifact::{Abort, ArtifactCache, ArtifactCacheStats, Lookup};
use crate::json::{fmt_f64, push_escaped};
use crate::protocol::{
    assoc_str, codes, objective_str, parse_request, render_error, CompileRequest, Request,
    WireError, MAX_REQUEST_BYTES,
};

/// Engine sizing.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Compile worker threads (defaults to [`polyufc_par::worker_count`],
    /// which honors `--threads` / `POLYUFC_THREADS`).
    pub workers: usize,
    /// Bounded pending-compile queue; a full queue sheds requests with a
    /// typed `overloaded` response.
    pub queue_cap: usize,
    /// Artifact-cache capacity in ready entries.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = polyufc_par::worker_count();
        EngineConfig {
            workers,
            queue_cap: 4 * workers.max(1),
            cache_capacity: 4096,
        }
    }
}

/// Cumulative Presburger counting-cache traffic across every compile the
/// engine ran (aggregated from per-compile [`CompileReport`] deltas, so
/// shed and cached requests contribute nothing).
#[derive(Debug, Default)]
pub struct CountTotals {
    /// Counting queries answered from warm per-worker session caches.
    pub hits: AtomicU64,
    /// Counting queries that ran the full counter.
    pub misses: AtomicU64,
    /// Components resolved by the closed-form symbolic layer.
    pub symbolic: AtomicU64,
    /// Components that fell back to the recursive enumerator.
    pub enumerated: AtomicU64,
    /// Session-cache entries discarded by the capacity guard.
    pub evictions: AtomicU64,
    /// Polysum region splits fanned out across the worker pool.
    pub parallel_splits: AtomicU64,
}

impl CountTotals {
    fn add(&self, r: &CompileReport) {
        self.hits.fetch_add(r.count_cache_hits, Ordering::Relaxed);
        self.misses
            .fetch_add(r.count_cache_misses, Ordering::Relaxed);
        self.symbolic.fetch_add(r.count_symbolic, Ordering::Relaxed);
        self.enumerated
            .fetch_add(r.count_enumerated, Ordering::Relaxed);
        self.evictions
            .fetch_add(r.count_cache_evictions, Ordering::Relaxed);
        self.parallel_splits
            .fetch_add(r.count_parallel_splits, Ordering::Relaxed);
    }
}

/// State shared between connection threads and compile workers.
#[derive(Debug, Default)]
struct Shared {
    counts: CountTotals,
    requests: AtomicU64,
    compiled: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
}

/// How the server should act on a handled line.
#[derive(Debug)]
pub enum Outcome {
    /// Write this response line and keep the connection open.
    Reply(String),
    /// Write this response line, then drain and stop the daemon.
    ReplyAndShutdown(String),
}

impl Outcome {
    /// The response body either way.
    pub fn body(&self) -> &str {
        match self {
            Outcome::Reply(s) | Outcome::ReplyAndShutdown(s) => s,
        }
    }
}

/// A compile request parsed, sanitized, and keyed — everything the
/// connection thread computes before deciding hit/wait/lead.
pub struct Prepared {
    program: AffineProgram,
    warnings: Vec<String>,
    opts: crate::protocol::CompileOptions,
    key: Vec<u8>,
}

/// The serving engine: worker pool + artifact cache + counters.
pub struct Engine {
    pool: StatefulPool<CompileSession>,
    cache: Arc<ArtifactCache>,
    shared: Arc<Shared>,
    workers: usize,
    queue_cap: usize,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers)
            .field("queue_cap", &self.queue_cap)
            .finish()
    }
}

impl Engine {
    /// Builds the engine: spawns the workers (each with a persistent
    /// [`CompileSession`]) and allocates the artifact cache.
    pub fn new(cfg: &EngineConfig) -> Self {
        Engine {
            pool: StatefulPool::new(cfg.workers, cfg.queue_cap, |_| CompileSession::new()),
            cache: Arc::new(ArtifactCache::new(cfg.cache_capacity)),
            shared: Arc::new(Shared::default()),
            workers: cfg.workers.max(1),
            queue_cap: cfg.queue_cap.max(1),
        }
    }

    /// Handles one request line and produces the one response line.
    /// Never panics on any input; every failure is a typed error body.
    pub fn handle_line(&self, line: &str) -> Outcome {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        let req = match parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                self.shared.errors.fetch_add(1, Ordering::Relaxed);
                return Outcome::Reply(e.render());
            }
        };
        match req {
            Request::Ping => Outcome::Reply("{\"ok\":true,\"pong\":true}".to_string()),
            Request::Stats => Outcome::Reply(self.stats_json()),
            Request::Shutdown => {
                Outcome::ReplyAndShutdown("{\"ok\":true,\"shutdown\":true}".to_string())
            }
            Request::Compile(c) => Outcome::Reply(self.handle_compile(&c)),
        }
    }

    fn handle_compile(&self, req: &CompileRequest) -> String {
        let prepared = match prepare(req) {
            Ok(p) => p,
            Err(e) => {
                self.shared.errors.fetch_add(1, Ordering::Relaxed);
                return e.render();
            }
        };
        match self.cache.lookup(&prepared.key) {
            Lookup::Hit(body) => (*body).clone(),
            Lookup::Wait(flight) => match flight.wait() {
                Ok(body) => (*body).clone(),
                Err(abort) => {
                    self.shared.errors.fetch_add(1, Ordering::Relaxed);
                    abort_error(abort).render()
                }
            },
            Lookup::Lead(flight) => {
                let cache = Arc::clone(&self.cache);
                let shared = Arc::clone(&self.shared);
                let job_flight = Arc::clone(&flight);
                let lead_key = prepared.key.clone();
                let key = prepared.key.clone();
                let submitted = self.pool.try_execute(move |session| {
                    // A panicking pass must not take the worker (or the
                    // daemon) down, and must not leave its followers
                    // parked forever; contain it, answer `internal`, and
                    // hand the worker a fresh session in case the old one
                    // was poisoned mid-update.
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        compile_prepared(&prepared, session)
                    }));
                    match run {
                        Ok((body, report)) => {
                            match report {
                                Some(r) => {
                                    shared.counts.add(&r);
                                    shared.compiled.fetch_add(1, Ordering::Relaxed);
                                }
                                None => {
                                    shared.errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            cache.fulfill(&key, &job_flight, body);
                        }
                        Err(_) => {
                            *session = CompileSession::new();
                            shared.errors.fetch_add(1, Ordering::Relaxed);
                            cache.abort(&key, &job_flight, Abort::Internal);
                        }
                    }
                });
                if let Err(rejected) = submitted {
                    drop(rejected); // the boxed job, returned unrun
                    self.shared.shed.fetch_add(1, Ordering::Relaxed);
                    self.shared.errors.fetch_add(1, Ordering::Relaxed);
                    self.cache.abort(&lead_key, &flight, Abort::Overloaded);
                    return abort_error(Abort::Overloaded).render();
                }
                match flight.wait() {
                    Ok(body) => (*body).clone(),
                    Err(abort) => abort_error(abort).render(),
                }
            }
        }
    }

    /// The structured `stats` response (deterministic field order; values
    /// are live counters).
    pub fn stats_json(&self) -> String {
        let a = self.cache.stats();
        let m = polyufc_machine::measure_cache_stats();
        let c = &self.shared.counts;
        let mut s = String::with_capacity(512);
        s.push_str("{\"ok\":true,\"schema\":\"polyufc-stats/1\",\"server\":{");
        push_u64(&mut s, "workers", self.workers as u64);
        push_u64(&mut s, "queue_capacity", self.queue_cap as u64);
        push_u64(
            &mut s,
            "requests",
            self.shared.requests.load(Ordering::Relaxed),
        );
        push_u64(
            &mut s,
            "compiled",
            self.shared.compiled.load(Ordering::Relaxed),
        );
        push_u64(&mut s, "errors", self.shared.errors.load(Ordering::Relaxed));
        push_u64(&mut s, "shed", self.shared.shed.load(Ordering::Relaxed));
        s.pop(); // trailing comma
        s.push_str("},\"artifact_cache\":{");
        push_u64(&mut s, "hits", a.hits);
        push_u64(&mut s, "misses", a.misses);
        push_u64(&mut s, "evictions", a.evictions);
        push_u64(&mut s, "entries", a.entries as u64);
        push_u64(&mut s, "inflight", a.inflight as u64);
        s.push_str("\"hit_rate\":");
        s.push_str(&fmt_f64(a.hit_rate()));
        s.push_str("},\"measure_cache\":{");
        push_u64(&mut s, "hits", m.hits);
        push_u64(&mut s, "misses", m.misses);
        push_u64(&mut s, "evictions", m.evictions);
        push_u64(&mut s, "entries", m.len as u64);
        s.push_str("\"hit_rate\":");
        s.push_str(&fmt_f64(m.hit_rate()));
        s.push_str("},\"count_cache\":{");
        push_u64(&mut s, "hits", c.hits.load(Ordering::Relaxed));
        push_u64(&mut s, "misses", c.misses.load(Ordering::Relaxed));
        push_u64(&mut s, "symbolic", c.symbolic.load(Ordering::Relaxed));
        push_u64(&mut s, "enumerated", c.enumerated.load(Ordering::Relaxed));
        push_u64(&mut s, "evictions", c.evictions.load(Ordering::Relaxed));
        push_u64(
            &mut s,
            "parallel_splits",
            c.parallel_splits.load(Ordering::Relaxed),
        );
        s.pop();
        s.push_str("}}");
        s
    }

    /// Artifact-cache counters (for tests and the loadtest harness).
    pub fn cache_stats(&self) -> ArtifactCacheStats {
        self.cache.stats()
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Hard request-size limit (re-exported for line readers).
    pub fn max_request_bytes(&self) -> usize {
        MAX_REQUEST_BYTES
    }

    /// Drains queued compiles and joins the workers.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

/// Parses, sanitizes, and keys one compile request on the calling
/// (connection) thread.
///
/// # Errors
///
/// `parse_error` when the kernel source does not parse.
pub fn prepare(req: &CompileRequest) -> Result<Prepared, WireError> {
    let mut program = match req.format {
        crate::protocol::SourceFormat::TextualIr => parse_affine_program(&req.source)
            .map_err(|e| WireError::new(codes::PARSE_ERROR, format!("textual IR: {e}")))?,
        crate::protocol::SourceFormat::C => parse_scop(&req.source, &req.name)
            .map_err(|e| WireError::new(codes::PARSE_ERROR, format!("cgeist: {e}")))?,
    };
    // The daemon and the one-shot CLI must transform the program
    // identically or byte-identity breaks: sanitize unprovable `parallel`
    // flags here, before fingerprinting, exactly as `polyufc compile`
    // does before its pipeline call.
    let warnings: Vec<String> = sanitize_parallel(&mut program)
        .iter()
        .map(|d| d.to_string())
        .collect();
    let key = artifact_key(&program, &warnings, &req.opts);
    Ok(Prepared {
        program,
        warnings,
        opts: req.opts.clone(),
        key,
    })
}

/// The content address of a response: pipeline configuration, the
/// structural program fingerprint the measure cache already computes,
/// the program's rendered text (fingerprints deliberately exclude names,
/// but responses embed them), and the sanitize trace (distinct
/// pre-sanitize sources can converge on one program yet carry different
/// warnings).
fn artifact_key(
    program: &AffineProgram,
    warnings: &[String],
    opts: &crate::protocol::CompileOptions,
) -> Vec<u8> {
    let mut key = Vec::with_capacity(512);
    let field = |key: &mut Vec<u8>, bytes: &[u8]| {
        key.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        key.extend_from_slice(bytes);
    };
    field(&mut key, b"polyufc-artifact/1");
    field(&mut key, opts.platform.name.as_bytes());
    field(&mut key, objective_str(opts.objective).as_bytes());
    field(&mut key, assoc_str(opts.assoc).as_bytes());
    field(&mut key, &opts.epsilon.to_le_bytes());
    field(&mut key, &[opts.emit_scf as u8]);
    field(&mut key, &program_fingerprint(&opts.platform, program));
    field(&mut key, format!("{program}").as_bytes());
    for w in warnings {
        field(&mut key, w.as_bytes());
    }
    key
}

/// Runs the pipeline for a prepared request against a session and renders
/// the response body. The report is `Some` only for successful compiles
/// (its counter deltas feed [`CountTotals`]); rejection and model errors
/// render as deterministic typed bodies, which are cached like artifacts.
pub fn compile_prepared(
    p: &Prepared,
    session: &mut CompileSession,
) -> (String, Option<CompileReport>) {
    let mut pipeline = Pipeline::new(p.opts.platform.clone())
        .with_objective(p.opts.objective)
        .with_assoc_mode(p.opts.assoc);
    pipeline.epsilon = p.opts.epsilon;
    match pipeline.compile_affine_in(&p.program, session) {
        Ok(out) => {
            let report = out.report.clone();
            (render_artifact(p, &out), Some(report))
        }
        Err(polyufc::Error::AnalysisRejected(report)) => (render_rejected(&report), None),
        Err(polyufc::Error::Model(e)) => (
            render_error(codes::MODEL, &format!("cache model: {e}")),
            None,
        ),
    }
}

/// One-shot entry point shared with `polyufc compile --json`: same
/// prepare, same pipeline, same renderer, fresh session — so the CLI's
/// output is byte-identical to the daemon's response for the same
/// request, cached or not.
pub fn oneshot_response(req: &CompileRequest) -> String {
    match prepare(req) {
        Ok(p) => compile_prepared(&p, &mut CompileSession::new()).0,
        Err(e) => e.render(),
    }
}

fn abort_error(abort: Abort) -> WireError {
    match abort {
        Abort::Overloaded => WireError::new(
            codes::OVERLOADED,
            "all workers busy and the queue is full; retry later",
        ),
        Abort::Internal => WireError::new(
            codes::INTERNAL,
            "compile worker panicked; the daemon recovered, this request did not",
        ),
    }
}

fn push_u64(out: &mut String, key: &str, v: u64) {
    push_escaped(out, key);
    out.push(':');
    out.push_str(&format!("{v}"));
    out.push(',');
}

/// Renders the cap artifact with a fixed field order and no
/// wall-clock- or session-warmth-dependent fields (those live in `stats`),
/// so identical requests produce identical bytes whether answered by a
/// cold compile, a warm session, the artifact cache, or the one-shot CLI.
fn render_artifact(p: &Prepared, out: &PipelineOutput) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str("{\"ok\":true,\"schema\":\"polyufc-artifact/1\",\"program\":");
    push_escaped(&mut s, &out.optimized.name);
    s.push_str(",\"platform\":");
    push_escaped(&mut s, &p.opts.platform.name);
    s.push_str(",\"objective\":");
    push_escaped(&mut s, objective_str(p.opts.objective));
    s.push_str(",\"epsilon\":");
    s.push_str(&fmt_f64(p.opts.epsilon));
    s.push_str(",\"assoc\":");
    push_escaped(&mut s, assoc_str(p.opts.assoc));
    s.push_str(",\"kernels\":[");
    let rows = out
        .optimized
        .kernels
        .iter()
        .zip(&out.characterizations)
        .zip(&out.search)
        .zip(&out.caps_ghz);
    for (i, (((k, ch), sr), &cap)) in rows.enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"name\":");
        push_escaped(&mut s, &k.name);
        s.push_str(",\"class\":");
        push_escaped(&mut s, &format!("{}", ch.class));
        s.push_str(",\"oi\":");
        s.push_str(&fmt_f64(ch.oi));
        s.push_str(",\"balance\":");
        s.push_str(&fmt_f64(ch.balance));
        s.push_str(",\"attainable_flops\":");
        s.push_str(&fmt_f64(ch.attainable_flops));
        s.push_str(",\"cap_ghz\":");
        s.push_str(&fmt_f64(cap));
        s.push_str(",\"search_steps\":");
        s.push_str(&format!("{}", sr.steps));
        s.push('}');
    }
    s.push_str("],\"fallback\":[");
    for (i, name) in out.report.fallback_kernels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_escaped(&mut s, name);
    }
    s.push_str("],\"warnings\":[");
    for (i, w) in p
        .warnings
        .iter()
        .chain(&out.report.verify_warnings)
        .enumerate()
    {
        if i > 0 {
            s.push(',');
        }
        push_escaped(&mut s, w);
    }
    s.push(']');
    if p.opts.emit_scf {
        s.push_str(",\"scf\":");
        push_escaped(&mut s, &format!("{}", out.scf));
    }
    s.push('}');
    s
}

/// Renders a verifier rejection: a typed error whose payload carries every
/// diagnostic (the "lint over the wire" half of the daemon's contract).
fn render_rejected(report: &polyufc_analysis::AnalysisReport) -> String {
    let mut s = String::with_capacity(256);
    s.push_str("{\"ok\":false,\"error\":{\"code\":");
    push_escaped(&mut s, codes::REJECTED);
    s.push_str(",\"message\":");
    push_escaped(
        &mut s,
        &format!("static verifier rejected `{}`", report.program),
    );
    s.push_str(",\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_escaped(&mut s, &d.to_string());
    }
    s.push_str("]}}");
    s
}
