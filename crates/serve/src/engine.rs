//! The compile engine: request batching into the worker pool, the
//! sharded content-addressed artifact cache, and deterministic response
//! rendering.
//!
//! The split of one compile request across threads is deliberate:
//!
//! * the **reactor (or connection) thread** probes the exact-line
//!   response tier, parses and sanitizes the kernel source, and derives
//!   the artifact key — cheap, and it lets a cache hit complete without
//!   ever touching the pool;
//! * a **worker thread** (with its persistent [`CompileSession`] and a
//!   per-worker characterization-prefix cache) runs the expensive
//!   pipeline only when the key missed, and only once per key no matter
//!   how many requests race (single flight).
//!
//! The engine's entry point is asynchronous: [`Engine::submit`] either
//! answers immediately ([`Submitted::Ready`]) or dispatches a compile and
//! later invokes the caller's `notify` callback with the finished body —
//! the epoll reactor never blocks on a compile. The blocking
//! [`Engine::handle_line`] wrapper serves the legacy
//! thread-per-connection path and tests.
//!
//! When the bounded queue is full the leader sheds with a typed
//! `overloaded` response and aborts its flight so followers shed too —
//! backpressure is explicit, never an unbounded buffer.
//!
//! **Prefix cache:** stage timing shows warm recompiles are dominated by
//! Pluto re-optimization (hundreds of µs to ms), while the only stages
//! that read `epsilon`/`objective` — POLYUFC-SEARCH and code generation
//! — cost ~15 µs. Each worker therefore caches
//! [`CharacterizedProgram`] prefixes keyed on (platform, assoc,
//! program): a request differing only in search parameters re-runs only
//! [`Pipeline::finish_characterized`]. Responses stay byte-identical by
//! construction — the prefix is exactly the pipeline's own stage-1–3
//! output.

use polyufc_chk::{OrderedCondvar, OrderedMutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use polyufc::{CharacterizedProgram, CompileReport, CompileSession, Pipeline, PipelineOutput};
use polyufc_analysis::sanitize_parallel;
use polyufc_cgeist::parse_scop;
use polyufc_ir::affine::AffineProgram;
use polyufc_ir::textual::parse_affine_program;
use polyufc_machine::program_fingerprint;
use polyufc_par::StatefulPool;

use crate::artifact::{Abort, ArtifactCacheStats, Body, Flight, Lookup};
use crate::chaos::{ChaosPlan, CompileFault};
use crate::json::{fmt_f64, push_escaped};
use crate::protocol::{
    assoc_str, codes, objective_str, parse_request, render_error, CompileRequest, Request,
    WireError, MAX_REQUEST_BYTES,
};
use crate::shard::ArtifactCache;

/// Engine sizing.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Compile worker threads (defaults to [`polyufc_par::worker_count`],
    /// which honors `--threads` / `POLYUFC_THREADS`).
    pub workers: usize,
    /// Bounded pending-compile queue; a full queue sheds requests with a
    /// typed `overloaded` response.
    pub queue_cap: usize,
    /// Artifact-cache capacity in ready entries.
    pub cache_capacity: usize,
    /// Per-request compile budget: a flight pending longer is aborted by
    /// the watchdog with a typed `deadline_exceeded` error, and a worker
    /// stuck past 1.5× this is detached and replaced. `None` disables
    /// the watchdog (defaults from `POLYUFC_DEADLINE_MS`; `0` or unset
    /// means off).
    pub deadline: Option<Duration>,
    /// Consecutive panics/timeouts after which a kernel's structural
    /// fingerprint is quarantined behind a cached typed rejection; `0`
    /// disables the circuit breaker.
    pub quarantine_threshold: u32,
    /// Seeded fault injection for the compile path (off by default;
    /// pristine plans leave dispatch byte-identical).
    pub chaos: ChaosPlan,
    /// How long [`Engine::shutdown`] waits for busy workers to finish
    /// before detaching them and draining still-pending flights with
    /// typed `shutting_down` errors.
    pub shutdown_grace: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = polyufc_par::worker_count();
        let deadline = std::env::var("POLYUFC_DEADLINE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis);
        EngineConfig {
            workers,
            queue_cap: 4 * workers.max(1),
            cache_capacity: 4096,
            deadline,
            quarantine_threshold: 3,
            chaos: ChaosPlan::pristine(),
            shutdown_grace: Duration::from_secs(5),
        }
    }
}

/// Cumulative Presburger counting-cache traffic across every compile the
/// engine ran (aggregated from per-compile [`CompileReport`] deltas, so
/// shed, cached, and prefix-cached requests contribute nothing).
#[derive(Debug, Default)]
pub struct CountTotals {
    /// Counting queries answered from warm per-worker session caches.
    pub hits: AtomicU64,
    /// Counting queries that ran the full counter.
    pub misses: AtomicU64,
    /// Components resolved by the closed-form symbolic layer.
    pub symbolic: AtomicU64,
    /// Components that fell back to the recursive enumerator.
    pub enumerated: AtomicU64,
    /// Session-cache entries discarded by the capacity guard.
    pub evictions: AtomicU64,
    /// Polysum region splits fanned out across the worker pool.
    pub parallel_splits: AtomicU64,
}

impl CountTotals {
    fn add(&self, r: &CompileReport) {
        self.hits.fetch_add(r.count_cache_hits, Ordering::Relaxed);
        self.misses
            .fetch_add(r.count_cache_misses, Ordering::Relaxed);
        self.symbolic.fetch_add(r.count_symbolic, Ordering::Relaxed);
        self.enumerated
            .fetch_add(r.count_enumerated, Ordering::Relaxed);
        self.evictions
            .fetch_add(r.count_cache_evictions, Ordering::Relaxed);
        self.parallel_splits
            .fetch_add(r.count_parallel_splits, Ordering::Relaxed);
    }
}

/// Fixed-bucket log₂ latency histogram: bucket `i` counts service times
/// in `[2^(i-1), 2^i)` µs (bucket 0 is sub-microsecond). Recording is
/// one relaxed atomic increment — safe from the reactor's hot path — and
/// quantiles are read as bucket upper bounds, which is the right
/// resolution for a trajectory metric (p99 drifting from 2^7 to 2^10 µs
/// is the signal; ±30% inside a bucket is not).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    max_us: AtomicU64,
}

const BUCKETS: usize = 40;

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one service time.
    pub fn record_us(&self, us: u64) {
        let idx = if us == 0 {
            0
        } else {
            (64 - us.leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Snapshot: (count, p50, p99, max) with quantiles as bucket upper
    /// bounds in µs.
    pub fn summary(&self) -> (u64, u64, u64, u64) {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = (q * total as f64).ceil() as u64;
            let mut cum = 0u64;
            for (i, &n) in counts.iter().enumerate() {
                cum += n;
                if cum >= rank {
                    return 1u64 << i;
                }
            }
            1u64 << (BUCKETS - 1)
        };
        (
            total,
            quantile(0.50),
            quantile(0.99),
            self.max_us.load(Ordering::Relaxed),
        )
    }
}

/// State shared between the reactor/connection threads and compile
/// workers.
#[derive(Debug, Default)]
struct Shared {
    counts: CountTotals,
    requests: AtomicU64,
    compiled: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    prefix_hits: AtomicU64,
    prefix_misses: AtomicU64,
    deadlines: AtomicU64,
    chaos_injections: AtomicU64,
    latency: LatencyHistogram,
}

/// One pending compile lead, tracked so the watchdog can expire it and
/// shutdown can drain it. Registered for *every* lead — not just when a
/// deadline is configured — because shutdown-with-flights-pending must
/// complete waiters even on deadline-less engines.
struct InflightEntry {
    key: Vec<u8>,
    fingerprint: Vec<u8>,
    flight: Arc<Flight>,
    started: Instant,
}

/// The registry of pending compile leads, shared with the watchdog.
struct InflightRegistry {
    next: AtomicU64,
    map: OrderedMutex<HashMap<u64, InflightEntry>>,
}

impl Default for InflightRegistry {
    fn default() -> Self {
        InflightRegistry {
            next: AtomicU64::new(0),
            map: OrderedMutex::new("serve.inflight", HashMap::new()),
        }
    }
}

impl InflightRegistry {
    fn register(&self, key: Vec<u8>, fingerprint: Vec<u8>, flight: Arc<Flight>) -> u64 {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        self.map.lock().unwrap().insert(
            ticket,
            InflightEntry {
                key,
                fingerprint,
                flight,
                started: Instant::now(),
            },
        );
        ticket
    }

    /// Removes a ticket; `false` means someone else (the watchdog on
    /// expiry, or the shutdown drain) already took it — i.e. the flight
    /// was aborted out from under this job.
    fn deregister(&self, ticket: u64) -> bool {
        self.map.lock().unwrap().remove(&ticket).is_some()
    }

    /// Extracts every entry pending longer than `deadline`.
    fn take_expired(&self, deadline: Duration) -> Vec<InflightEntry> {
        let mut map = self.map.lock().unwrap();
        let expired: Vec<u64> = map
            .iter()
            .filter(|(_, e)| e.started.elapsed() >= deadline)
            .map(|(&t, _)| t)
            .collect();
        expired.into_iter().filter_map(|t| map.remove(&t)).collect()
    }

    /// Extracts every entry (the shutdown drain).
    fn drain(&self) -> Vec<InflightEntry> {
        self.map.lock().unwrap().drain().map(|(_, e)| e).collect()
    }
}

/// The deadline watchdog thread plus its condvar-based stop latch.
struct Watchdog {
    stop: Arc<(OrderedMutex<bool>, OrderedCondvar)>,
    handle: std::thread::JoinHandle<()>,
}

impl Watchdog {
    fn stop(self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        let _ = self.handle.join();
    }
}

/// How the server should act on a handled line (blocking API).
#[derive(Debug)]
pub enum Outcome {
    /// Write this response line and keep the connection open.
    Reply(String),
    /// Write this response line, then drain and stop the daemon.
    ReplyAndShutdown(String),
}

impl Outcome {
    /// The response body either way.
    pub fn body(&self) -> &str {
        match self {
            Outcome::Reply(s) | Outcome::ReplyAndShutdown(s) => s,
        }
    }
}

/// How [`Engine::submit`] answered a request line (event-driven API).
pub enum Submitted {
    /// The response is ready now (no compile was needed).
    Ready(Body),
    /// Ready now, and the daemon should drain and stop after writing it.
    ReadyShutdown(Body),
    /// A compile was dispatched (or joined in flight); the `notify`
    /// callback passed to `submit` will deliver the body later, possibly
    /// on a worker thread.
    Pending,
}

impl std::fmt::Debug for Submitted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Submitted::Ready(_) => "Submitted::Ready",
            Submitted::ReadyShutdown(_) => "Submitted::ReadyShutdown",
            Submitted::Pending => "Submitted::Pending",
        })
    }
}

/// A compile request parsed, sanitized, and keyed — everything the
/// reactor/connection thread computes before deciding hit/wait/lead.
pub struct Prepared {
    program: AffineProgram,
    warnings: Vec<String>,
    opts: crate::protocol::CompileOptions,
    key: Vec<u8>,
    prefix_key: Vec<u8>,
}

/// Per-worker compile state: the persistent [`CompileSession`] (warm
/// Presburger caches) plus a bounded cache of ε-independent
/// [`CharacterizedProgram`] prefixes.
pub struct WorkerState {
    session: CompileSession,
    prefix: HashMap<Vec<u8>, Arc<CharacterizedProgram>>,
}

/// Prefix entries per worker; generational clear on overflow, like the
/// other bounded caches. Characterized mini-suite programs are a few KB
/// each, so this bounds worker memory to low MB.
const PREFIX_CACHE_CAP: usize = 64;

impl WorkerState {
    /// Fresh state: empty session caches, empty prefix cache.
    pub fn new() -> Self {
        WorkerState {
            session: CompileSession::new(),
            prefix: HashMap::new(),
        }
    }
}

impl Default for WorkerState {
    fn default() -> Self {
        WorkerState::new()
    }
}

/// The serving engine: worker pool + artifact cache + counters + the
/// self-healing layer (deadline watchdog, worker replacement, quarantine
/// circuit breaker, seeded chaos injection).
pub struct Engine {
    pool: Arc<StatefulPool<WorkerState>>,
    cache: Arc<ArtifactCache>,
    shared: Arc<Shared>,
    inflight: Arc<InflightRegistry>,
    chaos: Arc<ChaosPlan>,
    /// Per-fingerprint chaos attempt counters (bounded; only touched
    /// when a chaos plan is active).
    attempts: OrderedMutex<HashMap<Vec<u8>, u64>>,
    watchdog: OrderedMutex<Option<Watchdog>>,
    deadline: Option<Duration>,
    quarantine_threshold: u32,
    shutdown_grace: Duration,
    workers: usize,
    queue_cap: usize,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers)
            .field("queue_cap", &self.queue_cap)
            .finish()
    }
}

impl Engine {
    /// Builds the engine: spawns the workers (each with a persistent
    /// [`WorkerState`]), allocates the sharded artifact cache
    /// (`next_pow2(workers * 4)` shards), and — when a deadline is
    /// configured — starts the watchdog thread.
    pub fn new(cfg: &EngineConfig) -> Self {
        let workers = cfg.workers.max(1);
        let engine = Engine {
            pool: Arc::new(StatefulPool::new(cfg.workers, cfg.queue_cap, |_| {
                WorkerState::new()
            })),
            cache: Arc::new(ArtifactCache::new(cfg.cache_capacity, workers * 4)),
            shared: Arc::new(Shared::default()),
            inflight: Arc::new(InflightRegistry::default()),
            chaos: Arc::new(cfg.chaos.clone()),
            attempts: OrderedMutex::new("serve.chaos.attempts", HashMap::new()),
            watchdog: OrderedMutex::new("serve.watchdog.handle", None),
            deadline: cfg.deadline,
            quarantine_threshold: cfg.quarantine_threshold,
            shutdown_grace: cfg.shutdown_grace,
            workers,
            queue_cap: cfg.queue_cap.max(1),
        };
        if let Some(deadline) = cfg.deadline {
            *engine.watchdog.lock().unwrap() = Some(spawn_watchdog(
                deadline,
                cfg.quarantine_threshold,
                Arc::clone(&engine.inflight),
                Arc::clone(&engine.cache),
                Arc::clone(&engine.shared),
                Arc::clone(&engine.pool),
            ));
        }
        engine
    }

    /// Installs the worker-pool completion hook (the reactor's doorbell:
    /// one wakeup-fd write after every finished compile job).
    pub fn set_completion_hook<F>(&self, hook: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        self.pool.set_completion_hook(hook);
    }

    /// Handles one request line, blocking until the response body exists.
    /// Never panics on any input; every failure is a typed error body.
    /// (The legacy thread-per-connection path; the reactor uses
    /// [`Engine::submit`].)
    pub fn handle_line(&self, line: &str) -> Outcome {
        let (tx, rx) = std::sync::mpsc::channel();
        match self.submit(line, move |b| {
            let _ = tx.send(b);
        }) {
            Submitted::Ready(b) => Outcome::Reply(body_string(&b)),
            Submitted::ReadyShutdown(b) => Outcome::ReplyAndShutdown(body_string(&b)),
            Submitted::Pending => {
                let body = rx.recv().expect("every flight completes");
                Outcome::Reply(body_string(&body))
            }
        }
    }

    /// Handles one request line without blocking on compiles: fast-path
    /// requests (line-tier hits, pings, stats, cache hits, typed errors)
    /// return [`Submitted::Ready`]; everything that needs a worker
    /// returns [`Submitted::Pending`] and later delivers the body through
    /// `notify` — exactly once, possibly on a worker thread, possibly
    /// inline before `submit` returns (e.g. an immediate shed).
    pub fn submit<F>(&self, line: &str, notify: F) -> Submitted
    where
        F: FnOnce(Body) + Send + 'static,
    {
        let t0 = Instant::now();
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        // L0: byte-identical repeat of a compile line — skip parsing,
        // sanitizing, and fingerprinting entirely.
        if let Some(body) = self.cache.line_get(line) {
            return self.ready(t0, body);
        }
        let req = match parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                self.shared.errors.fetch_add(1, Ordering::Relaxed);
                return self.ready(t0, string_body(e.render()));
            }
        };
        match req {
            Request::Ping => self.ready(t0, string_body("{\"ok\":true,\"pong\":true}".into())),
            Request::Stats => self.ready(t0, string_body(self.stats_json())),
            Request::Shutdown => {
                let body = string_body("{\"ok\":true,\"shutdown\":true}".into());
                self.shared.latency.record_us(elapsed_us(t0));
                Submitted::ReadyShutdown(body)
            }
            Request::Compile(c) => self.submit_compile(t0, line, &c, notify),
        }
    }

    fn ready(&self, t0: Instant, body: Body) -> Submitted {
        self.shared.latency.record_us(elapsed_us(t0));
        Submitted::Ready(body)
    }

    fn submit_compile<F>(
        &self,
        t0: Instant,
        line: &str,
        req: &CompileRequest,
        notify: F,
    ) -> Submitted
    where
        F: FnOnce(Body) + Send + 'static,
    {
        let prepared = match prepare(req) {
            Ok(p) => p,
            Err(e) => {
                self.shared.errors.fetch_add(1, Ordering::Relaxed);
                return self.ready(t0, string_body(e.render()));
            }
        };
        // Circuit breaker: a fingerprint that struck out serves its
        // cached typed rejection without touching a worker. Never
        // promoted to the line tier — quarantine is daemon state, not a
        // deterministic property of the request.
        if let Some(body) = self.cache.quarantine_get(&prepared.prefix_key) {
            self.shared.errors.fetch_add(1, Ordering::Relaxed);
            return self.ready(t0, body);
        }
        match self.cache.lookup(&prepared.key) {
            Lookup::Hit(body) => {
                self.cache.line_put(line, &body);
                self.ready(t0, body)
            }
            Lookup::Wait(flight) => {
                self.attach(t0, line, &flight, notify);
                Submitted::Pending
            }
            Lookup::Lead(flight) => {
                self.attach(t0, line, &flight, notify);
                let cache = Arc::clone(&self.cache);
                let shared = Arc::clone(&self.shared);
                let inflight = Arc::clone(&self.inflight);
                let job_flight = Arc::clone(&flight);
                let key = prepared.key.clone();
                let lead_key = prepared.key.clone();
                let fingerprint = prepared.prefix_key.clone();
                let threshold = self.quarantine_threshold;
                // Chaos is decided here, deterministically, not on the
                // worker — submission order fixes the attempt counter.
                let fault = self.next_compile_fault(&prepared.prefix_key);
                // Registered for every lead (not just under a deadline):
                // the shutdown drain needs the full pending set.
                let ticket =
                    inflight.register(key.clone(), fingerprint.clone(), Arc::clone(&job_flight));
                let submitted = self.pool.try_execute(move |state: &mut WorkerState| {
                    // A panicking pass must not take the worker (or the
                    // daemon) down, and must not leave its followers
                    // parked forever; contain it, answer `internal`, and
                    // hand the worker fresh state in case the old one was
                    // poisoned mid-update.
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        match fault {
                            Some(CompileFault::Slow(d)) | Some(CompileFault::Hang(d)) => {
                                std::thread::sleep(d);
                            }
                            Some(CompileFault::Panic) => {
                                panic!("chaos: injected compile panic");
                            }
                            None => {}
                        }
                        compile_prepared(&prepared, state)
                    }));
                    // `false` means the watchdog (deadline) or shutdown
                    // already aborted this flight: the late result must
                    // not clear strikes, and fulfill/abort below are
                    // harmless no-ops past the flight's completion.
                    let owned = inflight.deregister(ticket);
                    match run {
                        Ok((body, report, prefix_hit)) => {
                            if owned {
                                cache.clear_strikes(&fingerprint);
                            }
                            if prefix_hit {
                                shared.prefix_hits.fetch_add(1, Ordering::Relaxed);
                            } else {
                                shared.prefix_misses.fetch_add(1, Ordering::Relaxed);
                            }
                            match report {
                                Some(r) => {
                                    // A prefix hit re-ran only the search;
                                    // its report clones the cached stage-1–3
                                    // counters, which were already totaled
                                    // when the prefix was built.
                                    if !prefix_hit {
                                        shared.counts.add(&r);
                                    }
                                    shared.compiled.fetch_add(1, Ordering::Relaxed);
                                }
                                None => {
                                    shared.errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            cache.fulfill(&key, &job_flight, string_body(body));
                        }
                        Err(_) => {
                            *state = WorkerState::new();
                            // Strike only while owning the ticket: if the
                            // watchdog (or shutdown) already took it, it
                            // already recorded this failure — striking
                            // again would count one failed request twice
                            // toward quarantine.
                            if owned {
                                cache.record_strike(&fingerprint, threshold, quarantine_body);
                            }
                            cache.abort(&key, &job_flight, Abort::Internal);
                        }
                    }
                });
                if let Err(rejected) = submitted {
                    drop(rejected); // the boxed job, returned unrun
                    self.inflight.deregister(ticket);
                    self.shared.shed.fetch_add(1, Ordering::Relaxed);
                    // Completes the flight inline: every subscriber —
                    // including this request's own — gets the typed
                    // `overloaded` body through its callback.
                    self.cache.abort(&lead_key, &flight, Abort::Overloaded);
                }
                Submitted::Pending
            }
        }
    }

    /// Draws the (deterministic) chaos fault for one compile submission
    /// and counts it. Pristine plans return `None` without touching the
    /// attempt table — the hot path stays byte- and work-identical.
    fn next_compile_fault(&self, fingerprint: &[u8]) -> Option<CompileFault> {
        if self.chaos.is_pristine() {
            return None;
        }
        let attempt = {
            let mut m = self.attempts.lock().unwrap();
            if m.len() >= 4096 && !m.contains_key(fingerprint) {
                m.clear(); // generational bound, like the other caches
            }
            let e = m.entry(fingerprint.to_vec()).or_insert(0);
            let a = *e;
            *e += 1;
            a
        };
        let fault = self.chaos.compile_fault(fingerprint, attempt);
        if fault.is_some() {
            self.shared.chaos_injections.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// Subscribes this request's completion callback to a flight: on
    /// fulfill the body is promoted to the exact-line tier; on abort a
    /// typed error is rendered per subscriber. Latency is recorded at
    /// completion, so queue wait counts as service time.
    fn attach<F>(&self, t0: Instant, line: &str, flight: &Arc<Flight>, notify: F)
    where
        F: FnOnce(Body) + Send + 'static,
    {
        let cache = Arc::clone(&self.cache);
        let shared = Arc::clone(&self.shared);
        let line = line.to_string();
        flight.subscribe(move |res| {
            let body = match res {
                Ok(body) => {
                    cache.line_put(&line, &body);
                    body
                }
                Err(abort) => {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    string_body(abort_error(abort).render())
                }
            };
            shared.latency.record_us(elapsed_us(t0));
            notify(body);
        });
    }

    /// The structured `stats` response (deterministic field order; values
    /// are live counters).
    pub fn stats_json(&self) -> String {
        let a = self.cache.stats();
        let m = polyufc_machine::measure_cache_stats();
        let c = &self.shared.counts;
        let (lat_n, lat_p50, lat_p99, lat_max) = self.shared.latency.summary();
        let mut s = String::with_capacity(768);
        s.push_str("{\"ok\":true,\"schema\":\"polyufc-stats/1\",\"server\":{");
        push_u64(&mut s, "workers", self.workers as u64);
        push_u64(&mut s, "queue_capacity", self.queue_cap as u64);
        push_u64(
            &mut s,
            "requests",
            self.shared.requests.load(Ordering::Relaxed),
        );
        push_u64(
            &mut s,
            "compiled",
            self.shared.compiled.load(Ordering::Relaxed),
        );
        push_u64(&mut s, "errors", self.shared.errors.load(Ordering::Relaxed));
        push_u64(&mut s, "shed", self.shared.shed.load(Ordering::Relaxed));
        push_u64(
            &mut s,
            "prefix_hits",
            self.shared.prefix_hits.load(Ordering::Relaxed),
        );
        push_u64(
            &mut s,
            "prefix_misses",
            self.shared.prefix_misses.load(Ordering::Relaxed),
        );
        s.pop(); // trailing comma
        s.push_str("},\"latency\":{");
        push_u64(&mut s, "count", lat_n);
        push_u64(&mut s, "p50_us", lat_p50);
        push_u64(&mut s, "p99_us", lat_p99);
        push_u64(&mut s, "max_us", lat_max);
        s.pop();
        s.push_str("},\"artifact_cache\":{");
        push_u64(&mut s, "hits", a.hits);
        push_u64(&mut s, "misses", a.misses);
        push_u64(&mut s, "evictions", a.evictions);
        push_u64(&mut s, "entries", a.entries as u64);
        push_u64(&mut s, "inflight", a.inflight as u64);
        push_u64(&mut s, "line_entries", a.line_entries as u64);
        s.push_str("\"hit_rate\":");
        s.push_str(&fmt_f64(a.hit_rate()));
        s.push_str("},\"measure_cache\":{");
        push_u64(&mut s, "hits", m.hits);
        push_u64(&mut s, "misses", m.misses);
        push_u64(&mut s, "evictions", m.evictions);
        push_u64(&mut s, "entries", m.len as u64);
        s.push_str("\"hit_rate\":");
        s.push_str(&fmt_f64(m.hit_rate()));
        s.push_str("},\"count_cache\":{");
        push_u64(&mut s, "hits", c.hits.load(Ordering::Relaxed));
        push_u64(&mut s, "misses", c.misses.load(Ordering::Relaxed));
        push_u64(&mut s, "symbolic", c.symbolic.load(Ordering::Relaxed));
        push_u64(&mut s, "enumerated", c.enumerated.load(Ordering::Relaxed));
        push_u64(&mut s, "evictions", c.evictions.load(Ordering::Relaxed));
        push_u64(
            &mut s,
            "parallel_splits",
            c.parallel_splits.load(Ordering::Relaxed),
        );
        s.pop();
        // Present only in lockdep-instrumented builds: the default build
        // emits byte-identical stats with or without the chk dep.
        if let Some(l) = polyufc_chk::lockdep_stats() {
            s.push_str("},\"chk\":{");
            push_u64(&mut s, "lock_sites", l.sites);
            push_u64(&mut s, "order_edges", l.edges);
            push_u64(&mut s, "max_chain", l.max_chain);
            push_u64(&mut s, "cycles", l.cycles);
            s.pop();
        }
        s.push_str("},\"self_heal\":{");
        push_u64(
            &mut s,
            "deadline_ms",
            self.deadline.map_or(0, |d| d.as_millis() as u64),
        );
        push_u64(
            &mut s,
            "deadlines",
            self.shared.deadlines.load(Ordering::Relaxed),
        );
        push_u64(&mut s, "workers_replaced", self.pool.workers_replaced());
        push_u64(&mut s, "quarantined", a.quarantined as u64);
        push_u64(&mut s, "quarantined_total", a.quarantined_total);
        push_u64(&mut s, "quarantine_hits", a.quarantine_hits);
        push_u64(
            &mut s,
            "chaos_injections",
            self.shared.chaos_injections.load(Ordering::Relaxed),
        );
        s.pop();
        s.push_str("}}");
        s
    }

    /// Artifact-cache counters (for tests and the loadtest harness).
    pub fn cache_stats(&self) -> ArtifactCacheStats {
        self.cache.stats()
    }

    /// Latency summary (count, p50 µs, p99 µs, max µs).
    pub fn latency_summary(&self) -> (u64, u64, u64, u64) {
        self.shared.latency.summary()
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Hard request-size limit (re-exported for line readers).
    pub fn max_request_bytes(&self) -> usize {
        MAX_REQUEST_BYTES
    }

    /// The engine's chaos plan (pristine unless configured otherwise);
    /// the reactor consults it for socket-level injection.
    pub fn chaos(&self) -> &ChaosPlan {
        &self.chaos
    }

    /// Counts one socket-level chaos injection (rung by the reactor).
    pub fn count_chaos_injection(&self) {
        self.shared.chaos_injections.fetch_add(1, Ordering::Relaxed);
    }

    /// Workers detached and replaced by the stall watchdog so far.
    pub fn workers_replaced(&self) -> u64 {
        self.pool.workers_replaced()
    }

    /// Flights aborted by the deadline watchdog so far.
    pub fn deadlines_fired(&self) -> u64 {
        self.shared.deadlines.load(Ordering::Relaxed)
    }

    /// Stops the watchdog, drains queued compiles, and joins the workers
    /// — bounded by the configured shutdown grace: workers still stuck
    /// past it are detached, and every flight still pending afterwards
    /// completes with a typed `shutting_down` error so no waiter (or
    /// blocked [`Engine::handle_line`] caller) hangs. Idempotent, and
    /// callable through a shared reference (the server calls it on its
    /// `Arc<Engine>`).
    pub fn shutdown(&self) {
        let watchdog = self.watchdog.lock().unwrap().take();
        if let Some(w) = watchdog {
            w.stop();
        }
        self.pool.shutdown_with_grace(self.shutdown_grace);
        for e in self.inflight.drain() {
            self.cache.abort(&e.key, &e.flight, Abort::ShuttingDown);
        }
    }
}

fn elapsed_us(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn string_body(s: String) -> Body {
    Arc::from(s.into_bytes().into_boxed_slice())
}

fn body_string(b: &Body) -> String {
    String::from_utf8(b.to_vec()).expect("response bodies are rendered UTF-8")
}

/// Parses, sanitizes, and keys one compile request on the calling
/// (reactor/connection) thread.
///
/// # Errors
///
/// `parse_error` when the kernel source does not parse.
pub fn prepare(req: &CompileRequest) -> Result<Prepared, WireError> {
    let mut program = match req.format {
        crate::protocol::SourceFormat::TextualIr => parse_affine_program(&req.source)
            .map_err(|e| WireError::new(codes::PARSE_ERROR, format!("textual IR: {e}")))?,
        crate::protocol::SourceFormat::C => parse_scop(&req.source, &req.name)
            .map_err(|e| WireError::new(codes::PARSE_ERROR, format!("cgeist: {e}")))?,
    };
    // The daemon and the one-shot CLI must transform the program
    // identically or byte-identity breaks: sanitize unprovable `parallel`
    // flags here, before fingerprinting, exactly as `polyufc compile`
    // does before its pipeline call.
    let warnings: Vec<String> = sanitize_parallel(&mut program)
        .iter()
        .map(|d| d.to_string())
        .collect();
    let (key, prefix_key) = artifact_keys(&program, &warnings, &req.opts);
    Ok(Prepared {
        program,
        warnings,
        opts: req.opts.clone(),
        key,
        prefix_key,
    })
}

/// The content addresses of a request, full and prefix.
///
/// The **artifact key** covers everything response bytes depend on:
/// pipeline configuration, the structural program fingerprint the
/// measure cache already computes, the program's rendered text
/// (fingerprints deliberately exclude names, but responses embed them),
/// and the sanitize trace (distinct pre-sanitize sources can converge on
/// one program yet carry different warnings).
///
/// The **prefix key** covers only what stages 1–3 depend on — platform,
/// associativity mode, and the program itself — so one characterization
/// prefix serves every ε/objective/emit variant of a program.
fn artifact_keys(
    program: &AffineProgram,
    warnings: &[String],
    opts: &crate::protocol::CompileOptions,
) -> (Vec<u8>, Vec<u8>) {
    let field = |key: &mut Vec<u8>, bytes: &[u8]| {
        key.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        key.extend_from_slice(bytes);
    };
    let text = format!("{program}");
    let fingerprint = program_fingerprint(&opts.platform, program);

    let mut prefix = Vec::with_capacity(text.len() + 128);
    field(&mut prefix, b"polyufc-prefix/1");
    field(&mut prefix, opts.platform.name.as_bytes());
    field(&mut prefix, assoc_str(opts.assoc).as_bytes());
    field(&mut prefix, &fingerprint);
    field(&mut prefix, text.as_bytes());

    let mut key = Vec::with_capacity(text.len() + 192);
    field(&mut key, b"polyufc-artifact/1");
    field(&mut key, opts.platform.name.as_bytes());
    field(&mut key, objective_str(opts.objective).as_bytes());
    field(&mut key, assoc_str(opts.assoc).as_bytes());
    field(&mut key, &opts.epsilon.to_le_bytes());
    field(&mut key, &[opts.emit_scf as u8]);
    field(&mut key, &fingerprint);
    field(&mut key, text.as_bytes());
    for w in warnings {
        field(&mut key, w.as_bytes());
    }
    (key, prefix)
}

/// Runs the pipeline for a prepared request against per-worker state and
/// renders the response body. The report is `Some` only for successful
/// compiles; the final flag says whether the ε-independent prefix came
/// from the worker's cache (in which case only POLYUFC-SEARCH and code
/// generation ran). Rejection and model errors render as deterministic
/// typed bodies, which are cached like artifacts.
pub fn compile_prepared(
    p: &Prepared,
    state: &mut WorkerState,
) -> (String, Option<CompileReport>, bool) {
    let mut pipeline = Pipeline::new(p.opts.platform.clone())
        .with_objective(p.opts.objective)
        .with_assoc_mode(p.opts.assoc);
    pipeline.epsilon = p.opts.epsilon;
    if let Some(ch) = state.prefix.get(&p.prefix_key) {
        let ch = Arc::clone(ch);
        let out = pipeline.finish_characterized((*ch).clone());
        let report = out.report.clone();
        return (render_artifact(p, &out), Some(report), true);
    }
    match pipeline.characterize_affine_in(&p.program, &mut state.session) {
        Ok(ch) => {
            if state.prefix.len() >= PREFIX_CACHE_CAP {
                // Generational clear, like the other bounded caches.
                state.prefix.clear();
            }
            let ch = Arc::new(ch);
            state.prefix.insert(p.prefix_key.clone(), Arc::clone(&ch));
            let out = pipeline.finish_characterized((*ch).clone());
            let report = out.report.clone();
            (render_artifact(p, &out), Some(report), false)
        }
        Err(polyufc::Error::AnalysisRejected(report)) => (render_rejected(&report), None, false),
        Err(polyufc::Error::Model(e)) => (
            render_error(codes::MODEL, &format!("cache model: {e}")),
            None,
            false,
        ),
    }
}

/// One-shot entry point shared with `polyufc compile --json`: same
/// prepare, same pipeline, same renderer, fresh state — so the CLI's
/// output is byte-identical to the daemon's response for the same
/// request, cached or not.
pub fn oneshot_response(req: &CompileRequest) -> String {
    match prepare(req) {
        Ok(p) => compile_prepared(&p, &mut WorkerState::new()).0,
        Err(e) => e.render(),
    }
}

fn abort_error(abort: Abort) -> WireError {
    match abort {
        Abort::Overloaded => WireError::new(
            codes::OVERLOADED,
            "all workers busy and the queue is full; retry later",
        ),
        Abort::Internal => WireError::new(
            codes::INTERNAL,
            "compile worker panicked; the daemon recovered, this request did not",
        ),
        Abort::DeadlineExceeded => WireError::new(
            codes::DEADLINE_EXCEEDED,
            "compile exceeded the configured deadline; the flight was aborted",
        ),
        Abort::ShuttingDown => WireError::new(
            codes::SHUTTING_DOWN,
            "daemon is shutting down; the request was not compiled",
        ),
    }
}

/// The deterministic cached rejection a quarantined fingerprint serves.
fn quarantine_body() -> Body {
    string_body(render_error(
        codes::QUARANTINED,
        "kernel repeatedly crashed or timed out compile workers and is quarantined; \
         fix the kernel or restart the daemon",
    ))
}

/// Starts the deadline watchdog: every `deadline/4` (clamped to
/// 2–250 ms) it aborts expired flights with `deadline_exceeded`, records
/// quarantine strikes against their fingerprints, and replaces workers
/// stuck past 1.5× the deadline — so a hung compile costs one bounded
/// window of one worker, never the daemon.
fn spawn_watchdog(
    deadline: Duration,
    quarantine_threshold: u32,
    inflight: Arc<InflightRegistry>,
    cache: Arc<ArtifactCache>,
    shared: Arc<Shared>,
    pool: Arc<StatefulPool<WorkerState>>,
) -> Watchdog {
    let stop = Arc::new((
        OrderedMutex::new("serve.watchdog.latch", false),
        OrderedCondvar::new("serve.watchdog.latch"),
    ));
    let latch = Arc::clone(&stop);
    let period = (deadline / 4).clamp(Duration::from_millis(2), Duration::from_millis(250));
    let stall_threshold = deadline + deadline / 2;
    let handle = std::thread::Builder::new()
        .name("polyufc-watchdog".to_string())
        .spawn(move || {
            let (lock, cv) = &*latch;
            loop {
                // Park against an absolute scan deadline: a spurious (or
                // early) wakeup re-checks stop and keeps waiting for the
                // remainder instead of rescanning immediately.
                let next_scan = Instant::now() + period;
                {
                    let mut stopped = lock.lock().unwrap();
                    loop {
                        if *stopped {
                            return;
                        }
                        let now = Instant::now();
                        if now >= next_scan {
                            break;
                        }
                        let (guard, _timeout) = cv.wait_timeout(stopped, next_scan - now).unwrap();
                        stopped = guard;
                    }
                    // Latch released here: the scan below takes the
                    // inflight, shard, and flight locks, and holding the
                    // latch across them would order the latch before all
                    // of them — a shutdown stuck behind a slow scan, and
                    // three lock-order edges the daemon doesn't need.
                }
                for e in inflight.take_expired(deadline) {
                    shared.deadlines.fetch_add(1, Ordering::Relaxed);
                    cache.record_strike(&e.fingerprint, quarantine_threshold, quarantine_body);
                    // Wakes the leader's and every follower's callbacks
                    // with the typed error; the worker's late fulfill (if
                    // the compile ever returns) is a no-op past this.
                    cache.abort(&e.key, &e.flight, Abort::DeadlineExceeded);
                }
                pool.replace_stalled(stall_threshold);
            }
        })
        .expect("spawn watchdog");
    Watchdog { stop, handle }
}

fn push_u64(out: &mut String, key: &str, v: u64) {
    push_escaped(out, key);
    out.push(':');
    out.push_str(&format!("{v}"));
    out.push(',');
}

/// Renders the cap artifact with a fixed field order and no
/// wall-clock- or session-warmth-dependent fields (those live in `stats`),
/// so identical requests produce identical bytes whether answered by a
/// cold compile, a warm session, a cached prefix, the artifact cache, or
/// the one-shot CLI.
fn render_artifact(p: &Prepared, out: &PipelineOutput) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str("{\"ok\":true,\"schema\":\"polyufc-artifact/1\",\"program\":");
    push_escaped(&mut s, &out.optimized.name);
    s.push_str(",\"platform\":");
    push_escaped(&mut s, &p.opts.platform.name);
    s.push_str(",\"objective\":");
    push_escaped(&mut s, objective_str(p.opts.objective));
    s.push_str(",\"epsilon\":");
    s.push_str(&fmt_f64(p.opts.epsilon));
    s.push_str(",\"assoc\":");
    push_escaped(&mut s, assoc_str(p.opts.assoc));
    s.push_str(",\"kernels\":[");
    let rows = out
        .optimized
        .kernels
        .iter()
        .zip(&out.characterizations)
        .zip(&out.search)
        .zip(&out.caps_ghz);
    for (i, (((k, ch), sr), &cap)) in rows.enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"name\":");
        push_escaped(&mut s, &k.name);
        s.push_str(",\"class\":");
        push_escaped(&mut s, &format!("{}", ch.class));
        s.push_str(",\"oi\":");
        s.push_str(&fmt_f64(ch.oi));
        s.push_str(",\"balance\":");
        s.push_str(&fmt_f64(ch.balance));
        s.push_str(",\"attainable_flops\":");
        s.push_str(&fmt_f64(ch.attainable_flops));
        s.push_str(",\"cap_ghz\":");
        s.push_str(&fmt_f64(cap));
        s.push_str(",\"search_steps\":");
        s.push_str(&format!("{}", sr.steps));
        s.push('}');
    }
    s.push_str("],\"fallback\":[");
    for (i, name) in out.report.fallback_kernels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_escaped(&mut s, name);
    }
    s.push_str("],\"warnings\":[");
    for (i, w) in p
        .warnings
        .iter()
        .chain(&out.report.verify_warnings)
        .enumerate()
    {
        if i > 0 {
            s.push(',');
        }
        push_escaped(&mut s, w);
    }
    s.push(']');
    if p.opts.emit_scf {
        s.push_str(",\"scf\":");
        push_escaped(&mut s, &format!("{}", out.scf));
    }
    s.push('}');
    s
}

/// Renders a verifier rejection: a typed error whose payload carries every
/// diagnostic (the "lint over the wire" half of the daemon's contract).
fn render_rejected(report: &polyufc_analysis::AnalysisReport) -> String {
    let mut s = String::with_capacity(256);
    s.push_str("{\"ok\":false,\"error\":{\"code\":");
    push_escaped(&mut s, codes::REJECTED);
    s.push_str(",\"message\":");
    push_escaped(
        &mut s,
        &format!("static verifier rejected `{}`", report.program),
    );
    s.push_str(",\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_escaped(&mut s, &d.to_string());
    }
    s.push_str("]}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for us in [1u64, 2, 3, 100, 100, 100, 100, 100, 100, 5000] {
            h.record_us(us);
        }
        let (n, p50, p99, max) = h.summary();
        assert_eq!(n, 10);
        assert_eq!(max, 5000);
        // p50 lands in the 100 µs bucket: upper bound 128.
        assert_eq!(p50, 128);
        // p99 is the slowest sample's bucket: 5000 µs → upper bound 8192.
        assert_eq!(p99, 8192);
    }

    #[test]
    fn prefix_cache_reuses_characterization_across_epsilons() {
        let source = "// affine program `copy`\nmemref %A : 512xf64\nmemref %B : 512xf64\nfunc @k {\n  affine.for %i0 = max(0) to min(512) {\n    S0: load %A[i0]; store %B[i0] // 1 flops\n  }\n}\n";
        let mut state = WorkerState::new();
        let mut bodies = Vec::new();
        for (i, eps) in [1e-3, 2e-3, 4e-3].into_iter().enumerate() {
            let mut req = CompileRequest {
                format: crate::protocol::SourceFormat::TextualIr,
                source: source.to_string(),
                name: "request".to_string(),
                opts: crate::protocol::CompileOptions::default(),
            };
            req.opts.epsilon = eps;
            let p = prepare(&req).expect("prepare");
            let (body, report, prefix_hit) = compile_prepared(&p, &mut state);
            assert!(report.is_some());
            assert_eq!(prefix_hit, i > 0, "first compile builds the prefix");
            // Each variant must also match a completely fresh compile.
            assert_eq!(body, oneshot_response(&req), "prefix hit changed bytes");
            bodies.push(body);
        }
        assert_eq!(state.prefix.len(), 1, "one prefix entry for 3 epsilons");
    }
}
