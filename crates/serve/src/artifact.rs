//! The content-addressed artifact cache with single-flight deduplication.
//!
//! Keys are byte-exact structural fingerprints (built by the engine from
//! [`polyufc_machine::program_fingerprint`] plus the request's pipeline
//! configuration and the response-visible names); values are fully
//! rendered response bodies. Caching the *bytes* rather than a parsed
//! artifact makes the hot path a single map probe + `Arc` clone, and
//! makes byte-identity between hits, fresh compilations, and the
//! one-shot CLI a structural property instead of a test hope.
//!
//! **Single flight:** when N requests for the same key arrive
//! concurrently, the first becomes the *leader* and compiles; the other
//! N−1 become *followers* and block on the leader's [`Flight`] instead of
//! burning N−1 workers on identical compilations. Followers count as
//! cache hits — they are served from shared work, not their own.
//!
//! **Bounding:** like the `MeasureCache`/`CountCache`, eviction is
//! generational — when the ready-entry count reaches capacity the next
//! insert clears every ready entry (one `evictions` tick) while in-flight
//! leaders are retained, since dropping a pending flight would strand its
//! followers.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Why an in-flight compilation finished without an artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Abort {
    /// The leader could not enqueue the compile job (queue full).
    Overloaded,
    /// The compile job panicked; the worker recovered with a fresh
    /// session.
    Internal,
}

/// The rendezvous for one in-flight compilation.
#[derive(Debug, Default)]
pub struct Flight {
    slot: Mutex<Option<Result<Arc<String>, Abort>>>,
    cv: Condvar,
}

impl Flight {
    /// Blocks until the leader fulfills or aborts this flight.
    pub fn wait(&self) -> Result<Arc<String>, Abort> {
        let mut slot = self.slot.lock().unwrap();
        loop {
            if let Some(r) = slot.as_ref() {
                return r.clone();
            }
            slot = self.cv.wait(slot).unwrap();
        }
    }

    fn complete(&self, r: Result<Arc<String>, Abort>) {
        let mut slot = self.slot.lock().unwrap();
        // First completion wins; a second (e.g. abort racing fulfill)
        // must not overwrite what waiters may already have cloned.
        if slot.is_none() {
            *slot = Some(r);
            self.cv.notify_all();
        }
    }
}

/// A snapshot of the cache's counters, for the `stats` request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtifactCacheStats {
    /// Lookups served from a ready entry or a shared in-flight compile.
    pub hits: u64,
    /// Lookups that became compile leaders.
    pub misses: u64,
    /// Generational clears performed on overflow.
    pub evictions: u64,
    /// Ready entries currently resident.
    pub entries: usize,
    /// Compilations currently in flight.
    pub inflight: usize,
}

impl ArtifactCacheStats {
    /// Hit rate in `[0, 1]`; zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
enum Slot {
    Ready(Arc<String>),
    Pending(Arc<Flight>),
}

#[derive(Debug)]
struct Inner {
    map: HashMap<Vec<u8>, Slot>,
    capacity: usize,
    ready: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The outcome of one cache probe.
pub enum Lookup {
    /// A ready artifact: return its bytes.
    Hit(Arc<String>),
    /// Someone else is compiling this key: wait on their flight.
    Wait(Arc<Flight>),
    /// This caller is the leader: compile, then
    /// [`ArtifactCache::fulfill`] (or [`ArtifactCache::abort`]) the
    /// flight.
    Lead(Arc<Flight>),
}

impl std::fmt::Debug for Lookup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Lookup::Hit(_) => "Lookup::Hit",
            Lookup::Wait(_) => "Lookup::Wait",
            Lookup::Lead(_) => "Lookup::Lead",
        })
    }
}

/// Bounded content-addressed response cache with single-flight dedup.
#[derive(Debug)]
pub struct ArtifactCache {
    inner: Mutex<Inner>,
}

impl ArtifactCache {
    /// A cache bounded to `capacity` ready entries (at least 1).
    pub fn new(capacity: usize) -> Self {
        ArtifactCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                capacity: capacity.max(1),
                ready: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Probes the cache; a miss atomically registers this caller as the
    /// key's compile leader.
    pub fn lookup(&self, key: &[u8]) -> Lookup {
        let mut inner = self.inner.lock().unwrap();
        match inner.map.get(key) {
            Some(Slot::Ready(body)) => {
                let body = Arc::clone(body);
                inner.hits += 1;
                Lookup::Hit(body)
            }
            Some(Slot::Pending(flight)) => {
                let flight = Arc::clone(flight);
                inner.hits += 1; // served from the leader's work
                Lookup::Wait(flight)
            }
            None => {
                inner.misses += 1;
                let flight = Arc::new(Flight::default());
                inner
                    .map
                    .insert(key.to_vec(), Slot::Pending(Arc::clone(&flight)));
                Lookup::Lead(flight)
            }
        }
    }

    /// Publishes the leader's rendered response: the pending slot becomes
    /// ready and every follower wakes with the same bytes.
    pub fn fulfill(&self, key: &[u8], flight: &Arc<Flight>, body: String) -> Arc<String> {
        let body = Arc::new(body);
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(Slot::Pending(f)) = inner.map.get(key) {
                if Arc::ptr_eq(f, flight) {
                    if inner.ready >= inner.capacity {
                        // Generational clear of ready entries only:
                        // pending flights have waiters parked on them.
                        inner.map.retain(|_, s| matches!(s, Slot::Pending(_)));
                        inner.ready = 0;
                        inner.evictions += 1;
                    }
                    inner
                        .map
                        .insert(key.to_vec(), Slot::Ready(Arc::clone(&body)));
                    inner.ready += 1;
                }
            }
        }
        flight.complete(Ok(Arc::clone(&body)));
        body
    }

    /// Cancels the leader's flight without publishing an artifact: the
    /// pending slot is removed (the next request for this key leads a
    /// fresh compile) and every follower wakes with `abort`.
    pub fn abort(&self, key: &[u8], flight: &Arc<Flight>, abort: Abort) {
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(Slot::Pending(f)) = inner.map.get(key) {
                if Arc::ptr_eq(f, flight) {
                    inner.map.remove(key);
                }
            }
        }
        flight.complete(Err(abort));
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ArtifactCacheStats {
        let inner = self.inner.lock().unwrap();
        ArtifactCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.ready,
            inflight: inner.map.len() - inner.ready,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn leader_then_hits() {
        let c = ArtifactCache::new(8);
        let flight = match c.lookup(b"k1") {
            Lookup::Lead(f) => f,
            other => panic!("{other:?}"),
        };
        let body = c.fulfill(b"k1", &flight, "resp".to_string());
        assert_eq!(*body, "resp");
        match c.lookup(b"k1") {
            Lookup::Hit(b) => assert_eq!(*b, "resp"),
            other => panic!("{other:?}"),
        }
        let st = c.stats();
        assert_eq!((st.hits, st.misses, st.entries, st.inflight), (1, 1, 1, 0));
    }

    #[test]
    fn followers_share_the_leaders_flight() {
        let c = Arc::new(ArtifactCache::new(8));
        let leader = match c.lookup(b"k") {
            Lookup::Lead(f) => f,
            other => panic!("{other:?}"),
        };
        let mut joins = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            joins.push(thread::spawn(move || match c.lookup(b"k") {
                Lookup::Hit(b) => (*b).clone(),
                Lookup::Wait(f) => (*f.wait().unwrap()).clone(),
                Lookup::Lead(_) => panic!("second leader for one key"),
            }));
        }
        c.fulfill(b"k", &leader, "shared".to_string());
        for j in joins {
            assert_eq!(j.join().unwrap(), "shared");
        }
        let st = c.stats();
        assert_eq!(st.misses, 1, "exactly one compile for 5 requests");
        assert_eq!(st.hits, 4);
    }

    #[test]
    fn abort_wakes_followers_and_frees_the_key() {
        let c = Arc::new(ArtifactCache::new(8));
        let leader = match c.lookup(b"k") {
            Lookup::Lead(f) => f,
            other => panic!("{other:?}"),
        };
        let follower = match c.lookup(b"k") {
            Lookup::Wait(f) => f,
            other => panic!("{other:?}"),
        };
        c.abort(b"k", &leader, Abort::Overloaded);
        assert_eq!(follower.wait().unwrap_err(), Abort::Overloaded);
        // The key is free again: the next request leads a fresh compile.
        assert!(matches!(c.lookup(b"k"), Lookup::Lead(_)));
        assert_eq!(c.stats().inflight, 1);
    }

    #[test]
    fn generational_eviction_retains_pending() {
        let c = ArtifactCache::new(2);
        for key in [b"a".as_slice(), b"b"] {
            match c.lookup(key) {
                Lookup::Lead(f) => {
                    c.fulfill(key, &f, "x".into());
                }
                other => panic!("{other:?}"),
            }
        }
        let pending = match c.lookup(b"inflight") {
            Lookup::Lead(f) => f,
            other => panic!("{other:?}"),
        };
        // Third ready insert overflows: ready entries clear, the pending
        // flight survives.
        match c.lookup(b"c") {
            Lookup::Lead(f) => {
                c.fulfill(b"c", &f, "y".into());
            }
            other => panic!("{other:?}"),
        }
        let st = c.stats();
        assert_eq!(st.evictions, 1);
        assert_eq!(st.entries, 1);
        assert_eq!(st.inflight, 1);
        c.fulfill(b"inflight", &pending, "z".into());
        match c.lookup(b"inflight") {
            Lookup::Hit(b) => assert_eq!(*b, "z"),
            other => panic!("{other:?}"),
        }
    }
}
