//! Single-flight primitives for the artifact cache: the [`Flight`]
//! rendezvous and the cache's shared result/abort types. The sharded
//! cache itself lives in [`crate::shard`].
//!
//! **Single flight:** when N requests for the same key arrive
//! concurrently, the first becomes the *leader* and compiles; the other
//! N−1 become *followers* and attach to the leader's [`Flight`] instead
//! of burning N−1 workers on identical compilations. Followers count as
//! cache hits — they are served from shared work, not their own.
//!
//! Followers attach in one of two ways:
//!
//! * [`Flight::subscribe`] — event-driven: the callback runs when the
//!   leader completes (on the completing thread), or immediately if the
//!   flight already finished. The epoll reactor uses this — it must never
//!   block, so a follower's connection slot is filled by a completion
//!   callback, not a parked thread.
//! * [`Flight::wait`] — blocking, built on `subscribe` over a channel.
//!   The legacy thread-per-connection path and tests use this.

use polyufc_chk::OrderedMutex;
use std::sync::Arc;

/// A fully rendered response body, shared zero-copy between the cache,
/// in-flight completions, and per-connection write queues.
pub type Body = Arc<[u8]>;

/// Why an in-flight compilation finished without an artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Abort {
    /// The leader could not enqueue the compile job (queue full).
    Overloaded,
    /// The compile job panicked; the worker recovered with a fresh
    /// session.
    Internal,
    /// The compile exceeded the configured per-request deadline; the
    /// watchdog aborted the flight (and may have replaced the worker).
    DeadlineExceeded,
    /// The daemon shut down while this flight was still pending; the
    /// request was never compiled.
    ShuttingDown,
}

/// A waiter attached to an in-flight compilation.
type Waiter = Box<dyn FnOnce(Result<Body, Abort>) + Send + 'static>;

enum FlightState {
    /// Leader still compiling; waiters queue here.
    Pending(Vec<Waiter>),
    /// Completed: late subscribers get the result immediately.
    Done(Result<Body, Abort>),
}

/// The rendezvous for one in-flight compilation.
pub struct Flight {
    state: OrderedMutex<FlightState>,
}

impl std::fmt::Debug for Flight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Flight")
    }
}

impl Default for Flight {
    fn default() -> Self {
        Flight {
            state: OrderedMutex::new("serve.flight", FlightState::Pending(Vec::new())),
        }
    }
}

impl Flight {
    /// Attaches a completion callback: runs on the completing thread when
    /// the leader fulfills or aborts, or inline right now if it already
    /// has. Callbacks run outside the flight's lock.
    pub fn subscribe<F>(&self, f: F)
    where
        F: FnOnce(Result<Body, Abort>) + Send + 'static,
    {
        let done = {
            let mut state = self.state.lock().unwrap();
            match &mut *state {
                FlightState::Pending(waiters) => {
                    waiters.push(Box::new(f));
                    return;
                }
                FlightState::Done(r) => r.clone(),
            }
        };
        f(done);
    }

    /// Blocks until the leader fulfills or aborts this flight.
    pub fn wait(&self) -> Result<Body, Abort> {
        let (tx, rx) = std::sync::mpsc::channel();
        self.subscribe(move |r| {
            let _ = tx.send(r);
        });
        rx.recv()
            .expect("flight completed or dropped without a result")
    }

    /// Completes the flight; first completion wins (e.g. an abort racing
    /// a fulfill must not overwrite what waiters already saw). Every
    /// queued waiter runs with a clone of the result.
    pub(crate) fn complete(&self, r: Result<Body, Abort>) {
        let waiters = {
            let mut state = self.state.lock().unwrap();
            match &mut *state {
                FlightState::Pending(waiters) => {
                    let waiters = std::mem::take(waiters);
                    *state = FlightState::Done(r.clone());
                    waiters
                }
                FlightState::Done(_) => return,
            }
        };
        for w in waiters {
            w(r.clone());
        }
    }
}

/// A snapshot of the cache's counters, for the `stats` request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtifactCacheStats {
    /// Lookups served from a ready entry, the exact-line response tier,
    /// or a shared in-flight compile.
    pub hits: u64,
    /// Lookups that became compile leaders.
    pub misses: u64,
    /// Generational clears performed on overflow (per shard).
    pub evictions: u64,
    /// Ready keyed entries currently resident (across all shards).
    pub entries: usize,
    /// Compilations currently in flight.
    pub inflight: usize,
    /// Exact-line response-tier entries currently resident.
    pub line_entries: usize,
    /// Structural fingerprints currently quarantined (poison-pill tier).
    pub quarantined: usize,
    /// Lookups answered by a cached quarantine rejection.
    pub quarantine_hits: u64,
    /// Fingerprints ever moved into quarantine (monotonic).
    pub quarantined_total: u64,
}

impl ArtifactCacheStats {
    /// Hit rate in `[0, 1]`; zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The outcome of one cache probe.
pub enum Lookup {
    /// A ready artifact: return its bytes.
    Hit(Body),
    /// Someone else is compiling this key: subscribe to (or wait on)
    /// their flight.
    Wait(Arc<Flight>),
    /// This caller is the leader: compile, then
    /// [`fulfill`](crate::shard::ArtifactCache::fulfill) (or
    /// [`abort`](crate::shard::ArtifactCache::abort)) the flight.
    Lead(Arc<Flight>),
}

impl std::fmt::Debug for Lookup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Lookup::Hit(_) => "Lookup::Hit",
            Lookup::Wait(_) => "Lookup::Wait",
            Lookup::Lead(_) => "Lookup::Lead",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn body(s: &str) -> Body {
        Arc::from(s.as_bytes())
    }

    #[test]
    fn subscribe_before_completion_runs_on_complete() {
        let f = Flight::default();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        f.subscribe(move |res| {
            assert_eq!(&*res.unwrap(), b"x");
            r.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 0, "must not run early");
        f.complete(Ok(body("x")));
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn subscribe_after_completion_runs_inline() {
        let f = Flight::default();
        f.complete(Err(Abort::Overloaded));
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        f.subscribe(move |res| {
            assert_eq!(res.unwrap_err(), Abort::Overloaded);
            r.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn first_completion_wins() {
        let f = Flight::default();
        f.complete(Ok(body("first")));
        f.complete(Err(Abort::Internal));
        assert_eq!(&*f.wait().unwrap(), b"first");
    }

    #[test]
    fn blocking_wait_crosses_threads() {
        let f = Arc::new(Flight::default());
        let waiter = {
            let f = Arc::clone(&f);
            std::thread::spawn(move || f.wait())
        };
        f.complete(Ok(body("shared")));
        assert_eq!(&*waiter.join().unwrap().unwrap(), b"shared");
    }
}
