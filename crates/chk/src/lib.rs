//! Concurrency correctness suite for the PolyUFC serving stack.
//!
//! Three layers, one crate:
//!
//! 1. **Lockdep** ([`sync`]): [`OrderedMutex`] / [`OrderedCondvar`]
//!    wrappers adopted by `crates/par` and `crates/serve`. With the
//!    `lockdep` feature they record a process-global lock-acquisition
//!    -order graph keyed by per-site class names and detect order cycles
//!    *online*, reporting a witness cycle together with the acquisition
//!    backtraces of both closing edges. Without the feature they compile
//!    to `#[repr(transparent)]` newtypes over `std::sync` with `#[inline]`
//!    passthrough — zero overhead, enforced by the serve_loadtest
//!    throughput gates in CI.
//!
//! 2. **Schedule-exploring protocol checker** ([`explore`], [`shim`],
//!    [`models`]): the four riskiest serving protocols — single-flight
//!    subscribe/abort, pipeline pause/resume, watchdog abort vs. worker
//!    panic vs. shutdown drain, and quarantine strike/reset — re-expressed
//!    as small deterministic state machines over a shim sync layer, then
//!    exhaustively explored over bounded thread interleavings (DFS with a
//!    preemption budget, seeded-random tail beyond the bound). Violations
//!    replay deterministically from a printed schedule string.
//!
//! 3. **Self-lint** lives in `crates/analysis::selflint` (it reuses the
//!    diagnostics/JSON infrastructure there); this crate provides the
//!    lock-discipline ground truth it lints against.

#![warn(missing_docs)]

pub mod explore;
pub mod models;
pub mod shim;
pub mod sync;

pub use explore::{ExploreStats, Explorer, Model, Violation};
pub use sync::{lockdep_stats, LockdepStats, OrderedCondvar, OrderedMutex};
