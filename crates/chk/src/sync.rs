//! Lock-order-checked synchronization primitives (lockdep).
//!
//! [`OrderedMutex`] and [`OrderedCondvar`] mirror the `std::sync` API with
//! one addition: every lock is created with a `&'static str` *site name*
//! (its lock class, e.g. `"serve.shard"`). With the `lockdep` feature
//! enabled, each acquisition records an edge `top-of-held-stack → class`
//! in a process-global order graph; a new edge that closes a directed
//! cycle is reported immediately with the witness cycle and the
//! acquisition backtraces of both the new edge and the first recorded
//! edge on the return path. Same-class nesting (two locks of one class
//! held at once) is reported as a self-cycle.
//!
//! Detection is *online* but non-fatal by default: the daemon keeps
//! serving, the report lands on stderr once per closing edge, and the
//! cycle count is exported via [`lockdep_stats`] (surfaced by
//! `polyufc stats` as the `chk` section). Set `POLYUFC_LOCKDEP_PANIC=1`
//! to turn a detected cycle into a panic (used by the regression tests).
//!
//! Without the feature every wrapper is a `#[repr(transparent)]` newtype
//! over its `std::sync` counterpart with `#[inline]` passthrough — the
//! compile-time assertions at the bottom of this file pin the layout, and
//! the serve_loadtest throughput gates in CI pin the behavior.
//!
//! Poison-safety: the detector's own state is guarded by a std mutex that
//! is always re-entered through poison recovery, and the per-thread held
//! stack is popped by guard `Drop` (which runs during unwinding), so a
//! panicking lock holder can neither wedge nor corrupt the detector — see
//! the `poisoned_holder_does_not_wedge_detector` regression test.

/// Aggregate lockdep counters for the `chk` stats section.
///
/// `None` is returned by [`lockdep_stats`] when the crate is built
/// without the `lockdep` feature, so callers emit nothing and the
/// default build's output stays byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockdepStats {
    /// Distinct lock classes (site names) registered so far.
    pub sites: u64,
    /// Distinct acquisition-order edges observed so far.
    pub edges: u64,
    /// Longest acyclic chain in the order graph (max graph depth).
    pub max_chain: u64,
    /// Lock-order cycles detected (0 in a well-ordered process).
    pub cycles: u64,
}

#[cfg(feature = "lockdep")]
mod imp {
    use super::LockdepStats;
    use std::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
    use std::time::Duration;

    mod detector {
        use super::LockdepStats;
        use std::cell::RefCell;
        use std::collections::HashMap;
        use std::sync::Mutex;

        pub type ClassId = u16;

        struct Edge {
            /// Backtrace captured when this edge was first observed.
            stack: String,
        }

        struct Graph {
            names: Vec<&'static str>,
            ids: HashMap<&'static str, ClassId>,
            edges: HashMap<(ClassId, ClassId), Edge>,
            adj: Vec<Vec<ClassId>>,
            cycles: u64,
            last_cycle: Option<String>,
        }

        impl Graph {
            fn new() -> Self {
                Graph {
                    names: Vec::new(),
                    ids: HashMap::new(),
                    edges: HashMap::new(),
                    adj: Vec::new(),
                    cycles: 0,
                    last_cycle: None,
                }
            }

            fn intern(&mut self, site: &'static str) -> ClassId {
                if let Some(&id) = self.ids.get(site) {
                    return id;
                }
                let id = self.names.len() as ClassId;
                self.names.push(site);
                self.ids.insert(site, id);
                self.adj.push(Vec::new());
                id
            }

            /// Path from `from` to `to` along recorded edges, if any.
            fn find_path(&self, from: ClassId, to: ClassId) -> Option<Vec<ClassId>> {
                let mut stack = vec![vec![from]];
                let mut seen = vec![false; self.names.len()];
                seen[from as usize] = true;
                while let Some(path) = stack.pop() {
                    let last = *path.last().expect("non-empty path");
                    if last == to {
                        return Some(path);
                    }
                    for &next in &self.adj[last as usize] {
                        if !seen[next as usize] {
                            seen[next as usize] = true;
                            let mut p = path.clone();
                            p.push(next);
                            stack.push(p);
                        }
                    }
                }
                None
            }

            /// Longest acyclic chain in the order graph.
            fn max_chain(&self) -> u64 {
                fn depth(g: &Graph, node: ClassId, memo: &mut [Option<u64>], guard: usize) -> u64 {
                    if guard == 0 {
                        return 0; // cycle present: cap rather than recurse forever
                    }
                    if let Some(d) = memo[node as usize] {
                        return d;
                    }
                    let mut best = 1;
                    for &next in &g.adj[node as usize] {
                        best = best.max(1 + depth(g, next, memo, guard - 1));
                    }
                    memo[node as usize] = Some(best);
                    best
                }
                let mut memo = vec![None; self.names.len()];
                let n = self.names.len();
                (0..n as u16)
                    .map(|id| depth(self, id, &mut memo, n + 1))
                    .max()
                    .unwrap_or(0)
            }
        }

        /// Process-global order graph. Always entered through poison
        /// recovery so a panicking holder elsewhere cannot wedge it.
        static GRAPH: Mutex<Option<Graph>> = Mutex::new(None);

        thread_local! {
            /// Lock classes currently held by this thread, in acquisition
            /// order. Popped by guard `Drop`, so it stays consistent even
            /// when guards are dropped out of order or during unwinding.
            static HELD: RefCell<Vec<ClassId>> = const { RefCell::new(Vec::new()) };
        }

        fn with_graph<R>(f: impl FnOnce(&mut Graph) -> R) -> R {
            let mut slot = GRAPH.lock().unwrap_or_else(|p| p.into_inner());
            f(slot.get_or_insert_with(Graph::new))
        }

        pub fn register(site: &'static str) -> ClassId {
            with_graph(|g| g.intern(site))
        }

        fn short_backtrace() -> String {
            let bt = std::backtrace::Backtrace::force_capture().to_string();
            // The full trace is dominated by runtime frames; keep enough
            // to identify the acquisition site without flooding stderr.
            let mut out = String::new();
            for line in bt.lines().take(32) {
                out.push_str("      ");
                out.push_str(line.trim_end());
                out.push('\n');
            }
            out
        }

        /// Records `class` being acquired by this thread: adds the order
        /// edge from the innermost held class (if any) and reports a
        /// witness cycle if that edge closes one.
        pub fn acquire(class: ClassId) {
            let top = HELD.with(|h| h.borrow().last().copied());
            if let Some(from) = top {
                check_edge(from, class);
            }
            HELD.with(|h| h.borrow_mut().push(class));
        }

        /// Records `class` being released by this thread. Guards may be
        /// dropped in any order, so this removes the most recent
        /// occurrence rather than insisting on LIFO.
        pub fn release(class: ClassId) {
            HELD.with(|h| {
                let mut held = h.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&c| c == class) {
                    held.remove(pos);
                }
            });
        }

        fn check_edge(from: ClassId, to: ClassId) {
            let report = with_graph(|g| {
                if g.edges.contains_key(&(from, to)) {
                    return None; // already validated when first observed
                }
                let new_stack = short_backtrace();
                // A cycle exists iff `to` already reaches `from` (a
                // self-edge is the degenerate `to == from` path).
                let cycle_path = if from == to {
                    Some(vec![to])
                } else {
                    g.find_path(to, from)
                };
                g.edges.insert(
                    (from, to),
                    Edge {
                        stack: new_stack.clone(),
                    },
                );
                g.adj[from as usize].push(to);
                let path = cycle_path?;
                g.cycles += 1;
                let mut msg = String::from("lockdep: lock-order cycle detected\n");
                msg.push_str(&format!(
                    "  new edge: {} -> {}\n",
                    g.names[from as usize], g.names[to as usize]
                ));
                msg.push_str("  cycle: ");
                for &c in &path {
                    msg.push_str(g.names[c as usize]);
                    msg.push_str(" -> ");
                }
                msg.push_str(g.names[to as usize]);
                msg.push('\n');
                msg.push_str("  acquisition stack (new edge):\n");
                msg.push_str(&format!(
                    "{}  acquisition stack (existing edge {} -> {}):\n",
                    g.edges[&(from, to)].stack,
                    g.names[path[0] as usize],
                    g.names[path.get(1).copied().unwrap_or(from) as usize],
                ));
                let existing = (path[0], path.get(1).copied().unwrap_or(from));
                if let Some(e) = g.edges.get(&existing) {
                    msg.push_str(&e.stack);
                }
                g.last_cycle = Some(msg.clone());
                Some(msg)
            });
            if let Some(msg) = report {
                eprintln!("{msg}");
                if std::env::var("POLYUFC_LOCKDEP_PANIC").as_deref() == Ok("1") {
                    panic!("{msg}");
                }
            }
        }

        pub fn stats() -> LockdepStats {
            with_graph(|g| LockdepStats {
                sites: g.names.len() as u64,
                edges: g.edges.len() as u64,
                max_chain: g.max_chain(),
                cycles: g.cycles,
            })
        }

        pub fn last_cycle() -> Option<String> {
            with_graph(|g| g.last_cycle.clone())
        }
    }

    /// Order-checked mutex; see the module docs.
    pub struct OrderedMutex<T: ?Sized> {
        class: detector::ClassId,
        inner: Mutex<T>,
    }

    impl<T> OrderedMutex<T> {
        /// Creates a mutex belonging to the lock class named `site`.
        pub fn new(site: &'static str, value: T) -> Self {
            OrderedMutex {
                class: detector::register(site),
                inner: Mutex::new(value),
            }
        }
    }

    impl<T> OrderedMutex<T> {
        /// Consumes the mutex, returning the inner value. No ordering
        /// bookkeeping: by `self`-ownership no lock is being held.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> OrderedMutex<T> {
        /// Acquires the lock, recording the order edge first so a real
        /// deadlock is still reported before this thread blocks.
        pub fn lock(&self) -> LockResult<OrderedMutexGuard<'_, T>> {
            detector::acquire(self.class);
            match self.inner.lock() {
                Ok(g) => Ok(OrderedMutexGuard {
                    class: self.class,
                    inner: Some(g),
                }),
                Err(p) => Err(PoisonError::new(OrderedMutexGuard {
                    class: self.class,
                    inner: Some(p.into_inner()),
                })),
            }
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for OrderedMutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("OrderedMutex")
                .field("inner", &&self.inner)
                .finish()
        }
    }

    /// RAII guard for [`OrderedMutex`]; pops the held-class stack on drop
    /// (including drops during unwinding).
    pub struct OrderedMutexGuard<'a, T: ?Sized> {
        class: detector::ClassId,
        /// `None` only transiently while a condvar wait holds the raw
        /// guard; `Drop` then skips the detector pop.
        inner: Option<MutexGuard<'a, T>>,
    }

    impl<'a, T: ?Sized> OrderedMutexGuard<'a, T> {
        fn take_inner(mut self) -> MutexGuard<'a, T> {
            self.inner.take().expect("guard already consumed")
        }
    }

    impl<T: ?Sized> Drop for OrderedMutexGuard<'_, T> {
        fn drop(&mut self) {
            if self.inner.is_some() {
                detector::release(self.class);
            }
        }
    }

    impl<T: ?Sized> std::ops::Deref for OrderedMutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard already consumed")
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard already consumed")
        }
    }

    /// Condition variable aware of the lockdep held-class stack: the
    /// paired mutex's class is popped for the duration of the wait (the
    /// lock is not held while parked) and re-checked on reacquisition.
    pub struct OrderedCondvar {
        inner: Condvar,
    }

    impl OrderedCondvar {
        /// Creates a condvar; `_site` names it for documentation parity
        /// with [`OrderedMutex::new`] (condvars themselves carry no
        /// ordering state).
        pub fn new(_site: &'static str) -> Self {
            OrderedCondvar {
                inner: Condvar::new(),
            }
        }

        /// Blocks until notified; the guard's class leaves the held
        /// stack while parked.
        pub fn wait<'a, T>(
            &self,
            guard: OrderedMutexGuard<'a, T>,
        ) -> LockResult<OrderedMutexGuard<'a, T>> {
            let class = guard.class;
            let raw = guard.take_inner();
            detector::release(class);
            let res = self.inner.wait(raw);
            detector::acquire(class);
            match res {
                Ok(g) => Ok(OrderedMutexGuard {
                    class,
                    inner: Some(g),
                }),
                Err(p) => Err(PoisonError::new(OrderedMutexGuard {
                    class,
                    inner: Some(p.into_inner()),
                })),
            }
        }

        /// Blocks until notified or `dur` elapses; same held-stack
        /// bookkeeping as [`OrderedCondvar::wait`].
        pub fn wait_timeout<'a, T>(
            &self,
            guard: OrderedMutexGuard<'a, T>,
            dur: Duration,
        ) -> LockResult<(OrderedMutexGuard<'a, T>, WaitTimeoutResult)> {
            let class = guard.class;
            let raw = guard.take_inner();
            detector::release(class);
            let res = self.inner.wait_timeout(raw, dur);
            detector::acquire(class);
            match res {
                Ok((g, t)) => Ok((
                    OrderedMutexGuard {
                        class,
                        inner: Some(g),
                    },
                    t,
                )),
                Err(p) => {
                    let (g, t) = p.into_inner();
                    Err(PoisonError::new((
                        OrderedMutexGuard {
                            class,
                            inner: Some(g),
                        },
                        t,
                    )))
                }
            }
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wakes all waiters.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    /// Lockdep counters for the `chk` stats section.
    pub fn lockdep_stats() -> Option<LockdepStats> {
        Some(detector::stats())
    }

    /// Most recent cycle report, if any (test hook).
    pub fn lockdep_last_cycle() -> Option<String> {
        detector::last_cycle()
    }
}

#[cfg(not(feature = "lockdep"))]
mod imp {
    use super::LockdepStats;
    use std::sync::{Condvar, LockResult, Mutex, MutexGuard, WaitTimeoutResult};
    use std::time::Duration;

    /// Transparent stand-in for `std::sync::Mutex`; the site name is
    /// dropped at compile time.
    #[repr(transparent)]
    pub struct OrderedMutex<T: ?Sized> {
        inner: Mutex<T>,
    }

    /// In the default build the guard *is* the std guard, so the locked
    /// fast path is untouched.
    pub type OrderedMutexGuard<'a, T> = MutexGuard<'a, T>;

    impl<T> OrderedMutex<T> {
        /// Creates a mutex; `_site` exists only for lockdep builds.
        #[inline]
        pub fn new(_site: &'static str, value: T) -> Self {
            OrderedMutex {
                inner: Mutex::new(value),
            }
        }

        /// Consumes the mutex, returning the inner value.
        #[inline]
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> OrderedMutex<T> {
        /// Acquires the lock; identical to `std::sync::Mutex::lock`.
        #[inline]
        pub fn lock(&self) -> LockResult<OrderedMutexGuard<'_, T>> {
            self.inner.lock()
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for OrderedMutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    /// Transparent stand-in for `std::sync::Condvar`.
    #[repr(transparent)]
    pub struct OrderedCondvar {
        inner: Condvar,
    }

    impl OrderedCondvar {
        /// Creates a condvar; `_site` exists only for lockdep builds.
        #[inline]
        pub fn new(_site: &'static str) -> Self {
            OrderedCondvar {
                inner: Condvar::new(),
            }
        }

        /// Identical to `std::sync::Condvar::wait`.
        #[inline]
        pub fn wait<'a, T>(
            &self,
            guard: OrderedMutexGuard<'a, T>,
        ) -> LockResult<OrderedMutexGuard<'a, T>> {
            self.inner.wait(guard)
        }

        /// Identical to `std::sync::Condvar::wait_timeout`.
        #[inline]
        pub fn wait_timeout<'a, T>(
            &self,
            guard: OrderedMutexGuard<'a, T>,
            dur: Duration,
        ) -> LockResult<(OrderedMutexGuard<'a, T>, WaitTimeoutResult)> {
            self.inner.wait_timeout(guard, dur)
        }

        /// Identical to `std::sync::Condvar::notify_one`.
        #[inline]
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Identical to `std::sync::Condvar::notify_all`.
        #[inline]
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    /// Always `None` without the `lockdep` feature, so stats output is
    /// byte-identical to a build that never linked this crate.
    #[inline]
    pub fn lockdep_stats() -> Option<LockdepStats> {
        None
    }

    // The zero-overhead claim, checked at compile time: the wrappers add
    // no bytes over their std counterparts in the default build.
    const _: () = {
        assert!(std::mem::size_of::<OrderedMutex<u64>>() == std::mem::size_of::<Mutex<u64>>());
        assert!(std::mem::size_of::<OrderedCondvar>() == std::mem::size_of::<Condvar>());
    };
}

pub use imp::{lockdep_stats, OrderedCondvar, OrderedMutex, OrderedMutexGuard};

#[cfg(feature = "lockdep")]
pub use imp::lockdep_last_cycle;
