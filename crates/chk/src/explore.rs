//! Bounded schedule exploration for protocol models.
//!
//! A [`Model`] is a deterministic state machine over N logical threads:
//! the explorer owns the scheduler, the model owns everything else. Each
//! `step(t)` executes one atomic region of thread `t` (one lock-protected
//! critical section in the real code), so every interleaving of regions
//! that the real kernel scheduler could produce corresponds to some
//! schedule here.
//!
//! Exploration is iterative-deepening-free, CHESS-style DFS: from each
//! state, continuing the currently running thread is free, while
//! *preempting* it (switching away from a thread that is still enabled)
//! spends one unit of a fixed preemption budget. Small budgets are known
//! to catch the overwhelming majority of real concurrency bugs while
//! keeping the schedule count tractable; a seeded-random tail then
//! samples schedules *beyond* the bound with an unlimited budget.
//!
//! Every terminal state is checked for deadlock (some thread not done but
//! nothing enabled — this is also how a lost wakeup manifests: the waiter
//! is parked forever) and for the model's own `finish` invariants. A
//! violation carries the schedule string (e.g. `"0.0.2.1"`) that
//! [`replay`] re-executes deterministically.

/// A deterministic protocol model explored by [`Explorer`].
///
/// Implementations must be `Clone` (the DFS snapshots states at branch
/// points) and fully deterministic: no wall clock, no OS randomness —
/// all nondeterminism comes from the schedule.
pub trait Model: Clone {
    /// Short protocol name for reports.
    fn name(&self) -> &'static str;
    /// Number of logical threads.
    fn threads(&self) -> usize;
    /// True once thread `t` has run to completion.
    fn done(&self, t: usize) -> bool;
    /// True if thread `t` can take a step now (false when done or
    /// blocked on a shim lock/condvar).
    fn enabled(&self, t: usize) -> bool;
    /// Executes one atomic region of thread `t`; `Err` is a safety
    /// violation observed *during* the step (e.g. a double completion).
    fn step(&mut self, t: usize) -> Result<(), String>;
    /// Invariants over the final quiescent state (e.g. every request
    /// answered exactly once).
    fn finish(&self) -> Result<(), String>;
}

/// A safety or liveness violation, replayable via its schedule string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Dot-separated thread indices, in execution order.
    pub schedule: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "violation at schedule {}: {}",
            self.schedule, self.message
        )
    }
}

/// Exploration outcome: schedule counts, depth, and the first violation.
#[derive(Debug, Clone)]
pub struct ExploreStats {
    /// Complete schedules explored by the bounded DFS.
    pub schedules: u64,
    /// Additional seeded-random schedules run beyond the bound.
    pub random_schedules: u64,
    /// Longest schedule executed (steps).
    pub max_depth: usize,
    /// First violation found, if any.
    pub violation: Option<Violation>,
}

/// Bounded DFS explorer with a preemption budget and a seeded-random
/// tail; see the module docs.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Preemptive context switches allowed per schedule in the DFS.
    pub max_preemptions: usize,
    /// Hard per-schedule step bound (guards against unproductive loops
    /// in a buggy model; never reached by the shipped models).
    pub max_steps: usize,
    /// DFS stops counting new schedules past this cap.
    pub max_schedules: u64,
    /// Random schedules (unlimited preemptions) run after the DFS.
    pub random_tail: u64,
    /// Seed for the random tail (SplitMix64).
    pub seed: u64,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_preemptions: 3,
            max_steps: 256,
            max_schedules: 200_000,
            random_tail: 2_000,
            seed: 0x706f6c79_75666331,
        }
    }
}

/// Deterministic SplitMix64 stream for the random tail.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Renders a schedule as the dot-separated string printed in reports.
pub fn schedule_string(schedule: &[usize]) -> String {
    let mut s = String::new();
    for (i, t) in schedule.iter().enumerate() {
        if i > 0 {
            s.push('.');
        }
        s.push_str(&t.to_string());
    }
    s
}

/// Parses a schedule string back into thread indices.
pub fn parse_schedule(s: &str) -> Result<Vec<usize>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split('.')
        .map(|tok| {
            tok.parse::<usize>()
                .map_err(|e| format!("bad schedule token {tok:?}: {e}"))
        })
        .collect()
}

/// The enabled threads of `m`, lowest index first.
fn enabled_set<M: Model>(m: &M) -> Vec<usize> {
    (0..m.threads()).filter(|&t| m.enabled(t)).collect()
}

fn all_done<M: Model>(m: &M) -> bool {
    (0..m.threads()).all(|t| m.done(t))
}

/// Checks a quiescent (no thread enabled) state: either everything is
/// done and `finish` holds, or some thread is parked forever.
fn check_terminal<M: Model>(m: &M, schedule: &[usize]) -> Option<Violation> {
    if all_done(m) {
        if let Err(msg) = m.finish() {
            return Some(Violation {
                schedule: schedule_string(schedule),
                message: msg,
            });
        }
        return None;
    }
    let stuck: Vec<String> = (0..m.threads())
        .filter(|&t| !m.done(t))
        .map(|t| format!("t{t}"))
        .collect();
    Some(Violation {
        schedule: schedule_string(schedule),
        message: format!(
            "deadlock/lost wakeup: no thread enabled but {} never finished",
            stuck.join(", ")
        ),
    })
}

impl Explorer {
    /// Explores `model` exhaustively within the preemption bound, then
    /// samples the seeded-random tail. Stops at the first violation.
    pub fn explore<M: Model>(&self, model: &M) -> ExploreStats {
        let mut stats = ExploreStats {
            schedules: 0,
            random_schedules: 0,
            max_depth: 0,
            violation: None,
        };
        let mut prefix = Vec::new();
        self.dfs(model, &mut prefix, self.max_preemptions, None, &mut stats);
        if stats.violation.is_none() {
            let mut rng = SplitMix64::new(self.seed);
            for _ in 0..self.random_tail {
                stats.random_schedules += 1;
                if let Some(v) = self.random_run(model, &mut rng, &mut stats) {
                    stats.violation = Some(v);
                    break;
                }
            }
        }
        stats
    }

    fn dfs<M: Model>(
        &self,
        state: &M,
        prefix: &mut Vec<usize>,
        budget: usize,
        running: Option<usize>,
        stats: &mut ExploreStats,
    ) {
        if stats.violation.is_some() || stats.schedules >= self.max_schedules {
            return;
        }
        stats.max_depth = stats.max_depth.max(prefix.len());
        let enabled = enabled_set(state);
        if enabled.is_empty() {
            stats.schedules += 1;
            stats.violation = check_terminal(state, prefix);
            return;
        }
        if prefix.len() >= self.max_steps {
            stats.schedules += 1;
            stats.violation = Some(Violation {
                schedule: schedule_string(prefix),
                message: format!(
                    "schedule exceeded {} steps without quiescing",
                    self.max_steps
                ),
            });
            return;
        }
        for &t in &enabled {
            let preemptive = match running {
                Some(r) => r != t && state.enabled(r),
                None => false,
            };
            if preemptive && budget == 0 {
                continue;
            }
            let mut next = state.clone();
            prefix.push(t);
            if let Err(msg) = next.step(t) {
                stats.schedules += 1;
                stats.violation = Some(Violation {
                    schedule: schedule_string(prefix),
                    message: msg,
                });
                prefix.pop();
                return;
            }
            let next_budget = if preemptive { budget - 1 } else { budget };
            self.dfs(&next, prefix, next_budget, Some(t), stats);
            prefix.pop();
            if stats.violation.is_some() {
                return;
            }
        }
    }

    fn random_run<M: Model>(
        &self,
        model: &M,
        rng: &mut SplitMix64,
        stats: &mut ExploreStats,
    ) -> Option<Violation> {
        let mut m = model.clone();
        let mut schedule = Vec::new();
        loop {
            let enabled = enabled_set(&m);
            if enabled.is_empty() {
                stats.max_depth = stats.max_depth.max(schedule.len());
                return check_terminal(&m, &schedule);
            }
            if schedule.len() >= self.max_steps {
                return Some(Violation {
                    schedule: schedule_string(&schedule),
                    message: format!(
                        "schedule exceeded {} steps without quiescing",
                        self.max_steps
                    ),
                });
            }
            let t = enabled[(rng.next_u64() % enabled.len() as u64) as usize];
            schedule.push(t);
            if let Err(msg) = m.step(t) {
                return Some(Violation {
                    schedule: schedule_string(&schedule),
                    message: msg,
                });
            }
        }
    }
}

/// Deterministically re-executes `schedule` against a fresh clone of
/// `model`, returning the violation it reproduces (a violation found by
/// [`Explorer::explore`] replays to the same message), or `Ok(())` if
/// the schedule runs clean.
pub fn replay<M: Model>(model: &M, schedule: &str) -> Result<(), Violation> {
    let steps = parse_schedule(schedule).map_err(|message| Violation {
        schedule: schedule.to_string(),
        message,
    })?;
    let mut m = model.clone();
    let mut ran = Vec::new();
    for t in steps {
        if t >= m.threads() || !m.enabled(t) {
            return Err(Violation {
                schedule: schedule.to_string(),
                message: format!(
                    "schedule names thread {t} which is not enabled at step {}",
                    ran.len()
                ),
            });
        }
        ran.push(t);
        if let Err(msg) = m.step(t) {
            return Err(Violation {
                schedule: schedule_string(&ran),
                message: msg,
            });
        }
    }
    // A full replayed schedule ends quiescent; surface terminal checks
    // (deadlock / finish invariants) exactly like the explorer would.
    if enabled_set(&m).is_empty() {
        if let Some(v) = check_terminal(&m, &ran) {
            return Err(v);
        }
    }
    Ok(())
}
