//! State-machine models of the four riskiest serving protocols.
//!
//! Each model is a faithful miniature of one protocol in `crates/serve` /
//! `crates/par`, at the granularity of one atomic step per lock-protected
//! critical section (the mapping tables live in each module's docs and in
//! DESIGN.md). Every model carries a `fault_*` switch that re-introduces
//! a specific bug — the fault variants exist to prove the checker *can*
//! fail: `protocol_check` requires each of them to produce a replayable
//! violation.
//!
//! | model | source protocol |
//! |---|---|
//! | [`single_flight`] | `serve::shard` lookup/fulfill/abort + `serve::artifact::Flight` |
//! | [`pipeline`] | `serve::reactor` ingest/flush pause-resume watermarks |
//! | [`watchdog`] | `serve::engine` watchdog abort vs. worker panic vs. shutdown drain |
//! | [`quarantine`] | `serve::shard` strike/clear/quarantine circuit breaker |

pub mod pipeline;
pub mod quarantine;
pub mod single_flight;
pub mod watchdog;
