//! Watchdog abort vs. worker panic vs. shutdown drain model.
//!
//! Miniature of the deadline/ownership protocol in `serve::engine`: an
//! in-flight request is registered in the `InflightRegistry`; exactly one
//! of three parties *takes* (deregisters) its ticket and thereby owns its
//! accounting — the worker when the job finishes, the watchdog when the
//! deadline expires, or shutdown when it drains the registry. The stop
//! latch is a real mutex+condvar pair built on [`crate::shim::ShimSync`],
//! so the model exercises honest wait/notify semantics including timeout
//! wakeups (bounded spurious/timer wakeups) and the missed-generation
//! re-check: **every** wakeup re-checks the stop flag under the latch
//! before scanning. Step ↔ source mapping:
//!
//! | step | source |
//! |---|---|
//! | worker `Run` | the compile job (panics in the modelled scenario) |
//! | worker `Deregister` | `InflightRegistry::deregister` (inflight mutex): `owned = map.remove(ticket)` |
//! | worker `Strike` | `cache.record_strike` (shard mutex) — **only if owned** |
//! | worker `Complete` | `cache.abort` → `Flight::complete(Internal)`, first completion wins |
//! | watchdog `Latch`/`WaitPark`/`WakeOrTimeout` | `spawn_watchdog`'s `wait_timeout` loop on the stop latch |
//! | watchdog `Scan` | `InflightRegistry::take_expired` (inflight mutex) |
//! | watchdog `Strike`/`Complete` | `record_strike` + `abort(DeadlineExceeded)` for owned tickets |
//! | shutdown `Drain` | `InflightRegistry::drain` (inflight mutex) |
//! | shutdown `Complete` | `abort(ShuttingDown)` for drained tickets |
//! | shutdown `Stop` | set the stop flag under the latch, `notify_all` |
//!
//! Checked properties: the flight completes exactly once; at most one
//! strike is recorded per failed request (ownership makes strike
//! accounting exclusive); the watchdog always terminates (a lost stop
//! notification would park it forever — a deadlock). The injected bug,
//! `fault_unguarded_strike`, strikes on the worker's panic path without
//! checking ownership — exactly the double-strike engine.rs bug this
//! model surfaced (see EXPERIMENTS.md): the watchdog strikes on deadline
//! expiry, then the panicking worker strikes the same fingerprint again,
//! so one failed request counts twice toward the quarantine threshold.

use crate::explore::Model;
use crate::shim::ShimSync;

const LATCH: usize = 0;
const STOP_CV: usize = 0;

const WORKER: usize = 0;
const WATCHDOG: usize = 1;
const SHUTDOWN: usize = 2;

// Worker pcs.
const W_RUN: u8 = 0;
const W_DEREG: u8 = 1;
const W_STRIKE: u8 = 2;
const W_COMPLETE: u8 = 3;
const W_DONE: u8 = 4;

// Watchdog pcs.
const D_LATCH: u8 = 0;
const D_CHECK: u8 = 1;
const D_PARKED: u8 = 2;
const D_RECHECK: u8 = 3;
const D_SCAN: u8 = 4;
const D_STRIKE: u8 = 5;
const D_COMPLETE: u8 = 6;
const D_DONE: u8 = 7;

// Shutdown pcs.
const S_DRAIN: u8 = 0;
const S_COMPLETE: u8 = 1;
const S_LATCH: u8 = 2;
const S_STOP: u8 = 3;
const S_DONE: u8 = 4;

/// See the module docs.
#[derive(Debug, Clone)]
pub struct Watchdog {
    /// Strike on the worker panic path without checking ownership
    /// (injected bug; this was the live engine.rs defect).
    pub fault_unguarded_strike: bool,
    /// Whether the modelled job panics (the interesting scenario) or
    /// completes normally.
    pub worker_panics: bool,
    sync: ShimSync,
    ticket: bool,
    flight_done: bool,
    completions: u32,
    strikes: u32,
    stop: bool,
    timeouts_left: u8,
    w_pc: u8,
    w_owned: bool,
    d_pc: u8,
    d_owned: bool,
    s_pc: u8,
    s_owned: bool,
}

impl Watchdog {
    /// A model with one in-flight request, a deadline watchdog (the
    /// deadline is treated as already expired whenever it scans — the
    /// worst case), and a shutdown drainer.
    pub fn new(worker_panics: bool, fault_unguarded_strike: bool) -> Self {
        Watchdog {
            fault_unguarded_strike,
            worker_panics,
            sync: ShimSync::new(1, 1),
            ticket: true,
            flight_done: false,
            completions: 0,
            strikes: 0,
            stop: false,
            timeouts_left: 1,
            w_pc: W_RUN,
            w_owned: false,
            d_pc: D_LATCH,
            d_owned: false,
            s_pc: S_DRAIN,
            s_owned: false,
        }
    }

    /// `Flight::complete`: first completion wins (always guarded here;
    /// the single-flight model owns the double-completion fault).
    fn complete(&mut self) {
        if !self.flight_done {
            self.flight_done = true;
            self.completions += 1;
        }
    }

    fn strike(&mut self) -> Result<(), String> {
        self.strikes += 1;
        if self.strikes > 1 {
            return Err(format!(
                "double strike: one failed request recorded {} times toward quarantine",
                self.strikes
            ));
        }
        Ok(())
    }
}

impl Model for Watchdog {
    fn name(&self) -> &'static str {
        "watchdog"
    }

    fn threads(&self) -> usize {
        3
    }

    fn done(&self, t: usize) -> bool {
        match t {
            WORKER => self.w_pc == W_DONE,
            WATCHDOG => self.d_pc == D_DONE,
            _ => self.s_pc == S_DONE,
        }
    }

    fn enabled(&self, t: usize) -> bool {
        match t {
            WORKER => self.w_pc != W_DONE,
            WATCHDOG => match self.d_pc {
                D_LATCH => self.sync.can_lock(LATCH),
                D_PARKED => {
                    self.sync.can_wake(STOP_CV, LATCH, WATCHDOG)
                        || (self.timeouts_left > 0 && self.sync.can_lock(LATCH))
                }
                D_DONE => false,
                _ => true,
            },
            _ => match self.s_pc {
                S_LATCH => self.sync.can_lock(LATCH),
                S_DONE => false,
                _ => true,
            },
        }
    }

    fn step(&mut self, t: usize) -> Result<(), String> {
        match t {
            WORKER => match self.w_pc {
                W_RUN => {
                    self.w_pc = W_DEREG;
                    Ok(())
                }
                W_DEREG => {
                    self.w_owned = self.ticket;
                    self.ticket = false;
                    self.w_pc = W_STRIKE;
                    Ok(())
                }
                W_STRIKE => {
                    self.w_pc = W_COMPLETE;
                    if self.worker_panics {
                        if self.w_owned || self.fault_unguarded_strike {
                            return self.strike();
                        }
                    } else if self.w_owned {
                        self.strikes = 0; // clear_strikes on an owned success
                    }
                    Ok(())
                }
                W_COMPLETE => {
                    self.complete();
                    self.w_pc = W_DONE;
                    Ok(())
                }
                _ => Err("model bug: worker stepped after done".into()),
            },
            WATCHDOG => match self.d_pc {
                D_LATCH => {
                    self.sync.lock(LATCH, WATCHDOG);
                    self.d_pc = D_CHECK;
                    Ok(())
                }
                D_CHECK => {
                    if self.stop {
                        self.sync.unlock(LATCH, WATCHDOG);
                        self.d_pc = D_DONE;
                    } else {
                        self.sync.wait_park(STOP_CV, LATCH, WATCHDOG);
                        self.d_pc = D_PARKED;
                    }
                    Ok(())
                }
                D_PARKED => {
                    if self.sync.can_wake(STOP_CV, LATCH, WATCHDOG) {
                        self.sync.wake(STOP_CV, LATCH, WATCHDOG);
                    } else {
                        // wait_timeout fired: leave the wait set and
                        // reacquire the latch, exactly like a timeout
                        // return from Condvar::wait_timeout.
                        self.timeouts_left -= 1;
                        self.sync.timeout_unpark(STOP_CV, LATCH, WATCHDOG);
                    }
                    self.d_pc = D_RECHECK;
                    Ok(())
                }
                D_RECHECK => {
                    // Missed-generation re-check: whatever woke us, look
                    // at the stop flag again under the latch.
                    if self.stop {
                        self.sync.unlock(LATCH, WATCHDOG);
                        self.d_pc = D_DONE;
                    } else {
                        // Release the latch for the scan: the abort path
                        // takes the inflight, shard, and flight locks and
                        // must not nest under the latch.
                        self.sync.unlock(LATCH, WATCHDOG);
                        self.d_pc = D_SCAN;
                    }
                    Ok(())
                }
                D_SCAN => {
                    self.d_owned = self.ticket;
                    self.ticket = false;
                    self.d_pc = D_STRIKE;
                    Ok(())
                }
                D_STRIKE => {
                    self.d_pc = D_COMPLETE;
                    if self.d_owned {
                        return self.strike();
                    }
                    Ok(())
                }
                D_COMPLETE => {
                    if self.d_owned {
                        self.complete();
                    }
                    self.d_pc = D_LATCH; // back around the wait loop
                    Ok(())
                }
                _ => Err("model bug: watchdog stepped after done".into()),
            },
            SHUTDOWN => match self.s_pc {
                S_DRAIN => {
                    self.s_owned = self.ticket;
                    self.ticket = false;
                    self.s_pc = S_COMPLETE;
                    Ok(())
                }
                S_COMPLETE => {
                    if self.s_owned {
                        self.complete();
                    }
                    self.s_pc = S_LATCH;
                    Ok(())
                }
                S_LATCH => {
                    self.sync.lock(LATCH, SHUTDOWN);
                    self.s_pc = S_STOP;
                    Ok(())
                }
                S_STOP => {
                    self.stop = true;
                    self.sync.notify_all(STOP_CV);
                    self.sync.unlock(LATCH, SHUTDOWN);
                    self.s_pc = S_DONE;
                    Ok(())
                }
                _ => Err("model bug: shutdown stepped after done".into()),
            },
            _ => Err("model bug: unknown thread".into()),
        }
    }

    fn finish(&self) -> Result<(), String> {
        if self.completions != 1 {
            return Err(format!(
                "request completed {} times (expected exactly once)",
                self.completions
            ));
        }
        // Exactly one party owns the ticket; the expected strike count
        // follows from who: shutdown drains without striking, the
        // watchdog strikes its deadline, and the worker strikes only a
        // panicked job it still owned (an owned success clears strikes).
        let expected = if self.s_owned {
            0
        } else if self.d_owned || self.worker_panics {
            1
        } else {
            0
        };
        if self.strikes != expected {
            return Err(format!(
                "one request left {} strikes (expected {expected} for this owner)",
                self.strikes
            ));
        }
        Ok(())
    }
}
