//! Pipeline pause/resume model.
//!
//! Miniature of the per-connection backpressure protocol in
//! `serve::reactor::run`: a connection pauses ingest at `MAX_PIPELINE`
//! (256) in-flight slots and resumes below `MAX_PIPELINE / 2` (128); the
//! model keeps the same 2:1 ratio at `hi = 4`, `lo = 2` so the state
//! space stays exhaustively explorable. Step ↔ source mapping:
//!
//! | step | source |
//! |---|---|
//! | client `Write` | peer writes one request line, kernel marks the socket readable (doorbell) |
//! | reactor `Wake` | `epoll_wait` returns; the eventfd/readiness edge is consumed |
//! | reactor `Flush` | `flush`: write the ready **prefix** of the slot queue, in order |
//! | reactor `Resume` | the `resume` check: unpause iff paused and depth ≤ `lo` |
//! | reactor `Ingest` | `ingest`: claim slots until input runs dry or depth hits `hi` (pause) |
//! | worker `Complete` | a pool worker finishes a submitted job and rings the doorbell |
//!
//! After a flush/resume/ingest pass the real reactor **loops until the
//! pass makes no progress** before parking; `fault_single_resume` makes
//! it park after a single pass, re-introducing the stranded-connection
//! bug (a paused connection whose last ingest produced only cache hits
//! has ready slots, an empty job queue, and no future doorbell — a lost
//! wakeup the explorer reports as a deadlock). Replies must come back in
//! sequence order: an order inversion is reported at the flush step.
//!
//! Requests alternate between worker-path jobs and cache hits (hits
//! complete inline during ingest, exactly like an artifact-cache hit in
//! `engine.submit`), and the two worker threads drain the job queue from
//! opposite ends so out-of-order completion is part of the state space.

use crate::explore::Model;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RPc {
    Parked,
    Flush,
    Resume,
    Ingest,
}

/// See the module docs.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Pause watermark (`MAX_PIPELINE`, scaled).
    pub hi: usize,
    /// Resume watermark (`MAX_PIPELINE / 2`, scaled).
    pub lo: usize,
    /// Requests the client writes in total.
    pub total: usize,
    /// Park after one flush/resume/ingest pass instead of looping until
    /// stable (injected bug).
    pub fault_single_resume: bool,
    /// `kinds[seq]` is true for worker-path requests, false for hits.
    worker_path: Vec<bool>,
    written: usize,
    unread: usize,
    doorbell: bool,
    rpc: RPc,
    pass_changed: bool,
    paused: bool,
    /// In-flight slots: (seq, ready).
    slots: VecDeque<(usize, bool)>,
    next_seq: usize,
    jobs: Vec<usize>,
    out: Vec<usize>,
}

const CLIENT: usize = 0;
const REACTOR: usize = 1;
const WORKER_A: usize = 2;
const WORKER_B: usize = 3;

impl Pipeline {
    /// A model with `total` requests; the first `workers` of them take
    /// the worker path, the rest are cache hits.
    pub fn new(total: usize, workers: usize, fault_single_resume: bool) -> Self {
        Pipeline {
            hi: 4,
            lo: 2,
            total,
            fault_single_resume,
            worker_path: (0..total).map(|seq| seq < workers).collect(),
            written: 0,
            unread: 0,
            doorbell: false,
            rpc: RPc::Parked,
            pass_changed: false,
            paused: false,
            slots: VecDeque::new(),
            next_seq: 0,
            jobs: Vec::new(),
            out: Vec::new(),
        }
    }

    fn quiescent(&self) -> bool {
        self.written == self.total
            && self.unread == 0
            && self.jobs.is_empty()
            && self.slots.is_empty()
            && !self.doorbell
            && self.rpc == RPc::Parked
    }

    fn complete_job(&mut self, seq: usize) {
        let slot = self
            .slots
            .iter_mut()
            .find(|(s, _)| *s == seq)
            .expect("model bug: completed job has no slot");
        slot.1 = true;
        self.doorbell = true;
    }
}

impl Model for Pipeline {
    fn name(&self) -> &'static str {
        "pipeline"
    }

    fn threads(&self) -> usize {
        4
    }

    fn done(&self, t: usize) -> bool {
        if t == CLIENT {
            self.written == self.total
        } else {
            self.quiescent()
        }
    }

    fn enabled(&self, t: usize) -> bool {
        match t {
            CLIENT => self.written < self.total,
            REACTOR => self.rpc != RPc::Parked || self.doorbell,
            _ => !self.jobs.is_empty(),
        }
    }

    fn step(&mut self, t: usize) -> Result<(), String> {
        match t {
            CLIENT => {
                self.written += 1;
                self.unread += 1;
                self.doorbell = true;
                Ok(())
            }
            REACTOR => match self.rpc {
                RPc::Parked => {
                    // epoll_wait returned: consume the readiness edge and
                    // start a flush/resume/ingest pass.
                    self.doorbell = false;
                    self.pass_changed = false;
                    self.rpc = RPc::Flush;
                    Ok(())
                }
                RPc::Flush => {
                    let mut last = self.out.last().copied();
                    while matches!(self.slots.front(), Some(&(_, true))) {
                        let (seq, _) = self.slots.pop_front().expect("checked front");
                        if let Some(prev) = last {
                            if seq <= prev {
                                return Err(format!(
                                    "reply order inversion: seq {seq} flushed after {prev}"
                                ));
                            }
                        }
                        last = Some(seq);
                        self.out.push(seq);
                        self.pass_changed = true;
                    }
                    self.rpc = RPc::Resume;
                    Ok(())
                }
                RPc::Resume => {
                    if self.paused && self.slots.len() <= self.lo {
                        self.paused = false;
                        self.pass_changed = true;
                    }
                    self.rpc = RPc::Ingest;
                    Ok(())
                }
                RPc::Ingest => {
                    while !self.paused && self.unread > 0 {
                        let seq = self.next_seq;
                        self.next_seq += 1;
                        self.unread -= 1;
                        self.pass_changed = true;
                        if self.worker_path[seq] {
                            self.slots.push_back((seq, false));
                            self.jobs.push(seq);
                        } else {
                            // Cache hit: ready the moment it is claimed.
                            self.slots.push_back((seq, true));
                        }
                        if self.slots.len() >= self.hi {
                            self.paused = true;
                        }
                    }
                    // The real reactor repeats the pass until it makes no
                    // progress; the fault variant parks after one pass.
                    self.rpc = if self.pass_changed && !self.fault_single_resume {
                        self.pass_changed = false;
                        RPc::Flush
                    } else {
                        RPc::Parked
                    };
                    Ok(())
                }
            },
            WORKER_A => {
                let seq = self.jobs.remove(0);
                self.complete_job(seq);
                Ok(())
            }
            WORKER_B => {
                let seq = self.jobs.pop().expect("enabled gate");
                self.complete_job(seq);
                Ok(())
            }
            _ => Err("model bug: unknown thread".into()),
        }
    }

    fn finish(&self) -> Result<(), String> {
        if self.out.len() != self.total {
            return Err(format!(
                "{} of {} replies delivered at quiescence",
                self.out.len(),
                self.total
            ));
        }
        for (i, &seq) in self.out.iter().enumerate() {
            if seq != i {
                return Err(format!(
                    "reply order inversion at position {i}: got seq {seq}"
                ));
            }
        }
        Ok(())
    }
}
