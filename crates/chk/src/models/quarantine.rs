//! Quarantine strike/reset model.
//!
//! Miniature of the circuit breaker in `serve::shard`: consecutive
//! failures for one fingerprint accumulate strikes under the fingerprint's
//! shard lock; reaching the threshold moves the fingerprint into the
//! quarantined map (publishing a canned rejection); a success clears the
//! strike count; readers observe the quarantined flag on the request fast
//! path. Step ↔ source mapping:
//!
//! | step | source critical section |
//! |---|---|
//! | striker `Strike` | `shard.rs record_strike` (shard mutex): check-increment-promote, atomically |
//! | clearer `Clear` | `shard.rs clear_strikes` (shard mutex) |
//! | reader `Read` | `shard.rs quarantine_get` (shard mutex) |
//!
//! The model keeps a ground-truth count of *committed* strike regions
//! (the linearization order the explorer fixes) and checks after every
//! commit that the shared counter agrees — a lost update means two
//! failures counted as one, so a flapping kernel needs more than
//! `threshold` failures to trip the breaker. Also checked: the breaker
//! trips at most once while resident (no double-quarantine) and the
//! quarantined flag is monotone as seen by readers. The injected bug,
//! `fault_split_strike`, splits `record_strike` into a read step and a
//! write step (check-then-act without the shard lock), re-introducing
//! the lost-update race.

use crate::explore::Model;

#[derive(Debug, Clone)]
struct Striker {
    pc: u8,
    local: u32,
}

/// See the module docs.
#[derive(Debug, Clone)]
pub struct Quarantine {
    /// Failures required to trip the breaker.
    pub threshold: u32,
    /// Split `record_strike` into unlocked read + write steps (injected
    /// bug).
    pub fault_split_strike: bool,
    strikes: u32,
    ground_commits: u32,
    quarantined: bool,
    q_events: u32,
    strikers: Vec<Striker>,
    clearer_steps: u8,
    reader_steps: u8,
    reader_saw_quarantined: bool,
}

impl Quarantine {
    /// A model with `strikers` failing requests, one clearing success
    /// path (`clearer_steps` clears), and a fast-path reader.
    pub fn new(strikers: usize, threshold: u32, fault_split_strike: bool) -> Self {
        Quarantine {
            threshold,
            fault_split_strike,
            strikes: 0,
            ground_commits: 0,
            quarantined: false,
            q_events: 0,
            strikers: (0..strikers).map(|_| Striker { pc: 0, local: 0 }).collect(),
            clearer_steps: 2,
            reader_steps: 3,
            reader_saw_quarantined: false,
        }
    }

    /// Commits one strike and checks the counter against the ground
    /// truth linearization.
    fn commit_strike(&mut self) -> Result<(), String> {
        self.strikes += 1;
        self.ground_commits += 1;
        if self.strikes != self.ground_commits {
            return Err(format!(
                "lost strike update: {} failures committed but counter shows {}",
                self.ground_commits, self.strikes
            ));
        }
        if self.strikes >= self.threshold {
            self.quarantined = true;
            self.q_events += 1;
            if self.q_events > 1 {
                return Err("double quarantine: breaker tripped twice while resident".into());
            }
            // record_strike moves the fingerprint out of the strikes map
            // when it promotes.
            self.strikes = 0;
            self.ground_commits = 0;
        }
        Ok(())
    }
}

const CLEARER_OFF: usize = 0; // strikers come first, then clearer, then reader

impl Model for Quarantine {
    fn name(&self) -> &'static str {
        "quarantine"
    }

    fn threads(&self) -> usize {
        self.strikers.len() + 2
    }

    fn done(&self, t: usize) -> bool {
        let n = self.strikers.len();
        if t < n {
            self.strikers[t].pc == 2
        } else if t == n + CLEARER_OFF {
            self.clearer_steps == 0
        } else {
            self.reader_steps == 0
        }
    }

    fn enabled(&self, t: usize) -> bool {
        !self.done(t)
    }

    fn step(&mut self, t: usize) -> Result<(), String> {
        let n = self.strikers.len();
        if t < n {
            if self.fault_split_strike {
                match self.strikers[t].pc {
                    0 => {
                        // Buggy: read the counter in one region...
                        self.strikers[t].local = self.strikes;
                        self.strikers[t].pc = 1;
                        Ok(())
                    }
                    1 => {
                        // ...and write it back in another.
                        self.strikers[t].pc = 2;
                        if self.quarantined {
                            return Ok(());
                        }
                        self.strikes = self.strikers[t].local; // clobbers concurrent commits
                        self.commit_strike()
                    }
                    _ => Err("model bug: striker stepped after done".into()),
                }
            } else {
                // record_strike: one atomic region under the shard lock.
                self.strikers[t].pc = 2;
                if self.quarantined {
                    // Already quarantined: the request was rejected before
                    // reaching the compiler, nothing to record.
                    return Ok(());
                }
                self.commit_strike()
            }
        } else if t == n + CLEARER_OFF {
            self.clearer_steps -= 1;
            if !self.quarantined {
                self.strikes = 0;
                self.ground_commits = 0;
            }
            Ok(())
        } else {
            self.reader_steps -= 1;
            if self.reader_saw_quarantined && !self.quarantined {
                return Err("quarantine flag regressed: reader saw it set, then clear".into());
            }
            if self.quarantined {
                self.reader_saw_quarantined = true;
            }
            Ok(())
        }
    }

    fn finish(&self) -> Result<(), String> {
        if self.q_events == 0 && self.strikes != self.ground_commits {
            return Err(format!(
                "lost strike update at quiescence: {} committed, counter shows {}",
                self.ground_commits, self.strikes
            ));
        }
        Ok(())
    }
}
