//! Single-flight subscribe/abort model.
//!
//! Miniature of `serve::shard::ArtifactCache::{lookup, fulfill, abort}`
//! plus `serve::artifact::Flight::{subscribe, complete}`. Step ↔ source
//! mapping (one step per lock region):
//!
//! | step | source critical section |
//! |---|---|
//! | requester `Lookup` | `shard.rs lookup` (shard mutex): hit, join pending, or become leader |
//! | requester `Subscribe` | `artifact.rs subscribe` (flight mutex): inline if done, else enqueue waiter |
//! | leader `Compile` | the compile job itself (no locks held) |
//! | leader `Fulfill` | `shard.rs fulfill` (shard mutex): publish body iff the slot still holds *this* flight |
//! | leader `Complete` | `artifact.rs complete` (flight mutex): first completion wins, drain waiters |
//! | aborter `TakeSlot` | `shard.rs abort` (shard mutex): remove the pending slot iff `Arc::ptr_eq` |
//! | aborter `Complete` | `artifact.rs complete` with the abort error |
//!
//! Checked properties: every requester is answered **exactly once** (zero
//! answers = lost wakeup, surfaced as a deadlock because the requester
//! parks forever; two = double completion), and no flight ever delivers
//! twice. `fault_double_complete` removes the first-completion-wins guard
//! in `complete`, re-introducing the double delivery that the real
//! `Flight` prevents.

use crate::explore::Model;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Slot {
    Empty,
    Pending(usize),
    Ready,
}

#[derive(Debug, Clone)]
struct FlightSt {
    done: bool,
    waiters: Vec<usize>,
    completions: u32,
}

#[derive(Debug, Clone)]
struct Req {
    pc: u8,
    flight: usize,
    leader: bool,
    deliveries: u32,
}

/// See the module docs.
#[derive(Debug, Clone)]
pub struct SingleFlight {
    /// Requester thread count (the aborter is one extra thread).
    pub requesters: usize,
    /// Disable first-completion-wins in `complete` (injected bug).
    pub fault_double_complete: bool,
    slot: Slot,
    flights: Vec<FlightSt>,
    req: Vec<Req>,
    aborter_pc: u8,
    aborter_flight: usize,
}

// Requester pcs.
const R_LOOKUP: u8 = 0;
const R_SUBSCRIBE: u8 = 1;
const R_COMPILE: u8 = 2;
const R_FULFILL: u8 = 3;
const R_COMPLETE: u8 = 4;
const R_AWAIT: u8 = 5;
const R_DONE: u8 = 6;

impl SingleFlight {
    /// A model with `requesters` concurrent requests for one key plus a
    /// watchdog-style aborter.
    pub fn new(requesters: usize, fault_double_complete: bool) -> Self {
        SingleFlight {
            requesters,
            fault_double_complete,
            slot: Slot::Empty,
            flights: Vec::new(),
            req: (0..requesters)
                .map(|_| Req {
                    pc: R_LOOKUP,
                    flight: usize::MAX,
                    leader: false,
                    deliveries: 0,
                })
                .collect(),
            aborter_pc: 0,
            aborter_flight: usize::MAX,
        }
    }

    /// `Flight::complete`: delivers to all waiters; first completion wins
    /// unless the fault switch re-opens the race.
    fn complete(&mut self, f: usize) -> Result<(), String> {
        let fl = &mut self.flights[f];
        if fl.done && !self.fault_double_complete {
            return Ok(()); // first completion won; late completer is a no-op
        }
        fl.done = true;
        fl.completions += 1;
        if fl.completions > 1 {
            return Err(format!("double completion: flight {f} completed twice"));
        }
        let waiters = std::mem::take(&mut fl.waiters);
        for w in waiters {
            self.req[w].deliveries += 1;
        }
        Ok(())
    }
}

impl Model for SingleFlight {
    fn name(&self) -> &'static str {
        "single-flight"
    }

    fn threads(&self) -> usize {
        self.requesters + 1
    }

    fn done(&self, t: usize) -> bool {
        if t < self.requesters {
            self.req[t].pc == R_DONE
        } else {
            self.aborter_pc == 2
        }
    }

    fn enabled(&self, t: usize) -> bool {
        if t < self.requesters {
            match self.req[t].pc {
                R_AWAIT => self.req[t].deliveries > 0,
                R_DONE => false,
                _ => true,
            }
        } else {
            self.aborter_pc < 2
        }
    }

    fn step(&mut self, t: usize) -> Result<(), String> {
        if t == self.requesters {
            // Aborter (the watchdog deadline path).
            match self.aborter_pc {
                0 => {
                    if let Slot::Pending(f) = self.slot {
                        self.slot = Slot::Empty;
                        self.aborter_flight = f;
                        self.aborter_pc = 1;
                    } else {
                        self.aborter_pc = 2; // nothing pending; give up
                    }
                    Ok(())
                }
                1 => {
                    self.aborter_pc = 2;
                    self.complete(self.aborter_flight)
                }
                _ => Err("model bug: aborter stepped after done".into()),
            }
        } else {
            match self.req[t].pc {
                R_LOOKUP => {
                    match self.slot {
                        Slot::Ready => {
                            // Cache hit: answered directly under the shard lock.
                            self.req[t].deliveries += 1;
                            self.req[t].pc = R_AWAIT;
                        }
                        Slot::Pending(f) => {
                            self.req[t].flight = f;
                            self.req[t].pc = R_SUBSCRIBE;
                        }
                        Slot::Empty => {
                            let f = self.flights.len();
                            self.flights.push(FlightSt {
                                done: false,
                                waiters: Vec::new(),
                                completions: 0,
                            });
                            self.slot = Slot::Pending(f);
                            self.req[t].flight = f;
                            self.req[t].leader = true;
                            self.req[t].pc = R_SUBSCRIBE;
                        }
                    }
                    Ok(())
                }
                R_SUBSCRIBE => {
                    let f = self.req[t].flight;
                    if self.flights[f].done {
                        // Flight finished between lookup and attach:
                        // subscribe delivers inline.
                        self.req[t].deliveries += 1;
                    } else {
                        self.flights[f].waiters.push(t);
                    }
                    self.req[t].pc = if self.req[t].leader {
                        R_COMPILE
                    } else {
                        R_AWAIT
                    };
                    Ok(())
                }
                R_COMPILE => {
                    self.req[t].pc = R_FULFILL;
                    Ok(())
                }
                R_FULFILL => {
                    // Publish only if the slot still holds *this* flight
                    // (the Arc::ptr_eq guard in shard.rs).
                    if self.slot == Slot::Pending(self.req[t].flight) {
                        self.slot = Slot::Ready;
                    }
                    self.req[t].pc = R_COMPLETE;
                    Ok(())
                }
                R_COMPLETE => {
                    self.req[t].pc = R_AWAIT;
                    let f = self.req[t].flight;
                    self.complete(f)
                }
                R_AWAIT => {
                    self.req[t].pc = R_DONE;
                    Ok(())
                }
                _ => Err("model bug: requester stepped after done".into()),
            }
        }
    }

    fn finish(&self) -> Result<(), String> {
        for (t, r) in self.req.iter().enumerate() {
            if r.deliveries != 1 {
                return Err(format!(
                    "requester t{t} answered {} times (expected exactly once)",
                    r.deliveries
                ));
            }
        }
        Ok(())
    }
}
