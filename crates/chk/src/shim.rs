//! Shim synchronization layer for protocol models.
//!
//! Real locks block; model threads must never block *inside* a step
//! (the explorer owns the scheduler), so blocking is expressed through
//! enabledness instead: a thread that would block on `lock` reports
//! `enabled() == false` until the lock frees, and a condvar waiter is
//! disabled until a notify moves it to the woken set *and* its lock can
//! be reacquired. This gives the models honest mutex/condvar semantics —
//! including the classic lost wakeup, where a notify that arrives before
//! the wait leaves the waiter parked forever (the explorer reports that
//! as a deadlock).

/// Model-world mutexes and condvars addressed by small indices.
#[derive(Debug, Clone, Default)]
pub struct ShimSync {
    /// `locks[l]` is the holder thread, if held.
    locks: Vec<Option<usize>>,
    /// `waiters[cv]`: threads parked on the condvar, not yet notified.
    waiters: Vec<Vec<usize>>,
    /// `woken[cv]`: notified threads that have not yet reacquired.
    woken: Vec<Vec<usize>>,
}

impl ShimSync {
    /// A shim layer with `nlocks` mutexes and `nconds` condvars.
    pub fn new(nlocks: usize, nconds: usize) -> Self {
        ShimSync {
            locks: vec![None; nlocks],
            waiters: vec![Vec::new(); nconds],
            woken: vec![Vec::new(); nconds],
        }
    }

    /// Whether thread `t` could acquire lock `l` right now.
    pub fn can_lock(&self, l: usize) -> bool {
        self.locks[l].is_none()
    }

    /// Acquires lock `l` for thread `t`; the caller must have gated the
    /// step on [`ShimSync::can_lock`].
    pub fn lock(&mut self, l: usize, t: usize) {
        assert!(self.locks[l].is_none(), "model bug: lock {l} already held");
        self.locks[l] = Some(t);
    }

    /// Releases lock `l`, which must be held by `t`.
    pub fn unlock(&mut self, l: usize, t: usize) {
        assert_eq!(
            self.locks[l],
            Some(t),
            "model bug: unlock of lock {l} not held by t{t}"
        );
        self.locks[l] = None;
    }

    /// Atomically releases lock `l` and parks `t` on condvar `cv`.
    pub fn wait_park(&mut self, cv: usize, l: usize, t: usize) {
        self.unlock(l, t);
        self.waiters[cv].push(t);
    }

    /// Wakes the longest-parked waiter, if any.
    pub fn notify_one(&mut self, cv: usize) {
        if !self.waiters[cv].is_empty() {
            let t = self.waiters[cv].remove(0);
            self.woken[cv].push(t);
        }
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&mut self, cv: usize) {
        let mut ts = std::mem::take(&mut self.waiters[cv]);
        self.woken[cv].append(&mut ts);
    }

    /// Whether parked thread `t` can return from its wait: it has been
    /// notified and the paired lock is free for reacquisition.
    pub fn can_wake(&self, cv: usize, l: usize, t: usize) -> bool {
        self.woken[cv].contains(&t) && self.locks[l].is_none()
    }

    /// Completes thread `t`'s wait: reacquires lock `l` and leaves the
    /// woken set. Gate the step on [`ShimSync::can_wake`].
    pub fn wake(&mut self, cv: usize, l: usize, t: usize) {
        let pos = self.woken[cv]
            .iter()
            .position(|&w| w == t)
            .expect("model bug: wake without notify");
        self.woken[cv].remove(pos);
        self.lock(l, t);
    }

    /// Completes thread `t`'s wait by *timeout*: leaves the wait set
    /// without a notify and reacquires lock `l` (the semantics of a
    /// timed-out `Condvar::wait_timeout`). Gate on the lock being free.
    pub fn timeout_unpark(&mut self, cv: usize, l: usize, t: usize) {
        let pos = self.waiters[cv]
            .iter()
            .position(|&w| w == t)
            .expect("model bug: timeout of a thread that is not parked");
        self.waiters[cv].remove(pos);
        self.lock(l, t);
    }

    /// Whether thread `t` is parked (waiting, not yet notified).
    pub fn is_parked(&self, cv: usize, t: usize) -> bool {
        self.waiters[cv].contains(&t)
    }
}
