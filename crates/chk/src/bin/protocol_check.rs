//! Schedule-exploring checker for the four serving protocols.
//!
//! Runs the bounded DFS (plus the seeded-random tail) over every clean
//! protocol model, enforcing a floor on explored schedules and zero
//! violations; then runs each fault-injected variant, which **must**
//! produce a violation whose schedule string replays to the same result
//! (proving the checker can fail). Exits nonzero on any miss.
//!
//! Usage: `protocol_check [--floor N]` (default floor: 10000 bounded
//! schedules per protocol).

use polyufc_chk::explore::{replay, Explorer, Model};
use polyufc_chk::models::pipeline::Pipeline;
use polyufc_chk::models::quarantine::Quarantine;
use polyufc_chk::models::single_flight::SingleFlight;
use polyufc_chk::models::watchdog::Watchdog;

fn check_clean<M: Model>(
    label: &str,
    model: &M,
    explorer: &Explorer,
    floor: u64,
    failed: &mut bool,
) {
    let stats = explorer.explore(model);
    let violations = stats.violation.iter().count();
    println!(
        "{:<14} {:>9} {:>7} {:>10} {:>8} {:>11}",
        label,
        stats.schedules,
        stats.random_schedules,
        stats.max_depth,
        explorer.max_preemptions,
        violations
    );
    if let Some(v) = &stats.violation {
        eprintln!("FAIL [{label}]: {v}");
        *failed = true;
    }
    if stats.schedules < floor {
        eprintln!(
            "FAIL [{label}]: explored {} bounded schedules, floor is {floor}",
            stats.schedules
        );
        *failed = true;
    }
}

fn check_fault<M: Model>(label: &str, model: &M, explorer: &Explorer, failed: &mut bool) {
    let stats = explorer.explore(model);
    let Some(v) = stats.violation else {
        eprintln!("FAIL [{label}]: fault-injected model produced no violation");
        *failed = true;
        return;
    };
    match replay(model, &v.schedule) {
        Err(r) if r.message == v.message => {
            println!(
                "fault {label}: violation at schedule {} — {}",
                v.schedule, v.message
            );
            println!("fault {label}: replay reproduced the violation");
        }
        Err(r) => {
            eprintln!(
                "FAIL [{label}]: replay diverged: explorer said {:?}, replay said {:?}",
                v.message, r.message
            );
            *failed = true;
        }
        Ok(()) => {
            eprintln!(
                "FAIL [{label}]: schedule {} did not replay to a violation",
                v.schedule
            );
            *failed = true;
        }
    }
}

fn main() {
    let mut floor = 10_000u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--floor" => {
                i += 1;
                floor = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--floor needs a number");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut failed = false;
    println!(
        "{:<14} {:>9} {:>7} {:>10} {:>8} {:>11}",
        "protocol", "schedules", "random", "max-depth", "preempt", "violations"
    );

    // Budgets are per-model: enough preemptions to clear the schedule
    // floor, small enough that the DFS stays well under a second.
    let explorer = Explorer::default();
    let deep = Explorer {
        max_preemptions: 5,
        ..Explorer::default()
    };
    check_clean(
        "single-flight",
        &SingleFlight::new(3, false),
        &explorer,
        floor,
        &mut failed,
    );
    check_clean(
        "pipeline",
        &Pipeline::new(6, 2, false),
        &deep,
        floor,
        &mut failed,
    );
    check_clean(
        "watchdog",
        &Watchdog::new(true, false),
        &deep,
        floor,
        &mut failed,
    );
    check_clean(
        "watchdog-ok",
        &Watchdog::new(false, false),
        &deep,
        floor,
        &mut failed,
    );
    check_clean(
        "quarantine",
        &Quarantine::new(4, 2, false),
        &deep,
        floor,
        &mut failed,
    );

    check_fault(
        "single-flight",
        &SingleFlight::new(3, true),
        &explorer,
        &mut failed,
    );
    check_fault(
        "pipeline",
        &Pipeline::new(6, 2, true),
        &explorer,
        &mut failed,
    );
    check_fault(
        "watchdog",
        &Watchdog::new(true, true),
        &explorer,
        &mut failed,
    );
    check_fault(
        "quarantine",
        &Quarantine::new(2, 2, true),
        &explorer,
        &mut failed,
    );

    println!("PROTOCOLS_OK: {}", !failed);
    std::process::exit(if failed { 1 } else { 0 });
}
