//! Deterministic schedule-replay regressions: one pinned interleaving
//! per protocol model. The schedule strings below were discovered by the
//! bounded DFS (they are stable: the DFS has no randomness); each must
//! keep replaying to exactly the same violation, and a serialized clean
//! schedule must keep replaying clean. If a model change breaks a pin,
//! that is a semantic change to the protocol model — re-derive the
//! schedule with `protocol_check` and review the diff deliberately.

use polyufc_chk::explore::{parse_schedule, replay, schedule_string};
use polyufc_chk::models::pipeline::Pipeline;
use polyufc_chk::models::quarantine::Quarantine;
use polyufc_chk::models::single_flight::SingleFlight;
use polyufc_chk::models::watchdog::Watchdog;

#[test]
fn pinned_single_flight_double_completion_replays() {
    // Aborter takes the slot and completes Err between the leader's
    // fulfill and complete; without first-completion-wins the leader
    // then completes the same flight again.
    let v = replay(&SingleFlight::new(3, true), "0.0.0.1.1.2.2.3.0.0.0.1.2.3")
        .expect_err("pinned schedule is a violation");
    assert_eq!(v.message, "double completion: flight 0 completed twice");
}

#[test]
fn pinned_pipeline_strand_replays_as_deadlock() {
    // Client writes all six requests; the reactor's single-pass variant
    // ingests the trailing cache hits after its own flush and parks with
    // ready-but-unflushed slots and no future doorbell.
    let v = replay(
        &Pipeline::new(6, 2, true),
        "0.0.0.0.0.0.1.1.1.1.2.1.1.1.1.2.1.1.1.1",
    )
    .expect_err("pinned schedule is a violation");
    assert!(
        v.message.starts_with("deadlock/lost wakeup"),
        "unexpected message: {}",
        v.message
    );
}

#[test]
fn pinned_watchdog_double_strike_replays() {
    // The watchdog times out, takes the ticket, and strikes; the worker
    // then panics and — unguarded by ownership — strikes again.
    let v = replay(&Watchdog::new(true, true), "0.1.1.1.1.1.0.0.0.1")
        .expect_err("pinned schedule is a violation");
    assert_eq!(
        v.message,
        "double strike: one failed request recorded 2 times toward quarantine"
    );
}

#[test]
fn pinned_quarantine_lost_update_replays() {
    // Two split strikers interleave read/write around a clear; the
    // second write resurrects a cleared strike.
    let v = replay(&Quarantine::new(2, 2, true), "0.0.1.2.1")
        .expect_err("pinned schedule is a violation");
    assert!(
        v.message.starts_with("lost strike update"),
        "unexpected message: {}",
        v.message
    );
}

#[test]
fn serialized_clean_schedule_replays_clean() {
    // Fully serialized execution (no preemption at all) of the clean
    // single-flight model: leader runs to completion, then each waiter,
    // then the aborter finds nothing pending.
    let m = SingleFlight::new(2, false);
    replay(&m, "0.0.0.0.0.0.1.1.2").expect("serialized schedule is violation-free");
}

#[test]
fn schedule_strings_round_trip() {
    let s = vec![0usize, 3, 1, 1, 2];
    assert_eq!(parse_schedule(&schedule_string(&s)).unwrap(), s);
    assert_eq!(parse_schedule("").unwrap(), Vec::<usize>::new());
    assert!(parse_schedule("1.x.2").is_err());
}
