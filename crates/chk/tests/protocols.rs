//! Protocol-model exploration tests: clean models are violation-free
//! over the bounded DFS plus the random tail; fault-injected variants
//! must produce a violation (the checker can fail).

use polyufc_chk::explore::{replay, Explorer, Model};
use polyufc_chk::models::pipeline::Pipeline;
use polyufc_chk::models::quarantine::Quarantine;
use polyufc_chk::models::single_flight::SingleFlight;
use polyufc_chk::models::watchdog::Watchdog;

fn assert_clean<M: Model>(model: M, preemptions: usize, floor: u64) {
    let explorer = Explorer {
        max_preemptions: preemptions,
        ..Explorer::default()
    };
    let stats = explorer.explore(&model);
    assert!(
        stats.violation.is_none(),
        "[{}] unexpected violation: {}",
        model.name(),
        stats.violation.unwrap()
    );
    assert!(
        stats.schedules >= floor,
        "[{}] explored {} bounded schedules, wanted >= {floor}",
        model.name(),
        stats.schedules
    );
}

fn assert_faulty<M: Model>(model: M, needle: &str) {
    let explorer = Explorer::default();
    let stats = explorer.explore(&model);
    let v = stats
        .violation
        .unwrap_or_else(|| panic!("[{}] fault variant found no violation", model.name()));
    assert!(
        v.message.contains(needle),
        "[{}] violation {:?} does not mention {needle:?}",
        model.name(),
        v.message
    );
    // The printed schedule string must reproduce the violation exactly.
    match replay(&model, &v.schedule) {
        Err(r) => assert_eq!(r.message, v.message, "replay diverged"),
        Ok(()) => panic!("[{}] schedule {} replayed clean", model.name(), v.schedule),
    }
}

#[test]
fn single_flight_is_clean_within_the_bound() {
    assert_clean(SingleFlight::new(3, false), 3, 10_000);
}

#[test]
fn pipeline_is_clean_within_the_bound() {
    assert_clean(Pipeline::new(6, 2, false), 5, 10_000);
}

#[test]
fn watchdog_is_clean_within_the_bound() {
    assert_clean(Watchdog::new(true, false), 5, 10_000);
    assert_clean(Watchdog::new(false, false), 5, 10_000);
}

#[test]
fn quarantine_is_clean_within_the_bound() {
    assert_clean(Quarantine::new(4, 2, false), 5, 10_000);
}

#[test]
fn unguarded_complete_produces_a_double_completion() {
    assert_faulty(SingleFlight::new(3, true), "double completion");
}

#[test]
fn single_pass_resume_strands_a_paused_connection() {
    assert_faulty(Pipeline::new(6, 2, true), "deadlock/lost wakeup");
}

#[test]
fn unguarded_panic_strike_double_counts_one_failure() {
    assert_faulty(Watchdog::new(true, true), "double strike");
}

#[test]
fn split_record_strike_loses_updates() {
    assert_faulty(Quarantine::new(2, 2, true), "lost strike update");
}

#[test]
fn explorer_depth_and_random_tail_are_reported() {
    let explorer = Explorer {
        random_tail: 64,
        ..Explorer::default()
    };
    let stats = explorer.explore(&SingleFlight::new(2, false));
    assert!(stats.max_depth > 0);
    assert_eq!(stats.random_schedules, 64);
}
