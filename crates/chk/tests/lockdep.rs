//! Lockdep detector regression tests (require `--features lockdep`).
#![cfg(feature = "lockdep")]

use polyufc_chk::sync::{lockdep_last_cycle, lockdep_stats, OrderedCondvar, OrderedMutex};
use std::sync::Arc;
use std::time::Duration;

/// The order graph is process-global and `cargo test` runs tests
/// concurrently, so tests that assert on the *latest* cycle report
/// serialize through this lock (poison-recovering: an assert failure in
/// one test must not wedge the others).
static REPORT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn report_guard() -> std::sync::MutexGuard<'static, ()> {
    REPORT_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn inverted_acquisition_order_reports_a_witness_cycle() {
    let _g = report_guard();
    let a = OrderedMutex::new("test.cycle.a", 0u32);
    let b = OrderedMutex::new("test.cycle.b", 0u32);
    {
        let _ga = a.lock().unwrap();
        let _gb = b.lock().unwrap(); // records a -> b
    }
    let before = lockdep_stats().expect("lockdep on").cycles;
    {
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap(); // records b -> a: closes the cycle
    }
    let stats = lockdep_stats().expect("lockdep on");
    assert!(stats.cycles > before, "cycle not counted");
    let report = lockdep_last_cycle().expect("cycle report recorded");
    assert!(
        report.contains("test.cycle.a"),
        "report names class a: {report}"
    );
    assert!(
        report.contains("test.cycle.b"),
        "report names class b: {report}"
    );
    assert!(
        report.contains("acquisition stack (new edge)")
            && report.contains("acquisition stack (existing edge"),
        "report carries both acquisition stacks: {report}"
    );
}

#[test]
fn same_class_nesting_is_a_self_cycle() {
    let _g = report_guard();
    let outer = OrderedMutex::new("test.selfcycle", 0u32);
    let inner = OrderedMutex::new("test.selfcycle", 0u32);
    let before = lockdep_stats().expect("lockdep on").cycles;
    let _go = outer.lock().unwrap();
    let _gi = inner.lock().unwrap(); // two locks of one class held at once
    let stats = lockdep_stats().expect("lockdep on");
    assert!(stats.cycles > before, "self-cycle not counted");
    assert!(lockdep_last_cycle()
        .expect("report")
        .contains("test.selfcycle"));
}

#[test]
fn consistent_order_and_out_of_order_drops_stay_clean() {
    let _g = report_guard();
    let a = OrderedMutex::new("test.clean.a", 0u32);
    let b = OrderedMutex::new("test.clean.b", 0u32);
    let before = lockdep_stats().expect("lockdep on").cycles;
    for _ in 0..3 {
        let ga = a.lock().unwrap();
        let gb = b.lock().unwrap();
        // Guards dropped in acquisition order (not reverse): legal, and
        // must not corrupt the held-class stack.
        drop(ga);
        drop(gb);
    }
    let stats = lockdep_stats().expect("lockdep on");
    assert_eq!(stats.cycles, before, "consistent order flagged a cycle");
    assert!(stats.sites >= 2);
    assert!(stats.max_chain >= 2, "a->b chain has depth 2");
}

#[test]
fn condvar_wait_releases_the_class_during_the_wait() {
    // While parked in `wait`, the mutex class must leave the held stack:
    // acquiring in the "opposite" order from the waker must not report a
    // cycle, because the waiter does not actually hold the lock.
    let _g = report_guard();
    let before = lockdep_stats().expect("lockdep on").cycles;
    let pair = Arc::new((
        OrderedMutex::new("test.cv.latch", false),
        OrderedCondvar::new("test.cv.cond"),
    ));
    let other = Arc::new(OrderedMutex::new("test.cv.other", 0u32));
    let waiter = {
        let pair = Arc::clone(&pair);
        std::thread::spawn(move || {
            let (lock, cv) = &*pair;
            let mut ready = lock.lock().unwrap();
            while !*ready {
                let (guard, _timeout) = cv.wait_timeout(ready, Duration::from_millis(50)).unwrap();
                ready = guard;
            }
        })
    };
    {
        // Waker nests latch under other; if the waiter's parked class
        // were still "held", interleavings could look cyclic.
        let _go = other.lock().unwrap();
        let (lock, cv) = &*pair;
        let mut ready = lock.lock().unwrap();
        *ready = true;
        cv.notify_all();
        drop(ready);
    }
    waiter.join().expect("waiter exits");
    let stats = lockdep_stats().expect("lockdep on");
    assert_eq!(stats.cycles, before, "condvar wait leaked a held class");
}

#[test]
fn poisoned_holder_does_not_wedge_detector() {
    let _g = report_guard();
    let poisoned = Arc::new(OrderedMutex::new("test.poison.victim", 0u32));
    {
        let m = Arc::clone(&poisoned);
        let t = std::thread::spawn(move || {
            let _guard = m.lock().unwrap();
            panic!("deliberate panic while holding the lock");
        });
        assert!(t.join().is_err(), "holder panicked");
    }
    // The mutex itself is poisoned (std semantics preserved)...
    let recovered = match poisoned.lock() {
        Err(p) => p.into_inner(),
        Ok(_) => panic!("expected the victim mutex to be poisoned"),
    };
    assert_eq!(*recovered, 0);
    drop(recovered);
    // ...but the detector is not wedged: new classes register, locks
    // acquire, stats read, and cycle detection still fires.
    let x = OrderedMutex::new("test.poison.after.x", 0u32);
    let y = OrderedMutex::new("test.poison.after.y", 0u32);
    {
        let _gx = x.lock().unwrap();
        let _gy = y.lock().unwrap();
    }
    let before = lockdep_stats().expect("stats readable after panic").cycles;
    {
        let _gy = y.lock().unwrap();
        let _gx = x.lock().unwrap();
    }
    let stats = lockdep_stats().expect("stats readable after cycle");
    assert!(
        stats.cycles > before,
        "detector stopped detecting after a poisoned holder"
    );
    let report = lockdep_last_cycle().expect("report after poison");
    assert!(report.contains("test.poison.after.x"));
}
