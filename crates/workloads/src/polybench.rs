//! The PolyBench kernels as affine-IR builders.
//!
//! Each kernel is a sequence of perfect affine nests over a shared array
//! table. The builders reproduce the *access pattern and flop count* of
//! the reference C implementations (imperfect nests split into nest
//! sequences; per-time-step phase pairs of stencils become two statements
//! of one nest, which is trace-equivalent at cache-line granularity).
//! Numerics are never computed — PolyUFC only needs the trace and the
//! polyhedral structure.

use polyufc_ir::affine::{Access, AffineKernel, AffineProgram, Bound, Loop, Statement};
use polyufc_ir::types::{ArrayId, ElemType};
use polyufc_presburger::LinExpr;

use crate::sizes::PolybenchSize;

/// One benchmark: a named affine program with its PolyBench category and,
/// where the paper states it, the expected CB/BB class on RPL (Fig. 6).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Kernel name (PolyBench spelling).
    pub name: &'static str,
    /// PolyBench category (`blas`, `kernels`, `solvers`, `datamining`,
    /// `stencils`, `medley`).
    pub category: &'static str,
    /// The program.
    pub program: AffineProgram,
    /// Paper-reported class on RPL, when stated ("CB"/"BB").
    pub paper_class: Option<&'static str>,
}

fn v(d: usize) -> LinExpr {
    LinExpr::var(d)
}

fn c(k: i64) -> LinExpr {
    LinExpr::constant(k)
}

fn rd(a: ArrayId, idx: Vec<LinExpr>) -> Access {
    Access::read(a, idx)
}

fn wr(a: ArrayId, idx: Vec<LinExpr>) -> Access {
    Access::write(a, idx)
}

fn stmt(name: &str, accesses: Vec<Access>, flops: u64) -> Statement {
    Statement {
        name: name.into(),
        accesses,
        flops,
    }
}

fn nest(name: &str, loops: Vec<Loop>, statements: Vec<Statement>) -> AffineKernel {
    AffineKernel {
        name: name.into(),
        loops,
        statements,
    }
}

/// `for d in lo..hi` with affine bounds.
fn l(lo: LinExpr, hi: LinExpr) -> Loop {
    Loop::new(Bound::expr(lo), Bound::expr(hi))
}

fn r(n: usize) -> Loop {
    Loop::range(n as i64)
}

// ---------------------------------------------------------------------
// blas
// ---------------------------------------------------------------------

/// `gemm`: `C = α·A·B + β·C`.
pub fn gemm(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("gemm");
    let a = p.add_array("A", vec![n, n], ElemType::F64);
    let b = p.add_array("B", vec![n, n], ElemType::F64);
    let cc = p.add_array("C", vec![n, n], ElemType::F64);
    p.kernels.push(nest(
        "gemm_scale",
        vec![r(n), r(n)],
        vec![stmt(
            "s0",
            vec![rd(cc, vec![v(0), v(1)]), wr(cc, vec![v(0), v(1)])],
            1,
        )],
    ));
    p.kernels.push(nest(
        "gemm_main",
        vec![r(n), r(n), r(n)],
        vec![stmt(
            "s1",
            vec![
                rd(a, vec![v(0), v(2)]),
                rd(b, vec![v(2), v(1)]),
                rd(cc, vec![v(0), v(1)]),
                wr(cc, vec![v(0), v(1)]),
            ],
            2,
        )],
    ));
    p
}

/// `syrk`: `C = α·A·Aᵀ + β·C` on the lower triangle.
pub fn syrk(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("syrk");
    let a = p.add_array("A", vec![n, n], ElemType::F64);
    let cc = p.add_array("C", vec![n, n], ElemType::F64);
    p.kernels.push(nest(
        "syrk_scale",
        vec![r(n), l(c(0), v(0) + c(1))],
        vec![stmt(
            "s0",
            vec![rd(cc, vec![v(0), v(1)]), wr(cc, vec![v(0), v(1)])],
            1,
        )],
    ));
    p.kernels.push(nest(
        "syrk_main",
        vec![r(n), l(c(0), v(0) + c(1)), r(n)],
        vec![stmt(
            "s1",
            vec![
                rd(a, vec![v(0), v(2)]),
                rd(a, vec![v(1), v(2)]),
                rd(cc, vec![v(0), v(1)]),
                wr(cc, vec![v(0), v(1)]),
            ],
            2,
        )],
    ));
    p
}

/// `syr2k`: `C = α·(A·Bᵀ + B·Aᵀ) + β·C` on the lower triangle.
pub fn syr2k(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("syr2k");
    let a = p.add_array("A", vec![n, n], ElemType::F64);
    let b = p.add_array("B", vec![n, n], ElemType::F64);
    let cc = p.add_array("C", vec![n, n], ElemType::F64);
    p.kernels.push(nest(
        "syr2k_scale",
        vec![r(n), l(c(0), v(0) + c(1))],
        vec![stmt(
            "s0",
            vec![rd(cc, vec![v(0), v(1)]), wr(cc, vec![v(0), v(1)])],
            1,
        )],
    ));
    p.kernels.push(nest(
        "syr2k_main",
        vec![r(n), l(c(0), v(0) + c(1)), r(n)],
        vec![stmt(
            "s1",
            vec![
                rd(a, vec![v(0), v(2)]),
                rd(b, vec![v(1), v(2)]),
                rd(b, vec![v(0), v(2)]),
                rd(a, vec![v(1), v(2)]),
                rd(cc, vec![v(0), v(1)]),
                wr(cc, vec![v(0), v(1)]),
            ],
            4,
        )],
    ));
    p
}

/// `symm`: symmetric matrix multiply (triangular inner loop).
pub fn symm(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("symm");
    let a = p.add_array("A", vec![n, n], ElemType::F64);
    let b = p.add_array("B", vec![n, n], ElemType::F64);
    let cc = p.add_array("C", vec![n, n], ElemType::F64);
    p.kernels.push(nest(
        "symm_tri",
        vec![r(n), r(n), l(c(0), v(0))],
        vec![stmt(
            "s0",
            vec![
                rd(a, vec![v(0), v(2)]),
                rd(b, vec![v(0), v(1)]),
                rd(b, vec![v(2), v(1)]),
                rd(cc, vec![v(2), v(1)]),
                wr(cc, vec![v(2), v(1)]),
            ],
            4,
        )],
    ));
    p.kernels.push(nest(
        "symm_diag",
        vec![r(n), r(n)],
        vec![stmt(
            "s1",
            vec![
                rd(b, vec![v(0), v(1)]),
                rd(a, vec![v(0), v(0)]),
                rd(cc, vec![v(0), v(1)]),
                wr(cc, vec![v(0), v(1)]),
            ],
            4,
        )],
    ));
    p
}

/// `trmm`: triangular matrix multiply.
pub fn trmm(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("trmm");
    let a = p.add_array("A", vec![n, n], ElemType::F64);
    let b = p.add_array("B", vec![n, n], ElemType::F64);
    p.kernels.push(nest(
        "trmm_main",
        vec![r(n), r(n), l(v(0) + c(1), c(n as i64))],
        vec![stmt(
            "s0",
            vec![
                rd(a, vec![v(2), v(0)]),
                rd(b, vec![v(2), v(1)]),
                rd(b, vec![v(0), v(1)]),
                wr(b, vec![v(0), v(1)]),
            ],
            2,
        )],
    ));
    p.kernels.push(nest(
        "trmm_scale",
        vec![r(n), r(n)],
        vec![stmt(
            "s1",
            vec![rd(b, vec![v(0), v(1)]), wr(b, vec![v(0), v(1)])],
            1,
        )],
    ));
    p
}

/// `gemver`: vector multiplication and matrix addition.
pub fn gemver(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("gemver");
    let a = p.add_array("A", vec![n, n], ElemType::F64);
    let u1 = p.add_array("u1", vec![n], ElemType::F64);
    let v1 = p.add_array("v1", vec![n], ElemType::F64);
    let u2 = p.add_array("u2", vec![n], ElemType::F64);
    let v2 = p.add_array("v2", vec![n], ElemType::F64);
    let x = p.add_array("x", vec![n], ElemType::F64);
    let y = p.add_array("y", vec![n], ElemType::F64);
    let z = p.add_array("z", vec![n], ElemType::F64);
    let w = p.add_array("w", vec![n], ElemType::F64);
    p.kernels.push(nest(
        "gemver_rank2",
        vec![r(n), r(n)],
        vec![stmt(
            "s0",
            vec![
                rd(a, vec![v(0), v(1)]),
                rd(u1, vec![v(0)]),
                rd(v1, vec![v(1)]),
                rd(u2, vec![v(0)]),
                rd(v2, vec![v(1)]),
                wr(a, vec![v(0), v(1)]),
            ],
            4,
        )],
    ));
    p.kernels.push(nest(
        "gemver_xt",
        vec![r(n), r(n)],
        vec![stmt(
            "s1",
            vec![
                rd(a, vec![v(1), v(0)]),
                rd(y, vec![v(1)]),
                rd(x, vec![v(0)]),
                wr(x, vec![v(0)]),
            ],
            3,
        )],
    ));
    p.kernels.push(nest(
        "gemver_xz",
        vec![r(n)],
        vec![stmt(
            "s2",
            vec![rd(x, vec![v(0)]), rd(z, vec![v(0)]), wr(x, vec![v(0)])],
            1,
        )],
    ));
    p.kernels.push(nest(
        "gemver_w",
        vec![r(n), r(n)],
        vec![stmt(
            "s3",
            vec![
                rd(a, vec![v(0), v(1)]),
                rd(x, vec![v(1)]),
                rd(w, vec![v(0)]),
                wr(w, vec![v(0)]),
            ],
            3,
        )],
    ));
    p
}

/// `gesummv`: scalar, vector and matrix multiplication.
pub fn gesummv(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("gesummv");
    let a = p.add_array("A", vec![n, n], ElemType::F64);
    let b = p.add_array("B", vec![n, n], ElemType::F64);
    let x = p.add_array("x", vec![n], ElemType::F64);
    let y = p.add_array("y", vec![n], ElemType::F64);
    p.kernels.push(nest(
        "gesummv_main",
        vec![r(n), r(n)],
        vec![stmt(
            "s0",
            vec![
                rd(a, vec![v(0), v(1)]),
                rd(b, vec![v(0), v(1)]),
                rd(x, vec![v(1)]),
                rd(y, vec![v(0)]),
                wr(y, vec![v(0)]),
            ],
            4,
        )],
    ));
    p
}

// ---------------------------------------------------------------------
// kernels
// ---------------------------------------------------------------------

/// `2mm`: `D = α·A·B·C + β·D`.
pub fn two_mm(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("2mm");
    let a = p.add_array("A", vec![n, n], ElemType::F64);
    let b = p.add_array("B", vec![n, n], ElemType::F64);
    let cc = p.add_array("C", vec![n, n], ElemType::F64);
    let d = p.add_array("D", vec![n, n], ElemType::F64);
    let tmp = p.add_array("tmp", vec![n, n], ElemType::F64);
    p.kernels.push(nest(
        "2mm_fill",
        vec![r(n), r(n)],
        vec![stmt("s0", vec![wr(tmp, vec![v(0), v(1)])], 0)],
    ));
    p.kernels.push(nest(
        "2mm_mm1",
        vec![r(n), r(n), r(n)],
        vec![stmt(
            "s1",
            vec![
                rd(a, vec![v(0), v(2)]),
                rd(b, vec![v(2), v(1)]),
                rd(tmp, vec![v(0), v(1)]),
                wr(tmp, vec![v(0), v(1)]),
            ],
            2,
        )],
    ));
    p.kernels.push(nest(
        "2mm_scale",
        vec![r(n), r(n)],
        vec![stmt(
            "s2",
            vec![rd(d, vec![v(0), v(1)]), wr(d, vec![v(0), v(1)])],
            1,
        )],
    ));
    p.kernels.push(nest(
        "2mm_mm2",
        vec![r(n), r(n), r(n)],
        vec![stmt(
            "s3",
            vec![
                rd(tmp, vec![v(0), v(2)]),
                rd(cc, vec![v(2), v(1)]),
                rd(d, vec![v(0), v(1)]),
                wr(d, vec![v(0), v(1)]),
            ],
            2,
        )],
    ));
    p
}

/// `3mm`: `G = (A·B)·(C·D)`.
pub fn three_mm(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("3mm");
    let names = ["A", "B", "C", "D", "E", "F", "G"];
    let ids: Vec<ArrayId> = names
        .iter()
        .map(|nm| p.add_array(*nm, vec![n, n], ElemType::F64))
        .collect();
    let (a, b, cc, d, e, f, g) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6]);
    for (dst, lhs, rhs, tag) in [(e, a, b, "1"), (f, cc, d, "2"), (g, e, f, "3")] {
        p.kernels.push(nest(
            &format!("3mm_fill{tag}"),
            vec![r(n), r(n)],
            vec![stmt("f", vec![wr(dst, vec![v(0), v(1)])], 0)],
        ));
        p.kernels.push(nest(
            &format!("3mm_mm{tag}"),
            vec![r(n), r(n), r(n)],
            vec![stmt(
                "s",
                vec![
                    rd(lhs, vec![v(0), v(2)]),
                    rd(rhs, vec![v(2), v(1)]),
                    rd(dst, vec![v(0), v(1)]),
                    wr(dst, vec![v(0), v(1)]),
                ],
                2,
            )],
        ));
    }
    p
}

/// `atax`: `y = Aᵀ(A·x)`.
pub fn atax(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("atax");
    let a = p.add_array("A", vec![n, n], ElemType::F64);
    let x = p.add_array("x", vec![n], ElemType::F64);
    let y = p.add_array("y", vec![n], ElemType::F64);
    let tmp = p.add_array("tmp", vec![n], ElemType::F64);
    p.kernels.push(nest(
        "atax_tmp",
        vec![r(n), r(n)],
        vec![stmt(
            "s0",
            vec![
                rd(a, vec![v(0), v(1)]),
                rd(x, vec![v(1)]),
                rd(tmp, vec![v(0)]),
                wr(tmp, vec![v(0)]),
            ],
            2,
        )],
    ));
    p.kernels.push(nest(
        "atax_y",
        vec![r(n), r(n)],
        vec![stmt(
            "s1",
            vec![
                rd(a, vec![v(0), v(1)]),
                rd(tmp, vec![v(0)]),
                rd(y, vec![v(1)]),
                wr(y, vec![v(1)]),
            ],
            2,
        )],
    ));
    p
}

/// `bicg`: BiCG sub-kernel of BiCGStab.
pub fn bicg(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("bicg");
    let a = p.add_array("A", vec![n, n], ElemType::F64);
    let s = p.add_array("s", vec![n], ElemType::F64);
    let q = p.add_array("q", vec![n], ElemType::F64);
    let pp = p.add_array("p", vec![n], ElemType::F64);
    let rr = p.add_array("r", vec![n], ElemType::F64);
    p.kernels.push(nest(
        "bicg_s",
        vec![r(n), r(n)],
        vec![stmt(
            "s0",
            vec![
                rd(a, vec![v(0), v(1)]),
                rd(rr, vec![v(0)]),
                rd(s, vec![v(1)]),
                wr(s, vec![v(1)]),
            ],
            2,
        )],
    ));
    p.kernels.push(nest(
        "bicg_q",
        vec![r(n), r(n)],
        vec![stmt(
            "s1",
            vec![
                rd(a, vec![v(0), v(1)]),
                rd(pp, vec![v(1)]),
                rd(q, vec![v(0)]),
                wr(q, vec![v(0)]),
            ],
            2,
        )],
    ));
    p
}

/// `mvt`: matrix-vector product and transpose.
pub fn mvt(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("mvt");
    let a = p.add_array("A", vec![n, n], ElemType::F64);
    let x1 = p.add_array("x1", vec![n], ElemType::F64);
    let x2 = p.add_array("x2", vec![n], ElemType::F64);
    let y1 = p.add_array("y1", vec![n], ElemType::F64);
    let y2 = p.add_array("y2", vec![n], ElemType::F64);
    p.kernels.push(nest(
        "mvt_x1",
        vec![r(n), r(n)],
        vec![stmt(
            "s0",
            vec![
                rd(a, vec![v(0), v(1)]),
                rd(y1, vec![v(1)]),
                rd(x1, vec![v(0)]),
                wr(x1, vec![v(0)]),
            ],
            2,
        )],
    ));
    p.kernels.push(nest(
        "mvt_x2",
        vec![r(n), r(n)],
        vec![stmt(
            "s1",
            vec![
                rd(a, vec![v(1), v(0)]),
                rd(y2, vec![v(1)]),
                rd(x2, vec![v(0)]),
                wr(x2, vec![v(0)]),
            ],
            2,
        )],
    ));
    p
}

/// `doitgen`: multiresolution analysis kernel.
pub fn doitgen(nr: usize, nq: usize, np: usize) -> AffineProgram {
    let mut p = AffineProgram::new("doitgen");
    let a = p.add_array("A", vec![nr, nq, np], ElemType::F64);
    let c4 = p.add_array("C4", vec![np, np], ElemType::F64);
    let sum = p.add_array("sum", vec![np], ElemType::F64);
    p.kernels.push(nest(
        "doitgen_sum",
        vec![r(nr), r(nq), r(np), r(np)],
        vec![stmt(
            "s0",
            vec![
                rd(a, vec![v(0), v(1), v(3)]),
                rd(c4, vec![v(3), v(2)]),
                rd(sum, vec![v(2)]),
                wr(sum, vec![v(2)]),
            ],
            2,
        )],
    ));
    p.kernels.push(nest(
        "doitgen_copy",
        vec![r(nr), r(nq), r(np)],
        vec![stmt(
            "s1",
            vec![rd(sum, vec![v(2)]), wr(a, vec![v(0), v(1), v(2)])],
            0,
        )],
    ));
    p
}

// ---------------------------------------------------------------------
// solvers
// ---------------------------------------------------------------------

/// `trisolv`: triangular solve.
pub fn trisolv(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("trisolv");
    let ll = p.add_array("L", vec![n, n], ElemType::F64);
    let x = p.add_array("x", vec![n], ElemType::F64);
    let b = p.add_array("b", vec![n], ElemType::F64);
    p.kernels.push(nest(
        "trisolv_init",
        vec![r(n)],
        vec![stmt("s0", vec![rd(b, vec![v(0)]), wr(x, vec![v(0)])], 0)],
    ));
    p.kernels.push(nest(
        "trisolv_sub",
        vec![r(n), l(c(0), v(0))],
        vec![stmt(
            "s1",
            vec![
                rd(ll, vec![v(0), v(1)]),
                rd(x, vec![v(1)]),
                rd(x, vec![v(0)]),
                wr(x, vec![v(0)]),
            ],
            2,
        )],
    ));
    p.kernels.push(nest(
        "trisolv_div",
        vec![r(n)],
        vec![stmt(
            "s2",
            vec![
                rd(ll, vec![v(0), v(0)]),
                rd(x, vec![v(0)]),
                wr(x, vec![v(0)]),
            ],
            1,
        )],
    ));
    p
}

/// `durbin`: Toeplitz solver (Levinson-Durbin recursion).
pub fn durbin(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("durbin");
    let rr = p.add_array("r", vec![n], ElemType::F64);
    let y = p.add_array("y", vec![n], ElemType::F64);
    let z = p.add_array("z", vec![n], ElemType::F64);
    p.kernels.push(nest(
        "durbin_alpha",
        vec![r(n), l(c(0), v(0))],
        vec![stmt(
            "s0",
            vec![rd(rr, vec![v(0) - v(1) - c(1)]), rd(y, vec![v(1)])],
            2,
        )],
    ));
    p.kernels.push(nest(
        "durbin_update",
        vec![r(n), l(c(0), v(0))],
        vec![
            stmt(
                "s1",
                vec![
                    rd(y, vec![v(1)]),
                    rd(y, vec![v(0) - v(1) - c(1)]),
                    wr(z, vec![v(1)]),
                ],
                2,
            ),
            stmt("s2", vec![rd(z, vec![v(1)]), wr(y, vec![v(1)])], 0),
        ],
    ));
    p
}

/// `lu`: LU decomposition (in place).
pub fn lu(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("lu");
    let a = p.add_array("A", vec![n, n], ElemType::F64);
    p.kernels.push(nest(
        "lu_div",
        vec![r(n), l(v(0) + c(1), c(n as i64))],
        vec![stmt(
            "s0",
            vec![
                rd(a, vec![v(1), v(0)]),
                rd(a, vec![v(0), v(0)]),
                wr(a, vec![v(1), v(0)]),
            ],
            1,
        )],
    ));
    p.kernels.push(nest(
        "lu_update",
        vec![
            r(n),
            l(v(0) + c(1), c(n as i64)),
            l(v(0) + c(1), c(n as i64)),
        ],
        vec![stmt(
            "s1",
            vec![
                rd(a, vec![v(1), v(0)]),
                rd(a, vec![v(0), v(2)]),
                rd(a, vec![v(1), v(2)]),
                wr(a, vec![v(1), v(2)]),
            ],
            2,
        )],
    ));
    p
}

/// `ludcmp`: LU decomposition plus forward/backward substitution.
pub fn ludcmp(n: usize) -> AffineProgram {
    let mut p = lu(n);
    p.name = "ludcmp".into();
    let a = ArrayId(0);
    let b = p.add_array("b", vec![n], ElemType::F64);
    let y = p.add_array("y", vec![n], ElemType::F64);
    let x = p.add_array("x", vec![n], ElemType::F64);
    p.kernels.push(nest(
        "ludcmp_fwd",
        vec![r(n), l(c(0), v(0))],
        vec![stmt(
            "s2",
            vec![
                rd(a, vec![v(0), v(1)]),
                rd(y, vec![v(1)]),
                rd(b, vec![v(0)]),
                wr(y, vec![v(0)]),
            ],
            2,
        )],
    ));
    p.kernels.push(nest(
        "ludcmp_bwd",
        vec![r(n), l(c(0), v(0))],
        vec![stmt(
            "s3",
            vec![
                rd(a, vec![v(0), v(1)]),
                rd(x, vec![v(1)]),
                rd(y, vec![v(0)]),
                wr(x, vec![v(0)]),
            ],
            2,
        )],
    ));
    p
}

/// `cholesky`: Cholesky decomposition.
pub fn cholesky(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("cholesky");
    let a = p.add_array("A", vec![n, n], ElemType::F64);
    p.kernels.push(nest(
        "cholesky_update",
        vec![r(n), l(c(0), v(0)), l(c(0), v(1))],
        vec![stmt(
            "s0",
            vec![
                rd(a, vec![v(0), v(2)]),
                rd(a, vec![v(1), v(2)]),
                rd(a, vec![v(0), v(1)]),
                wr(a, vec![v(0), v(1)]),
            ],
            2,
        )],
    ));
    p.kernels.push(nest(
        "cholesky_div",
        vec![r(n), l(c(0), v(0))],
        vec![stmt(
            "s1",
            vec![
                rd(a, vec![v(1), v(1)]),
                rd(a, vec![v(0), v(1)]),
                wr(a, vec![v(0), v(1)]),
            ],
            1,
        )],
    ));
    p.kernels.push(nest(
        "cholesky_diag",
        vec![r(n), l(c(0), v(0))],
        vec![stmt(
            "s2",
            vec![
                rd(a, vec![v(0), v(1)]),
                rd(a, vec![v(0), v(0)]),
                wr(a, vec![v(0), v(0)]),
            ],
            2,
        )],
    ));
    p
}

/// `gramschmidt`: QR decomposition by Gram-Schmidt.
pub fn gramschmidt(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("gramschmidt");
    let a = p.add_array("A", vec![n, n], ElemType::F64);
    let q = p.add_array("Q", vec![n, n], ElemType::F64);
    let rm = p.add_array("R", vec![n, n], ElemType::F64);
    let nrm = p.add_array("nrm", vec![n], ElemType::F64);
    p.kernels.push(nest(
        "gs_norm",
        vec![r(n), r(n)],
        vec![stmt(
            "s0",
            vec![
                rd(a, vec![v(1), v(0)]),
                rd(nrm, vec![v(0)]),
                wr(nrm, vec![v(0)]),
            ],
            2,
        )],
    ));
    p.kernels.push(nest(
        "gs_q",
        vec![r(n), r(n)],
        vec![stmt(
            "s1",
            vec![
                rd(a, vec![v(1), v(0)]),
                rd(nrm, vec![v(0)]),
                wr(q, vec![v(1), v(0)]),
            ],
            1,
        )],
    ));
    p.kernels.push(nest(
        "gs_proj",
        vec![r(n), l(v(0) + c(1), c(n as i64)), r(n)],
        vec![
            stmt(
                "s2",
                vec![
                    rd(q, vec![v(2), v(0)]),
                    rd(a, vec![v(2), v(1)]),
                    rd(rm, vec![v(0), v(1)]),
                    wr(rm, vec![v(0), v(1)]),
                ],
                2,
            ),
            stmt(
                "s3",
                vec![
                    rd(q, vec![v(2), v(0)]),
                    rd(rm, vec![v(0), v(1)]),
                    rd(a, vec![v(2), v(1)]),
                    wr(a, vec![v(2), v(1)]),
                ],
                2,
            ),
        ],
    ));
    p
}

// ---------------------------------------------------------------------
// datamining
// ---------------------------------------------------------------------

/// `correlation`: correlation matrix.
pub fn correlation(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("correlation");
    let data = p.add_array("data", vec![n, n], ElemType::F64);
    let mean = p.add_array("mean", vec![n], ElemType::F64);
    let stddev = p.add_array("stddev", vec![n], ElemType::F64);
    let corr = p.add_array("corr", vec![n, n], ElemType::F64);
    p.kernels.push(nest(
        "corr_mean",
        vec![r(n), r(n)],
        vec![stmt(
            "s0",
            vec![
                rd(data, vec![v(1), v(0)]),
                rd(mean, vec![v(0)]),
                wr(mean, vec![v(0)]),
            ],
            1,
        )],
    ));
    p.kernels.push(nest(
        "corr_std",
        vec![r(n), r(n)],
        vec![stmt(
            "s1",
            vec![
                rd(data, vec![v(1), v(0)]),
                rd(mean, vec![v(0)]),
                rd(stddev, vec![v(0)]),
                wr(stddev, vec![v(0)]),
            ],
            3,
        )],
    ));
    p.kernels.push(nest(
        "corr_center",
        vec![r(n), r(n)],
        vec![stmt(
            "s2",
            vec![
                rd(data, vec![v(0), v(1)]),
                rd(mean, vec![v(1)]),
                rd(stddev, vec![v(1)]),
                wr(data, vec![v(0), v(1)]),
            ],
            3,
        )],
    ));
    p.kernels.push(nest(
        "corr_matrix",
        vec![r(n), l(v(0) + c(1), c(n as i64)), r(n)],
        vec![stmt(
            "s3",
            vec![
                rd(data, vec![v(2), v(0)]),
                rd(data, vec![v(2), v(1)]),
                rd(corr, vec![v(0), v(1)]),
                wr(corr, vec![v(0), v(1)]),
            ],
            2,
        )],
    ));
    p
}

/// `covariance`: covariance matrix.
pub fn covariance(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("covariance");
    let data = p.add_array("data", vec![n, n], ElemType::F64);
    let mean = p.add_array("mean", vec![n], ElemType::F64);
    let cov = p.add_array("cov", vec![n, n], ElemType::F64);
    p.kernels.push(nest(
        "cov_mean",
        vec![r(n), r(n)],
        vec![stmt(
            "s0",
            vec![
                rd(data, vec![v(1), v(0)]),
                rd(mean, vec![v(0)]),
                wr(mean, vec![v(0)]),
            ],
            1,
        )],
    ));
    p.kernels.push(nest(
        "cov_center",
        vec![r(n), r(n)],
        vec![stmt(
            "s1",
            vec![
                rd(data, vec![v(0), v(1)]),
                rd(mean, vec![v(1)]),
                wr(data, vec![v(0), v(1)]),
            ],
            1,
        )],
    ));
    p.kernels.push(nest(
        "cov_matrix",
        vec![r(n), l(v(0), c(n as i64)), r(n)],
        vec![stmt(
            "s2",
            vec![
                rd(data, vec![v(2), v(0)]),
                rd(data, vec![v(2), v(1)]),
                rd(cov, vec![v(0), v(1)]),
                wr(cov, vec![v(0), v(1)]),
            ],
            2,
        )],
    ));
    p
}

// ---------------------------------------------------------------------
// stencils & medley
// ---------------------------------------------------------------------

/// `jacobi-1d`: 3-point stencil, two phase statements per time step.
pub fn jacobi_1d(tsteps: usize, n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("jacobi-1d");
    let a = p.add_array("A", vec![n], ElemType::F64);
    let b = p.add_array("B", vec![n], ElemType::F64);
    p.kernels.push(nest(
        "jacobi1d_sweep",
        vec![r(tsteps), l(c(1), c(n as i64 - 1))],
        vec![
            stmt(
                "s0",
                vec![
                    rd(a, vec![v(1) - c(1)]),
                    rd(a, vec![v(1)]),
                    rd(a, vec![v(1) + c(1)]),
                    wr(b, vec![v(1)]),
                ],
                3,
            ),
            stmt(
                "s1",
                vec![
                    rd(b, vec![v(1) - c(1)]),
                    rd(b, vec![v(1)]),
                    rd(b, vec![v(1) + c(1)]),
                    wr(a, vec![v(1)]),
                ],
                3,
            ),
        ],
    ));
    p
}

/// `jacobi-2d`: 5-point stencil.
pub fn jacobi_2d(tsteps: usize, n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("jacobi-2d");
    let a = p.add_array("A", vec![n, n], ElemType::F64);
    let b = p.add_array("B", vec![n, n], ElemType::F64);
    let taps = |arr: ArrayId| {
        vec![
            rd(arr, vec![v(1), v(2)]),
            rd(arr, vec![v(1), v(2) - c(1)]),
            rd(arr, vec![v(1), v(2) + c(1)]),
            rd(arr, vec![v(1) - c(1), v(2)]),
            rd(arr, vec![v(1) + c(1), v(2)]),
        ]
    };
    let m = n as i64 - 1;
    let mut acc0 = taps(a);
    acc0.push(wr(b, vec![v(1), v(2)]));
    let mut acc1 = taps(b);
    acc1.push(wr(a, vec![v(1), v(2)]));
    p.kernels.push(nest(
        "jacobi2d_sweep",
        vec![r(tsteps), l(c(1), c(m)), l(c(1), c(m))],
        vec![stmt("s0", acc0, 5), stmt("s1", acc1, 5)],
    ));
    p
}

/// `heat-3d`: 7-point 3-D stencil.
pub fn heat_3d(tsteps: usize, n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("heat-3d");
    let a = p.add_array("A", vec![n, n, n], ElemType::F64);
    let b = p.add_array("B", vec![n, n, n], ElemType::F64);
    let taps = |arr: ArrayId| {
        vec![
            rd(arr, vec![v(1), v(2), v(3)]),
            rd(arr, vec![v(1) - c(1), v(2), v(3)]),
            rd(arr, vec![v(1) + c(1), v(2), v(3)]),
            rd(arr, vec![v(1), v(2) - c(1), v(3)]),
            rd(arr, vec![v(1), v(2) + c(1), v(3)]),
            rd(arr, vec![v(1), v(2), v(3) - c(1)]),
            rd(arr, vec![v(1), v(2), v(3) + c(1)]),
        ]
    };
    let m = n as i64 - 1;
    let mut acc0 = taps(a);
    acc0.push(wr(b, vec![v(1), v(2), v(3)]));
    let mut acc1 = taps(b);
    acc1.push(wr(a, vec![v(1), v(2), v(3)]));
    p.kernels.push(nest(
        "heat3d_sweep",
        vec![r(tsteps), l(c(1), c(m)), l(c(1), c(m)), l(c(1), c(m))],
        vec![stmt("s0", acc0, 10), stmt("s1", acc1, 10)],
    ));
    p
}

/// `seidel-2d`: in-place 9-point Gauss-Seidel.
pub fn seidel_2d(tsteps: usize, n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("seidel-2d");
    let a = p.add_array("A", vec![n, n], ElemType::F64);
    let m = n as i64 - 1;
    let mut acc = Vec::new();
    for di in -1i64..=1 {
        for dj in -1i64..=1 {
            acc.push(rd(a, vec![v(1) + c(di), v(2) + c(dj)]));
        }
    }
    acc.push(wr(a, vec![v(1), v(2)]));
    p.kernels.push(nest(
        "seidel2d_sweep",
        vec![r(tsteps), l(c(1), c(m)), l(c(1), c(m))],
        vec![stmt("s0", acc, 9)],
    ));
    p
}

/// `fdtd-2d`: 2-D finite-difference time-domain.
pub fn fdtd_2d(tsteps: usize, n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("fdtd-2d");
    let ex = p.add_array("ex", vec![n, n], ElemType::F64);
    let ey = p.add_array("ey", vec![n, n], ElemType::F64);
    let hz = p.add_array("hz", vec![n, n], ElemType::F64);
    let m = n as i64 - 1;
    p.kernels.push(nest(
        "fdtd2d_sweep",
        vec![r(tsteps), l(c(1), c(m)), l(c(1), c(m))],
        vec![
            stmt(
                "ey",
                vec![
                    rd(hz, vec![v(1), v(2)]),
                    rd(hz, vec![v(1) - c(1), v(2)]),
                    rd(ey, vec![v(1), v(2)]),
                    wr(ey, vec![v(1), v(2)]),
                ],
                2,
            ),
            stmt(
                "ex",
                vec![
                    rd(hz, vec![v(1), v(2)]),
                    rd(hz, vec![v(1), v(2) - c(1)]),
                    rd(ex, vec![v(1), v(2)]),
                    wr(ex, vec![v(1), v(2)]),
                ],
                2,
            ),
            stmt(
                "hz",
                vec![
                    rd(ex, vec![v(1), v(2) + c(1)]),
                    rd(ex, vec![v(1), v(2)]),
                    rd(ey, vec![v(1) + c(1), v(2)]),
                    rd(ey, vec![v(1), v(2)]),
                    rd(hz, vec![v(1), v(2)]),
                    wr(hz, vec![v(1), v(2)]),
                ],
                4,
            ),
        ],
    ));
    p
}

/// `adi`: alternating-direction implicit solver (column + row sweeps).
pub fn adi(tsteps: usize, n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("adi");
    let u = p.add_array("u", vec![n, n], ElemType::F64);
    let vv = p.add_array("v", vec![n, n], ElemType::F64);
    let m = n as i64 - 1;
    p.kernels.push(nest(
        "adi_col",
        vec![r(tsteps), l(c(1), c(m)), l(c(1), c(m))],
        vec![stmt(
            "s0",
            vec![
                rd(u, vec![v(2), v(1) - c(1)]),
                rd(u, vec![v(2), v(1)]),
                rd(u, vec![v(2), v(1) + c(1)]),
                rd(vv, vec![v(2) - c(1), v(1)]),
                wr(vv, vec![v(2), v(1)]),
            ],
            6,
        )],
    ));
    p.kernels.push(nest(
        "adi_row",
        vec![r(tsteps), l(c(1), c(m)), l(c(1), c(m))],
        vec![stmt(
            "s1",
            vec![
                rd(vv, vec![v(1) - c(1), v(2)]),
                rd(vv, vec![v(1), v(2)]),
                rd(vv, vec![v(1) + c(1), v(2)]),
                rd(u, vec![v(1), v(2) - c(1)]),
                wr(u, vec![v(1), v(2)]),
            ],
            6,
        )],
    ));
    p
}

/// `deriche`: recursive edge-detection filter (row and column passes).
pub fn deriche(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("deriche");
    let img = p.add_array("img", vec![n, n], ElemType::F64);
    let y1 = p.add_array("y1", vec![n, n], ElemType::F64);
    let y2 = p.add_array("y2", vec![n, n], ElemType::F64);
    let out = p.add_array("out", vec![n, n], ElemType::F64);
    p.kernels.push(nest(
        "deriche_row_fwd",
        vec![r(n), l(c(1), c(n as i64))],
        vec![stmt(
            "s0",
            vec![
                rd(img, vec![v(0), v(1)]),
                rd(y1, vec![v(0), v(1) - c(1)]),
                wr(y1, vec![v(0), v(1)]),
            ],
            4,
        )],
    ));
    p.kernels.push(nest(
        "deriche_row_bwd",
        vec![r(n), l(c(1), c(n as i64))],
        vec![stmt(
            "s1",
            vec![
                rd(img, vec![v(0), v(1)]),
                rd(y2, vec![v(0), v(1) - c(1)]),
                wr(y2, vec![v(0), v(1)]),
            ],
            4,
        )],
    ));
    p.kernels.push(nest(
        "deriche_combine",
        vec![r(n), r(n)],
        vec![stmt(
            "s2",
            vec![
                rd(y1, vec![v(0), v(1)]),
                rd(y2, vec![v(0), v(1)]),
                wr(out, vec![v(0), v(1)]),
            ],
            1,
        )],
    ));
    p.kernels.push(nest(
        "deriche_col",
        vec![r(n), l(c(1), c(n as i64))],
        vec![stmt(
            "s3",
            vec![
                rd(out, vec![v(1), v(0)]),
                rd(y1, vec![v(1) - c(1), v(0)]),
                wr(y1, vec![v(1), v(0)]),
            ],
            4,
        )],
    ));
    p
}

/// `floyd-warshall`: all-pairs shortest paths.
pub fn floyd_warshall(n: usize) -> AffineProgram {
    let mut p = AffineProgram::new("floyd-warshall");
    let path = p.add_array("path", vec![n, n], ElemType::F64);
    p.kernels.push(nest(
        "fw_main",
        vec![r(n), r(n), r(n)],
        vec![stmt(
            "s0",
            vec![
                rd(path, vec![v(1), v(0)]),
                rd(path, vec![v(0), v(2)]),
                rd(path, vec![v(1), v(2)]),
                wr(path, vec![v(1), v(2)]),
            ],
            2,
        )],
    ));
    p
}

/// `nussinov`: RNA secondary-structure dynamic programming. The original
/// outer loop descends; we substitute `i = n-1-i'` to keep loops
/// ascending (same trace, reversed outer order).
pub fn nussinov(n: usize) -> AffineProgram {
    let m = n as i64;
    let mut p = AffineProgram::new("nussinov");
    let table = p.add_array("table", vec![n, n], ElemType::F64);
    let seq = p.add_array("seq", vec![n], ElemType::F64);
    // Substitute i = n-2-i' (i' ascending), j in [i+1, n-1]: all accesses
    // stay in bounds without the reference code's edge conditionals.
    let i_of = || c(m - 2) - v(0);
    p.kernels.push(nest(
        "nussinov_pair",
        vec![r(n - 1), l(c(m - 1) - v(0), c(m - 1))],
        vec![stmt(
            "s0",
            vec![
                rd(table, vec![i_of(), v(1) - c(1)]),
                rd(table, vec![i_of() + c(1), v(1)]),
                rd(table, vec![i_of() + c(1), v(1) - c(1)]),
                rd(seq, vec![i_of()]),
                rd(seq, vec![v(1)]),
                rd(table, vec![i_of(), v(1)]),
                wr(table, vec![i_of(), v(1)]),
            ],
            4,
        )],
    ));
    p.kernels.push(nest(
        "nussinov_split",
        vec![
            r(n - 1),
            l(c(m - 1) - v(0), c(m - 1)),
            l(c(m - 1) - v(0), v(1)),
        ],
        vec![stmt(
            "s1",
            vec![
                rd(table, vec![i_of(), v(2)]),
                rd(table, vec![v(2) + c(1), v(1)]),
                rd(table, vec![i_of(), v(1)]),
                wr(table, vec![i_of(), v(1)]),
            ],
            2,
        )],
    ));
    p
}

/// The full suite at a size preset (the paper evaluates 22 PolyBench
/// kernels; we provide 24).
pub fn polybench_suite(size: PolybenchSize) -> Vec<Workload> {
    let n3 = size.n3();
    let n2 = size.n2();
    let dm = (size.n3() * 3 / 4).min(400); // datamining extent
    let st = size.stencil_n();
    let st3 = size.stencil3_n();
    let ts = size.tsteps();
    let tri = size.n2() / 4; // triangular-solver extent
    vec![
        Workload {
            name: "gemm",
            category: "blas",
            program: gemm(n3),
            paper_class: Some("CB"),
        },
        Workload {
            name: "2mm",
            category: "kernels",
            program: two_mm(n3),
            paper_class: Some("CB"),
        },
        Workload {
            name: "3mm",
            category: "kernels",
            program: three_mm(n3),
            paper_class: Some("CB"),
        },
        Workload {
            name: "syrk",
            category: "blas",
            program: syrk(n3),
            paper_class: None,
        },
        Workload {
            name: "syr2k",
            category: "blas",
            program: syr2k(n3),
            paper_class: None,
        },
        Workload {
            name: "symm",
            category: "blas",
            program: symm(n3),
            paper_class: None,
        },
        Workload {
            name: "trmm",
            category: "blas",
            program: trmm(n3),
            paper_class: None,
        },
        Workload {
            name: "gemver",
            category: "blas",
            program: gemver(n2),
            paper_class: Some("BB"),
        },
        Workload {
            name: "gesummv",
            category: "blas",
            program: gesummv(n2),
            paper_class: Some("BB"),
        },
        Workload {
            name: "atax",
            category: "kernels",
            program: atax(n2),
            paper_class: Some("BB"),
        },
        Workload {
            name: "bicg",
            category: "kernels",
            program: bicg(n2),
            paper_class: Some("BB"),
        },
        Workload {
            name: "mvt",
            category: "kernels",
            program: mvt(n2),
            paper_class: Some("BB"),
        },
        Workload {
            name: "doitgen",
            category: "kernels",
            program: doitgen(n3 / 8, n3 / 8, n3 / 4),
            paper_class: None,
        },
        Workload {
            name: "trisolv",
            category: "solvers",
            program: trisolv(n2),
            paper_class: Some("BB"),
        },
        Workload {
            name: "durbin",
            category: "solvers",
            program: durbin(tri),
            paper_class: Some("CB"),
        },
        Workload {
            name: "lu",
            category: "solvers",
            program: lu(tri),
            paper_class: None,
        },
        Workload {
            name: "ludcmp",
            category: "solvers",
            program: ludcmp(tri),
            paper_class: None,
        },
        Workload {
            name: "cholesky",
            category: "solvers",
            program: cholesky(tri),
            paper_class: None,
        },
        Workload {
            name: "gramschmidt",
            category: "solvers",
            program: gramschmidt(n3),
            paper_class: None,
        },
        Workload {
            name: "correlation",
            category: "datamining",
            program: correlation(dm),
            paper_class: Some("CB"),
        },
        Workload {
            name: "covariance",
            category: "datamining",
            program: covariance(dm),
            paper_class: Some("CB"),
        },
        Workload {
            name: "jacobi-1d",
            category: "stencils",
            program: jacobi_1d(ts * 2, size.n1()),
            paper_class: Some("CB"),
        },
        Workload {
            name: "jacobi-2d",
            category: "stencils",
            program: jacobi_2d(ts, st),
            paper_class: None,
        },
        Workload {
            name: "heat-3d",
            category: "stencils",
            program: heat_3d(ts, st3),
            paper_class: None,
        },
        Workload {
            name: "seidel-2d",
            category: "stencils",
            program: seidel_2d(ts, st),
            paper_class: None,
        },
        Workload {
            name: "fdtd-2d",
            category: "stencils",
            program: fdtd_2d(ts, st),
            paper_class: None,
        },
        Workload {
            name: "adi",
            category: "stencils",
            program: adi(ts, st),
            paper_class: Some("BB"),
        },
        Workload {
            name: "deriche",
            category: "medley",
            program: deriche(n2),
            paper_class: Some("BB"),
        },
        Workload {
            name: "floyd-warshall",
            category: "medley",
            program: floyd_warshall(tri),
            paper_class: None,
        },
        Workload {
            name: "nussinov",
            category: "medley",
            program: nussinov(tri),
            paper_class: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_validate() {
        for w in polybench_suite(PolybenchSize::Mini) {
            assert_eq!(w.program.validate(), Ok(()), "kernel `{}` invalid", w.name);
            assert!(!w.program.kernels.is_empty());
        }
    }

    #[test]
    fn suite_has_paper_scale() {
        let s = polybench_suite(PolybenchSize::Mini);
        assert!(
            s.len() >= 22,
            "paper evaluates 22 PolyBench kernels, we have {}",
            s.len()
        );
        let cats: std::collections::BTreeSet<_> = s.iter().map(|w| w.category).collect();
        for c in [
            "blas",
            "kernels",
            "solvers",
            "datamining",
            "stencils",
            "medley",
        ] {
            assert!(cats.contains(c), "missing category {c}");
        }
    }

    #[test]
    fn gemm_flop_count() {
        let p = gemm(8);
        // scale: 64 × 1 flop; main: 512 × 2 flops.
        let total: i128 = p.kernels.iter().map(|k| k.total_flops().unwrap()).sum();
        assert_eq!(total, 64 + 1024);
    }

    #[test]
    fn triangular_kernels_have_triangular_domains() {
        let p = trisolv(16);
        // sub nest: sum over i of i points = 120.
        assert_eq!(p.kernels[1].domain_size().unwrap(), 120);
        let p = lu(8);
        // lu_update: sum over k of (n-k-1)^2 = 49+36+...+0 = 140.
        assert_eq!(p.kernels[1].domain_size().unwrap(), 140);
    }

    #[test]
    fn kernel_access_counts_match_reference() {
        use polyufc_ir::interp::{interpret_program, TraceStats};
        // Hand-computed trace sizes for representative kernels at n = 8.
        let n = 8u64;
        let cases: Vec<(AffineProgram, u64, u64)> = vec![
            // (program, expected accesses, expected flops)
            (gemm(8), n * n * 2 + n * n * n * 4, n * n + 2 * n * n * n),
            (mvt(8), 2 * (n * n * 4), 2 * (n * n * 2)),
            (atax(8), 2 * (n * n * 4), 2 * (n * n * 2)),
            (gesummv(8), n * n * 5, n * n * 4),
            // trisolv: init n*2 + sub (n(n-1)/2)*4 + div n*3
            (
                trisolv(8),
                n * 2 + (n * (n - 1) / 2) * 4 + n * 3,
                (n * (n - 1) / 2) * 2 + n,
            ),
            // floyd-warshall: n^3 * 4 accesses, n^3 * 2 flops
            (floyd_warshall(8), n * n * n * 4, n * n * n * 2),
        ];
        for (p, acc, fl) in cases {
            let mut st = TraceStats::default();
            interpret_program(&p, &mut st);
            assert_eq!(st.accesses, acc, "{} accesses", p.name);
            assert_eq!(st.flops, fl, "{} flops", p.name);
        }
    }

    #[test]
    fn symmetric_kernels_have_triangular_sizes() {
        // syrk main: sum_i (i+1) * n = n^2(n+1)/2 points.
        let n = 8i128;
        assert_eq!(
            syrk(8).kernels[1].domain_size().unwrap(),
            n * n * (n + 1) / 2
        );
        assert_eq!(
            syr2k(8).kernels[1].domain_size().unwrap(),
            n * n * (n + 1) / 2
        );
        // cholesky update: sum_i sum_{j<i} j = n(n-1)(n-2)/6 points.
        assert_eq!(
            cholesky(8).kernels[0].domain_size().unwrap(),
            n * (n - 1) * (n - 2) / 6
        );
        // nussinov split is strictly triangular (nonzero, less than the box).
        let sp = nussinov(12).kernels[1].domain_size().unwrap();
        assert!(sp > 0 && sp < 12 * 12 * 12);
    }

    #[test]
    fn all_kernels_have_positive_flops_except_pure_copies() {
        for w in polybench_suite(PolybenchSize::Mini) {
            let total: i128 = w
                .program
                .kernels
                .iter()
                .map(|k| k.total_flops().unwrap())
                .sum();
            assert!(total > 0, "{} must perform arithmetic", w.name);
        }
    }

    #[test]
    fn traces_run_end_to_end() {
        use polyufc_ir::interp::{interpret_program, TraceStats};
        for w in polybench_suite(PolybenchSize::Mini) {
            let mut st = TraceStats::default();
            interpret_program(&w.program, &mut st);
            assert!(st.accesses > 0, "kernel `{}` produced no trace", w.name);
        }
    }

    #[test]
    fn all_accesses_in_bounds() {
        // Interpret every Mini workload and check offsets stay inside the
        // declared arrays (catches edge errors in triangular/reversed
        // kernels like nussinov).
        use polyufc_ir::interp::{interpret_kernel, AccessEvent, TraceSink};
        struct BoundsCheck<'a> {
            sizes: &'a [usize],
            ok: bool,
        }
        impl TraceSink for BoundsCheck<'_> {
            fn access(&mut self, ev: AccessEvent) {
                if ev.offset as usize >= self.sizes[ev.array.0] {
                    self.ok = false;
                }
            }
            fn flops(&mut self, _: u64) {}
        }
        for w in polybench_suite(PolybenchSize::Mini) {
            let sizes: Vec<usize> = w.program.arrays.iter().map(|a| a.len()).collect();
            for k in &w.program.kernels {
                let mut chk = BoundsCheck {
                    sizes: &sizes,
                    ok: true,
                };
                interpret_kernel(&w.program, k, &mut chk);
                assert!(chk.ok, "{}::{} accesses out of bounds", w.name, k.name);
            }
        }
    }

    #[test]
    fn stencil_updates_touch_both_arrays() {
        use polyufc_ir::interp::{interpret_program, TraceStats};
        let p = jacobi_1d(2, 64);
        let mut st = TraceStats::default();
        interpret_program(&p, &mut st);
        // 2 steps × 62 points × (4 + 4) accesses.
        assert_eq!(st.accesses, 2 * 62 * 8);
    }
}
