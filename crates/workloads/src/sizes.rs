//! Problem-size presets for the PolyBench suite.

/// Size preset. `Large` corresponds to the paper's evaluation setting
/// (scaled to simulation-tractable extents, preserving the CB/BB class);
/// `ExtraLarge` is the unscaled paper-scale setting (N >= 4000), reachable
/// at compile time only through the closed-form symbolic counting layer;
/// `Small`/`Mini` are for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolybenchSize {
    /// Tiny sizes for unit/integration tests.
    Mini,
    /// Moderate sizes (fast harness runs).
    Small,
    /// The evaluation sizes (default for the figure harnesses).
    Large,
    /// Paper-scale sizes (Table IV's EXTRALARGE column).
    ExtraLarge,
}

impl PolybenchSize {
    /// Extent for 3-D (matmul-like) kernels.
    pub fn n3(self) -> usize {
        match self {
            PolybenchSize::Mini => 24,
            PolybenchSize::Small => 96,
            PolybenchSize::Large => 512,
            PolybenchSize::ExtraLarge => 4000,
        }
    }

    /// Extent for 2-D (matrix-vector / elementwise) kernels.
    pub fn n2(self) -> usize {
        match self {
            PolybenchSize::Mini => 48,
            PolybenchSize::Small => 512,
            PolybenchSize::Large => 2000,
            PolybenchSize::ExtraLarge => 8000,
        }
    }

    /// Extent for 1-D kernels.
    pub fn n1(self) -> usize {
        match self {
            PolybenchSize::Mini => 256,
            PolybenchSize::Small => 100_000,
            PolybenchSize::Large => 2_000_000,
            PolybenchSize::ExtraLarge => 16_000_000,
        }
    }

    /// Time steps for stencils.
    pub fn tsteps(self) -> usize {
        match self {
            PolybenchSize::Mini => 4,
            PolybenchSize::Small => 10,
            PolybenchSize::Large => 20,
            PolybenchSize::ExtraLarge => 50,
        }
    }

    /// Extent for 2-D stencil grids.
    pub fn stencil_n(self) -> usize {
        match self {
            PolybenchSize::Mini => 32,
            PolybenchSize::Small => 250,
            PolybenchSize::Large => 1000,
            PolybenchSize::ExtraLarge => 4000,
        }
    }

    /// Extent for 3-D stencil grids.
    pub fn stencil3_n(self) -> usize {
        match self {
            PolybenchSize::Mini => 12,
            PolybenchSize::Small => 40,
            PolybenchSize::Large => 100,
            PolybenchSize::ExtraLarge => 250,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_ordered() {
        assert!(PolybenchSize::Mini.n3() < PolybenchSize::Small.n3());
        assert!(PolybenchSize::Small.n3() < PolybenchSize::Large.n3());
        assert!(PolybenchSize::Large.n3() < PolybenchSize::ExtraLarge.n3());
        assert!(PolybenchSize::Mini.n2() < PolybenchSize::Large.n2());
        assert!(PolybenchSize::Large.n2() < PolybenchSize::ExtraLarge.n2());
        assert!(PolybenchSize::Large.stencil_n() < PolybenchSize::ExtraLarge.stencil_n());
    }
}
