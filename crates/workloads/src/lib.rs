//! The evaluation workloads of the paper (Table II): the PolyBench suite
//! and the selected ML kernels (conv2d from AlexNet / ConvNeXt /
//! WideResNet, lm-head matmul from GPT-2 / LLaMA-2, and sdpa from BERT /
//! Gemma-2), expressed as IR builders.
//!
//! PolyBench kernels are sequences of perfect affine nests (imperfect
//! nests are split; phase-interleaved stencil updates become multiple
//! statements of one nest, which is trace-equivalent at cache-line
//! granularity). Problem sizes are scaled so that trace-driven simulation
//! of every (kernel × frequency × platform) point is tractable while
//! preserving each kernel's CB/BB class — see DESIGN.md.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ml;
pub mod polybench;
pub mod sizes;

pub use ml::{ml_suite, MlWorkload};
pub use polybench::{polybench_suite, Workload};
pub use sizes::PolybenchSize;
