//! The ML kernels of Table II: conv2d layers (AlexNet, ConvNeXt,
//! WideResNet), LM-head matmuls (GPT-2, LLaMA-2), and scaled dot-product
//! attention (BERT, Gemma-2), as tensor-dialect graphs.
//!
//! Shapes follow the paper; where the paper's shape makes trace-driven
//! simulation intractable (WideResNet's batch-64 convolution, the full
//! LLaMA-2 vocabulary) a scaled shape with the same arithmetic structure
//! and boundedness is used and noted in the `scaled` flag (see DESIGN.md).

use polyufc_ir::tensor::{TensorGraph, TensorOp, TensorOpKind};
use polyufc_ir::types::ElemType;

/// One ML workload: a tensor graph plus metadata.
#[derive(Debug, Clone)]
pub struct MlWorkload {
    /// Name, e.g. `conv2d-alexnet`.
    pub name: &'static str,
    /// Source model (Table II).
    pub source: &'static str,
    /// Domain: `vision` or `nlp`.
    pub domain: &'static str,
    /// The graph.
    pub graph: TensorGraph,
    /// Element type used in the evaluation.
    pub elem: ElemType,
    /// Whether the shape was scaled from the paper's for tractability.
    pub scaled: bool,
}

#[allow(clippy::too_many_arguments)]
fn conv_graph(
    name: &str,
    n: usize,
    ch: usize,
    h: usize,
    w: usize,
    f: usize,
    kh: usize,
    kw: usize,
    stride: usize,
) -> TensorGraph {
    let mut g = TensorGraph::new(name);
    g.push(TensorOp {
        name: "conv2d".into(),
        kind: TensorOpKind::Conv2d {
            n,
            c: ch,
            h,
            w,
            f,
            kh,
            kw,
            stride,
        },
        inputs: vec!["I".into(), "W".into()],
        output: "O".into(),
    });
    g
}

fn matmul_graph(name: &str, m: usize, n: usize, k: usize) -> TensorGraph {
    let mut g = TensorGraph::new(name);
    g.push(TensorOp {
        name: "lm_head".into(),
        kind: TensorOpKind::MatMul { m, n, k },
        inputs: vec!["X".into(), "W".into()],
        output: "Y".into(),
    });
    g
}

fn sdpa_graph(name: &str, b: usize, h: usize, s: usize, d: usize) -> TensorGraph {
    let mut g = TensorGraph::new(name);
    g.push(TensorOp {
        name: "sdpa".into(),
        kind: TensorOpKind::Sdpa { b, h, s, d },
        inputs: vec!["Q".into(), "K".into(), "V".into()],
        output: "O".into(),
    });
    g
}

/// AlexNet conv1: `1×3×224×224 ⊛ 64×3×11×11`, stride 4 (paper shape).
pub fn conv2d_alexnet() -> MlWorkload {
    MlWorkload {
        name: "conv2d-alexnet",
        source: "ALEXNET",
        domain: "vision",
        graph: conv_graph("alexnet_conv1", 1, 3, 224, 224, 64, 11, 11, 4),
        elem: ElemType::F32,
        scaled: false,
    }
}

/// ConvNeXt downsampling conv: `1×384×28×28 ⊛ 768×384×2×2`, stride 2
/// (paper shape).
pub fn conv2d_convnext() -> MlWorkload {
    MlWorkload {
        name: "conv2d-convnext",
        source: "CONVNEXT",
        domain: "vision",
        graph: conv_graph("convnext_ds", 1, 384, 28, 28, 768, 2, 2, 2),
        elem: ElemType::F32,
        scaled: false,
    }
}

/// WideResNet 1×1 conv: paper uses batch 64 (`64×1024×7×7 ⊛
/// 2048×1024×1×1`); we run batch 4 to keep trace simulation tractable.
pub fn conv2d_wideresnet() -> MlWorkload {
    MlWorkload {
        name: "conv2d-wideresnet",
        source: "WIDERESNET",
        domain: "vision",
        graph: conv_graph("wideresnet_1x1", 4, 1024, 7, 7, 2048, 1, 1, 1),
        elem: ElemType::F32,
        scaled: true,
    }
}

/// GPT-2 LM head: paper shape `4×768×50257`; vocabulary scaled to 12800.
pub fn lm_head_gpt2() -> MlWorkload {
    MlWorkload {
        name: "lm-head-gpt2",
        source: "GPT2",
        domain: "nlp",
        graph: matmul_graph("gpt2_lm_head", 4, 12800, 768),
        elem: ElemType::F32,
        scaled: true,
    }
}

/// LLaMA-2 LM head: paper shape `13×4096×32000`; vocabulary scaled to
/// 8000.
pub fn lm_head_llama2() -> MlWorkload {
    MlWorkload {
        name: "lm-head-llama2",
        source: "LLAMA2",
        domain: "nlp",
        graph: matmul_graph("llama2_lm_head", 13, 8000, 4096),
        elem: ElemType::F32,
        scaled: true,
    }
}

/// BERT self-attention: `2×12×128×64` (paper shape).
pub fn sdpa_bert() -> MlWorkload {
    MlWorkload {
        name: "sdpa-bert",
        source: "BERT",
        domain: "nlp",
        graph: sdpa_graph("bert_sdpa", 2, 12, 128, 64),
        elem: ElemType::F32,
        scaled: false,
    }
}

/// Gemma-2 self-attention: `1×16×7×256` (paper shape; a multi-kernel
/// benchmark — its lowering produces the inter-kernel cap sequence of
/// Sec. VII-F).
pub fn sdpa_gemma2() -> MlWorkload {
    MlWorkload {
        name: "sdpa-gemma2",
        source: "GEMMA2",
        domain: "nlp",
        graph: sdpa_graph("gemma2_sdpa", 1, 16, 7, 256),
        elem: ElemType::F32,
        scaled: false,
    }
}

/// All seven ML workloads of Table II.
pub fn ml_suite() -> Vec<MlWorkload> {
    vec![
        conv2d_alexnet(),
        conv2d_convnext(),
        conv2d_wideresnet(),
        lm_head_gpt2(),
        lm_head_llama2(),
        sdpa_bert(),
        sdpa_gemma2(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_ir::lower::lower_tensor_to_linalg;

    #[test]
    fn suite_covers_table2() {
        let s = ml_suite();
        assert_eq!(s.len(), 7);
        let sources: Vec<_> = s.iter().map(|w| w.source).collect();
        for src in [
            "ALEXNET",
            "CONVNEXT",
            "WIDERESNET",
            "GPT2",
            "LLAMA2",
            "BERT",
            "GEMMA2",
        ] {
            assert!(sources.contains(&src), "missing {src}");
        }
    }

    #[test]
    fn all_lower_validly() {
        for w in ml_suite() {
            let lp = lower_tensor_to_linalg(&w.graph, w.elem);
            let ap = lp.lower_to_affine();
            assert_eq!(ap.validate(), Ok(()), "workload `{}`", w.name);
        }
    }

    #[test]
    fn sdpa_produces_nine_kernels() {
        let w = sdpa_bert();
        let ap = lower_tensor_to_linalg(&w.graph, w.elem).lower_to_affine();
        assert_eq!(ap.kernels.len(), 9);
    }

    #[test]
    fn alexnet_output_shape() {
        let w = conv2d_alexnet();
        let ap = lower_tensor_to_linalg(&w.graph, w.elem).lower_to_affine();
        // Output 64×54×54 per Table II's stride-4 11×11 kernel.
        let out = ap.arrays.iter().find(|a| a.name == "O").unwrap();
        assert_eq!(out.dims, vec![1, 64, 54, 54]);
    }
}
