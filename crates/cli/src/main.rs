//! `polyufc` — the command-line compiler driver.
//!
//! ```text
//! polyufc compile <file.c> [--platform bdw|rpl] [--objective edp|energy|perf]
//!                          [--epsilon 1e-3] [--assoc set|full] [--emit scf|affine|openscop]
//! polyufc run     <file.c> [--platform ...] [--objective ...]   # compile + simulate vs baseline
//! polyufc bench   <name>   [--platform ...]                     # built-in workload by name
//! polyufc list                                                  # built-in workloads
//! ```

use std::process::ExitCode;

use polyufc::{Objective, Pipeline, PipelineOutput};
use polyufc_analysis::{AnalysisReport, Analyzer, Diagnostic, Location, ModelCounts, Severity};
use polyufc_cache::{AssocMode, CacheModel};
use polyufc_cgeist::parse_scop;
use polyufc_ir::affine::AffineProgram;
use polyufc_ir::lower::lower_tensor_to_linalg;
use polyufc_machine::{
    measure_kernel_with_plan, ExecutionEngine, FaultPlan, GuardedCapRuntime, Platform, UfsDriver,
};
use polyufc_workloads::{ml_suite, polybench_suite, PolybenchSize};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  polyufc compile <file.c|file.mlir> [--platform bdw|rpl] [--objective edp|energy|perf]
                           [--epsilon <float>] [--assoc set|full]
                           [--emit scf|affine|openscop] [--json]
  polyufc run     <file.c> [options]      compile, then simulate vs the UFS baseline
  polyufc bench   <name>   [options]      run a built-in workload (see `polyufc list`)
  polyufc lint    <file.c|file.mlir> [--json]
  polyufc lint    --workloads [--size mini|small|large|xl] [--json]
                                          static verifier: races, bounds, IR,
                                          model audit; exit 0/1/2 = clean/warn/error
  polyufc lint    --self [--json]         concurrency self-lint over the daemon's
                                          own (compiled-in) sources: signal
                                          safety, EINTR restarts, reactor
                                          blocking, lockdep adoption
  polyufc serve   [--listen <addr>] [--unix <path>] [--threads N]
                  [--queue N] [--cache-cap N] [--max-conns N]
                  [--deadline-ms N] [--quarantine N] [--chaos <spec>]
                                          compile-and-cap daemon (NDJSON,
                                          pipelined requests, one per line;
                                          SIGTERM drains; default connection
                                          cap 1024 or POLYUFC_MAX_CONNS;
                                          --deadline-ms bounds each compile
                                          [or POLYUFC_DEADLINE_MS] with a
                                          watchdog that aborts + replaces
                                          stalled workers; --quarantine N
                                          poisons kernels after N failures;
                                          --chaos injects seeded faults,
                                          e.g. `standard,seed=7`)
  polyufc stats   [--connect <addr>] [--unix <path>] [--json]
                                          query a running daemon's cache/pool
                                          counters and latency percentiles
  polyufc list                            list built-in workloads

global options:
  --threads <n>         worker threads for parallel passes and the daemon
                        pool (default: POLYUFC_THREADS or all cores)

simulation options (run/bench):
  --fault-plan <spec>   inject faults: a preset (standard|stuck|thermal|flaky)
                        and/or key=value overrides, e.g. `standard,seed=7`
  --guard on|off        route cap application through the guarded runtime
                        (verify-after-write, retry, misprediction fallback)";

struct Options {
    platform: Platform,
    objective: Objective,
    epsilon: f64,
    assoc: AssocMode,
    emit: String,
    fault: FaultPlan,
    guard: bool,
    json: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        platform: Platform::broadwell(),
        objective: Objective::Edp,
        epsilon: 1e-3,
        assoc: AssocMode::SetAssociative,
        emit: "scf".into(),
        fault: FaultPlan::pristine(),
        guard: false,
        json: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match a.as_str() {
            "--platform" => {
                o.platform = match value("--platform")?.as_str() {
                    "bdw" | "BDW" => Platform::broadwell(),
                    "rpl" | "RPL" => Platform::raptor_lake(),
                    other => return Err(format!("unknown platform `{other}` (bdw|rpl)")),
                }
            }
            "--objective" => {
                o.objective = match value("--objective")?.as_str() {
                    "edp" => Objective::Edp,
                    "energy" => Objective::Energy,
                    "perf" | "performance" => Objective::Performance,
                    other => return Err(format!("unknown objective `{other}`")),
                }
            }
            "--epsilon" => {
                o.epsilon = value("--epsilon")?
                    .parse()
                    .map_err(|_| "epsilon must be a float".to_string())?;
            }
            "--assoc" => {
                o.assoc = match value("--assoc")?.as_str() {
                    "set" => AssocMode::SetAssociative,
                    "full" => AssocMode::FullyAssociative,
                    other => return Err(format!("unknown assoc mode `{other}` (set|full)")),
                }
            }
            "--emit" => {
                let v = value("--emit")?;
                if !["scf", "affine", "openscop"].contains(&v.as_str()) {
                    return Err(format!("unknown emit kind `{v}`"));
                }
                o.emit = v;
            }
            "--fault-plan" => {
                o.fault = FaultPlan::parse_spec(&value("--fault-plan")?)?;
            }
            "--guard" => {
                o.guard = match value("--guard")?.as_str() {
                    "on" | "1" | "true" => true,
                    "off" | "0" | "false" => false,
                    other => return Err(format!("--guard: expected on|off, got `{other}`")),
                }
            }
            "--threads" => {
                polyufc_par::set_worker_override(Some(parse_threads(&value("--threads")?)?))
            }
            "--json" => o.json = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(o)
}

fn run(args: &[String]) -> Result<u8, String> {
    let Some(cmd) = args.first() else {
        return Err("no command given".into());
    };
    match cmd.as_str() {
        "list" => {
            println!("PolyBench (use `polyufc bench <name>`):");
            for w in polybench_suite(PolybenchSize::Small) {
                println!("  {:<16} [{}]", w.name, w.category);
            }
            println!("ML kernels:");
            for w in ml_suite() {
                println!("  {:<20} [{} / {}]", w.name, w.source, w.domain);
            }
            Ok(0)
        }
        "compile" | "run" => {
            let path = args.get(1).ok_or("missing input file")?;
            let opts = parse_options(&args[2..])?;
            if cmd == "compile" && opts.json {
                // One-shot artifact through the exact serve render path:
                // the printed line is byte-identical to the daemon's
                // response for the same request (cached or not).
                println!(
                    "{}",
                    polyufc_serve::oneshot_response(&wire_request(path, &opts)?)
                );
                return Ok(0);
            }
            let mut program = parse_input_file(path)?;
            // Parsed inputs carry unverified `parallel` markers; downgrade
            // any the race detector cannot prove before compiling.
            for d in polyufc_analysis::sanitize_parallel(&mut program) {
                eprintln!("{d}");
            }
            let out = compile(&program, &opts)?;
            report(&program, &out, &opts);
            if cmd == "run" {
                simulate(&out, &opts);
            }
            Ok(0)
        }
        "bench" => {
            let name = args.get(1).ok_or("missing workload name")?;
            let opts = parse_options(&args[2..])?;
            let program = find_workload(name)
                .ok_or_else(|| format!("unknown workload `{name}` (try `polyufc list`)"))?;
            let out = compile(&program, &opts)?;
            report(&program, &out, &opts);
            simulate(&out, &opts);
            Ok(0)
        }
        "lint" => lint(&args[1..]),
        "serve" => serve(&args[1..]),
        "stats" => stats(&args[1..]),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn parse_threads(v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("--threads: expected a positive integer, got `{v}`")),
    }
}

/// Builds the wire-level compile request the serve protocol would carry
/// for this file + options, so `compile --json` and the daemon share one
/// code path end to end.
fn wire_request(path: &str, opts: &Options) -> Result<polyufc_serve::CompileRequest, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let name = path
        .rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".c")
        .trim_end_matches(".mlir")
        .to_string();
    let format = if path.ends_with(".mlir") {
        polyufc_serve::SourceFormat::TextualIr
    } else {
        polyufc_serve::SourceFormat::C
    };
    if opts.json && !["scf", "affine"].contains(&opts.emit.as_str()) {
        return Err(format!(
            "--json supports --emit scf|affine, not `{}`",
            opts.emit
        ));
    }
    Ok(polyufc_serve::CompileRequest {
        format,
        source,
        name,
        opts: polyufc_serve::CompileOptions {
            platform: opts.platform.clone(),
            objective: opts.objective,
            epsilon: opts.epsilon,
            assoc: opts.assoc,
            emit_scf: opts.emit == "scf",
        },
    })
}

/// `polyufc serve`: run the compile-and-cap daemon until SIGINT/SIGTERM
/// or a `shutdown` request.
fn serve(args: &[String]) -> Result<u8, String> {
    let mut listen = polyufc_serve::Listen::Tcp("127.0.0.1:7077".to_string());
    let mut queue: Option<usize> = None;
    let mut cache_cap: Option<usize> = None;
    let mut max_conns: Option<usize> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut quarantine: Option<u32> = None;
    let mut chaos: Option<polyufc_serve::ChaosPlan> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match a.as_str() {
            "--listen" => listen = polyufc_serve::Listen::Tcp(value("--listen")?),
            #[cfg(unix)]
            "--unix" => listen = polyufc_serve::Listen::Unix(value("--unix")?.into()),
            "--threads" => {
                polyufc_par::set_worker_override(Some(parse_threads(&value("--threads")?)?))
            }
            "--queue" => {
                queue = Some(
                    value("--queue")?
                        .parse()
                        .map_err(|_| "--queue: expected an integer".to_string())?,
                )
            }
            "--cache-cap" => {
                cache_cap = Some(
                    value("--cache-cap")?
                        .parse()
                        .map_err(|_| "--cache-cap: expected an integer".to_string())?,
                )
            }
            "--max-conns" => {
                max_conns = Some(
                    value("--max-conns")?
                        .parse()
                        .map_err(|_| "--max-conns: expected an integer".to_string())?,
                )
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|_| "--deadline-ms: expected an integer".to_string())?;
                deadline_ms = Some(ms);
            }
            "--quarantine" => {
                quarantine = Some(
                    value("--quarantine")?
                        .parse()
                        .map_err(|_| "--quarantine: expected an integer".to_string())?,
                )
            }
            "--chaos" => {
                chaos = Some(
                    polyufc_serve::ChaosPlan::parse_spec(&value("--chaos")?)
                        .map_err(|e| format!("--chaos: {e}"))?,
                )
            }
            other => return Err(format!("unknown serve option `{other}`")),
        }
    }
    let mut engine = polyufc_serve::EngineConfig::default();
    if let Some(q) = queue {
        engine.queue_cap = q.max(1);
    }
    if let Some(c) = cache_cap {
        engine.cache_capacity = c.max(1);
    }
    if let Some(ms) = deadline_ms {
        // `--deadline-ms 0` explicitly disables a POLYUFC_DEADLINE_MS
        // default picked up by EngineConfig::default().
        engine.deadline = (ms > 0).then(|| std::time::Duration::from_millis(ms));
    }
    if let Some(q) = quarantine {
        engine.quarantine_threshold = q;
    }
    if let Some(plan) = chaos {
        if !plan.is_pristine() {
            eprintln!("polyufc serve: CHAOS ACTIVE ({})", plan.spec_string());
        }
        engine.chaos = plan;
    }
    polyufc_serve::install_signal_handlers();
    let mut server = polyufc_serve::Server::bind(&polyufc_serve::ServerConfig {
        listen: listen.clone(),
        engine: engine.clone(),
    })
    .map_err(|e| format!("bind: {e}"))?;
    if let Some(n) = max_conns {
        server.set_max_conns(n.max(1));
    }
    match (&listen, server.local_addr()) {
        (_, Some(addr)) => eprintln!(
            "polyufc serve: listening on {addr} ({} workers, queue {})",
            engine.workers, engine.queue_cap
        ),
        #[cfg(unix)]
        (polyufc_serve::Listen::Unix(p), None) => eprintln!(
            "polyufc serve: listening on {} ({} workers, queue {})",
            p.display(),
            engine.workers,
            engine.queue_cap
        ),
        _ => {}
    }
    server.run().map_err(|e| format!("serve: {e}"))?;
    eprintln!("polyufc serve: drained, shutting down");
    Ok(0)
}

/// `polyufc stats`: query a running daemon and pretty-print its counters.
fn stats(args: &[String]) -> Result<u8, String> {
    use std::io::{BufRead, BufReader, Write};
    let mut connect = "127.0.0.1:7077".to_string();
    let mut unix: Option<String> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--connect" => connect = it.next().cloned().ok_or("missing value for --connect")?,
            "--unix" => unix = Some(it.next().cloned().ok_or("missing value for --unix")?),
            other => return Err(format!("unknown stats option `{other}`")),
        }
    }
    let line = {
        let fetch = |mut stream: Box<dyn ReadWrite>| -> Result<String, String> {
            stream
                .write_all(b"{\"op\":\"stats\"}\n")
                .map_err(|e| format!("send: {e}"))?;
            let mut line = String::new();
            BufReader::new(stream)
                .read_line(&mut line)
                .map_err(|e| format!("recv: {e}"))?;
            Ok(line.trim().to_string())
        };
        match &unix {
            #[cfg(unix)]
            Some(path) => fetch(Box::new(
                std::os::unix::net::UnixStream::connect(path)
                    .map_err(|e| format!("connect `{path}`: {e}"))?,
            ))?,
            #[cfg(not(unix))]
            Some(_) => return Err("--unix is not supported on this platform".into()),
            None => fetch(Box::new(
                std::net::TcpStream::connect(&connect)
                    .map_err(|e| format!("connect `{connect}`: {e}"))?,
            ))?,
        }
    };
    if json {
        println!("{line}");
        return Ok(0);
    }
    print_stats(&line)
}

trait ReadWrite: std::io::Read + std::io::Write {}
impl<T: std::io::Read + std::io::Write> ReadWrite for T {}

fn print_stats(line: &str) -> Result<u8, String> {
    let v = polyufc_serve::json::parse(line).map_err(|e| format!("bad stats response: {e}"))?;
    if v.get("ok").and_then(|o| o.as_bool()) != Some(true) {
        return Err(format!("daemon returned an error: {line}"));
    }
    let n = |sect: &str, key: &str| -> f64 {
        v.get(sect)
            .and_then(|s| s.get(key))
            .and_then(|x| x.as_f64())
            .unwrap_or(0.0)
    };
    let pct = |sect: &str| 100.0 * n(sect, "hit_rate");
    println!("== polyufc daemon stats ==");
    println!(
        "server:         workers {} | queue {} | requests {} | compiled {} | errors {} | shed {}",
        n("server", "workers"),
        n("server", "queue_capacity"),
        n("server", "requests"),
        n("server", "compiled"),
        n("server", "errors"),
        n("server", "shed"),
    );
    println!(
        "latency:        requests {} | p50 {} µs | p99 {} µs | max {} µs",
        n("latency", "count"),
        n("latency", "p50_us"),
        n("latency", "p99_us"),
        n("latency", "max_us"),
    );
    println!(
        "artifact cache: hits {} | misses {} | evictions {} | entries {} | inflight {} | hit rate {:.1}%",
        n("artifact_cache", "hits"),
        n("artifact_cache", "misses"),
        n("artifact_cache", "evictions"),
        n("artifact_cache", "entries"),
        n("artifact_cache", "inflight"),
        pct("artifact_cache"),
    );
    println!(
        "measure cache:  hits {} | misses {} | evictions {} | entries {} | hit rate {:.1}%",
        n("measure_cache", "hits"),
        n("measure_cache", "misses"),
        n("measure_cache", "evictions"),
        n("measure_cache", "entries"),
        pct("measure_cache"),
    );
    println!(
        "count cache:    hits {} | misses {} | symbolic {} | enumerated {} | evictions {} | parallel splits {}",
        n("count_cache", "hits"),
        n("count_cache", "misses"),
        n("count_cache", "symbolic"),
        n("count_cache", "enumerated"),
        n("count_cache", "evictions"),
        n("count_cache", "parallel_splits"),
    );
    println!(
        "self-heal:      deadline {} ms | deadlines fired {} | workers replaced {} | quarantined {} (total {}, hits {}) | chaos injections {}",
        n("self_heal", "deadline_ms"),
        n("self_heal", "deadlines"),
        n("self_heal", "workers_replaced"),
        n("self_heal", "quarantined"),
        n("self_heal", "quarantined_total"),
        n("self_heal", "quarantine_hits"),
        n("self_heal", "chaos_injections"),
    );
    // Only emitted by lockdep-instrumented daemons.
    if v.get("chk").is_some() {
        println!(
            "chk (lockdep):  lock sites {} | order edges {} | max chain {} | cycles {}",
            n("chk", "lock_sites"),
            n("chk", "order_edges"),
            n("chk", "max_chain"),
            n("chk", "cycles"),
        );
    }
    Ok(0)
}

fn parse_input_file(path: &str) -> Result<AffineProgram, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let name = path
        .rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".c")
        .trim_end_matches(".mlir");
    if path.ends_with(".mlir") {
        polyufc_ir::textual::parse_affine_program(&src).map_err(|e| e.to_string())
    } else {
        parse_scop(&src, name).map_err(|e| e.to_string())
    }
}

/// `polyufc lint`: run the static verifier (IR checks, bounds, races and
/// the cache-model audit) over a file or the built-in workload suites.
/// Exit code is the maximum severity: 0 clean, 1 warnings, 2 errors.
fn lint(args: &[String]) -> Result<u8, String> {
    let mut json = false;
    let mut workloads = false;
    let mut self_lint = false;
    let mut size = PolybenchSize::Mini;
    let mut path: Option<&String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--workloads" => workloads = true,
            "--self" => self_lint = true,
            "--size" => {
                size = match it.next().map(String::as_str) {
                    Some("mini") => PolybenchSize::Mini,
                    Some("small") => PolybenchSize::Small,
                    Some("large") => PolybenchSize::Large,
                    Some("xl") => PolybenchSize::ExtraLarge,
                    other => {
                        return Err(format!(
                            "--size: expected mini|small|large|xl, got {other:?}"
                        ))
                    }
                }
            }
            other if !other.starts_with('-') && path.is_none() => path = Some(a),
            other => return Err(format!("unknown lint option `{other}`")),
        }
    }
    if self_lint {
        let report = polyufc_analysis::selflint::lint_sources(&self_lint_sources());
        emit_reports(std::slice::from_ref(&report), json);
        return Ok(match report.max_severity() {
            Some(Severity::Error) => 2,
            Some(Severity::Warning) => 1,
            _ => 0,
        });
    }
    let programs: Vec<AffineProgram> = if workloads {
        polybench_suite(size)
            .into_iter()
            .map(|w| w.program)
            .chain(
                ml_suite()
                    .into_iter()
                    .map(|w| lower_tensor_to_linalg(&w.graph, w.elem).lower_to_affine()),
            )
            .collect()
    } else {
        let path = path.ok_or("lint: missing input file (or pass --workloads)")?;
        match parse_input_file(path) {
            Ok(p) => vec![p],
            Err(e) => {
                // A program that does not parse is reported through the
                // same diagnostic channel as one that parses but is broken.
                let report = AnalysisReport {
                    program: path.clone(),
                    diagnostics: vec![Diagnostic {
                        pass: "ir-verify",
                        severity: Severity::Error,
                        location: Location::default(),
                        message: format!("parse error: {e}"),
                        witness: None,
                    }],
                    stats: Default::default(),
                };
                emit_reports(&[report], json);
                return Ok(2);
            }
        }
    };
    let reports: Vec<AnalysisReport> = programs.iter().map(lint_program).collect();
    emit_reports(&reports, json);
    let worst = reports
        .iter()
        .map(AnalysisReport::max_severity)
        .max()
        .flatten();
    Ok(match worst {
        Some(Severity::Error) => 2,
        Some(Severity::Warning) => 1,
        _ => 0,
    })
}

/// The daemon's concurrency-sensitive sources, embedded at build time
/// so `lint --self` lints exactly what this binary was built from, from
/// any working directory.
fn self_lint_sources() -> Vec<polyufc_analysis::selflint::SourceFile> {
    macro_rules! src {
        ($path:literal) => {
            polyufc_analysis::selflint::SourceFile::new(
                $path,
                include_str!(concat!("../../../", $path)),
            )
        };
    }
    vec![
        src!("crates/serve/src/lib.rs"),
        src!("crates/serve/src/server.rs"),
        src!("crates/serve/src/reactor.rs"),
        src!("crates/serve/src/engine.rs"),
        src!("crates/serve/src/shard.rs"),
        src!("crates/serve/src/artifact.rs"),
        src!("crates/serve/src/protocol.rs"),
        src!("crates/serve/src/json.rs"),
        src!("crates/serve/src/chaos.rs"),
        src!("crates/par/src/lib.rs"),
        src!("crates/par/src/pool.rs"),
    ]
}

fn lint_program(program: &AffineProgram) -> AnalysisReport {
    // Model audit needs the cache model's counts; skip it (structural
    // passes still run) for programs the model itself rejects.
    let model = CacheModel::new(
        Platform::broadwell().hierarchy.clone(),
        AssocMode::SetAssociative,
    );
    let line_bytes = Platform::broadwell().hierarchy.line_bytes();
    match model.analyze_program(program) {
        Ok(stats) => {
            let counts: Vec<ModelCounts> = stats
                .iter()
                .map(|(name, s)| ModelCounts {
                    kernel: name.clone(),
                    total_accesses: s.total_accesses,
                    flops: s.flops,
                    cold_lines: s.cold_lines,
                })
                .collect();
            Analyzer::new().analyze_with_model(program, &counts, line_bytes)
        }
        Err(_) => Analyzer::new().analyze(program),
    }
}

fn emit_reports(reports: &[AnalysisReport], json: bool) {
    if json {
        let objs: Vec<String> = reports.iter().map(AnalysisReport::to_json).collect();
        println!("[{}]", objs.join(","));
    } else {
        for r in reports {
            print!("{}", r.render_text());
        }
    }
}

fn find_workload(name: &str) -> Option<AffineProgram> {
    if let Some(w) = polybench_suite(PolybenchSize::Small)
        .into_iter()
        .find(|w| w.name == name)
    {
        return Some(w.program);
    }
    ml_suite()
        .into_iter()
        .find(|w| w.name == name)
        .map(|w| lower_tensor_to_linalg(&w.graph, w.elem).lower_to_affine())
}

fn pipeline_for(opts: &Options) -> Pipeline {
    let mut pipe = Pipeline::new(opts.platform.clone())
        .with_objective(opts.objective)
        .with_assoc_mode(opts.assoc);
    pipe.epsilon = opts.epsilon;
    pipe
}

fn compile(program: &AffineProgram, opts: &Options) -> Result<PipelineOutput, String> {
    pipeline_for(opts)
        .compile_affine(program)
        .map_err(|e| e.to_string())
}

fn report(program: &AffineProgram, out: &PipelineOutput, opts: &Options) {
    println!(
        "== PolyUFC: `{}` for {} (objective {:?}, ε = {}) ==",
        program.name, opts.platform.name, opts.objective, opts.epsilon
    );
    for ((ch, res), cap) in out
        .characterizations
        .iter()
        .zip(&out.search)
        .zip(&out.caps_ghz)
    {
        println!(
            "  {:<20} OI {:>9.3} FpB  {}  cap {:.1} GHz ({} evals)",
            ch.kernel, ch.oi, ch.class, cap, res.steps
        );
    }
    let r = &out.report;
    println!(
        "  compile: preprocess {} µs | pluto {} µs | polyufc-cm {} µs | steps 4-6 {} µs",
        r.preprocess_us, r.pluto_us, r.polyufc_cm_us, r.steps_4_6_us
    );
    if !r.fallback_kernels.is_empty() {
        println!(
            "  analysis fallback (cap reset to max): {:?}",
            r.fallback_kernels
        );
    }
    match opts.emit.as_str() {
        "affine" => println!("\n{}", out.optimized),
        "openscop" => println!("\n{}", polyufc_ir::openscop::emit_program(&out.optimized)),
        _ => println!("\n{}", out.scf),
    }
}

fn simulate(out: &PipelineOutput, opts: &Options) {
    let eng = ExecutionEngine::new(opts.platform.clone()).with_fault_plan(opts.fault.clone());
    let counters: Vec<_> = out
        .optimized
        .kernels
        .iter()
        .map(|k| measure_kernel_with_plan(&opts.platform, &out.optimized, k, &opts.fault))
        .collect();
    let (capped, guard_report) = if opts.guard {
        let predictions = pipeline_for(opts).cap_predictions(out);
        let (r, rep) = GuardedCapRuntime::new(&eng).run_scf(&out.scf, &counters, &predictions);
        (r, Some(rep))
    } else {
        (eng.run_scf(&out.scf, &counters), None)
    };
    let baseline = UfsDriver::stock().run_baseline(&eng, &counters);
    println!("== simulation vs stock UFS driver ==");
    println!(
        "  baseline: {:>10.4} ms  {:>9.4} J  EDP {:.4e}",
        baseline.time_s * 1e3,
        baseline.energy.total(),
        baseline.edp()
    );
    println!(
        "  capped  : {:>10.4} ms  {:>9.4} J  EDP {:.4e}",
        capped.time_s * 1e3,
        capped.energy.total(),
        capped.edp()
    );
    println!(
        "  Δtime {:+.2}%  Δenergy {:+.2}%  ΔEDP {:+.2}%",
        (1.0 - capped.time_s / baseline.time_s) * 100.0,
        (1.0 - capped.energy.total() / baseline.energy.total()) * 100.0,
        (1.0 - capped.edp() / baseline.edp()) * 100.0
    );
    if let Some(rep) = &guard_report {
        println!("== guard report ==");
        print!("{}", rep.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_defaults_and_overrides() {
        let o = parse_options(&[]).unwrap();
        assert_eq!(o.platform.name, "BDW");
        let args: Vec<String> = [
            "--platform",
            "rpl",
            "--objective",
            "energy",
            "--epsilon",
            "0.01",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_options(&args).unwrap();
        assert_eq!(o.platform.name, "RPL");
        assert_eq!(o.objective, Objective::Energy);
        assert!((o.epsilon - 0.01).abs() < 1e-12);
    }

    #[test]
    fn bad_options_rejected() {
        for bad in [
            vec!["--platform".to_string(), "m1".to_string()],
            vec!["--objective".to_string()],
            vec!["--frobnicate".to_string()],
        ] {
            assert!(parse_options(&bad).is_err());
        }
    }

    #[test]
    fn builtin_workloads_resolve() {
        assert!(find_workload("gemm").is_some());
        assert!(find_workload("sdpa-bert").is_some());
        assert!(find_workload("nope").is_none());
    }

    #[test]
    fn list_and_compile_paths_work() {
        assert!(run(&["list".to_string()]).is_ok());
        assert!(run(&["bogus".to_string()]).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn lint_workloads_mini_is_clean() {
        let args: Vec<String> = ["lint", "--workloads", "--size", "mini"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run(&args).unwrap(), 0);
    }

    #[test]
    fn lint_self_is_clean() {
        // The daemon's own sources must satisfy the concurrency self-lint
        // (exit 0: no errors, no warnings); regressions here mean a new
        // signal-unsafe call, unrestarted syscall, blocking reactor call,
        // or bare std lock slipped into the serving stack.
        let args: Vec<String> = ["lint", "--self"].iter().map(|s| s.to_string()).collect();
        assert_eq!(run(&args).unwrap(), 0);
    }

    #[test]
    fn lint_rejects_bad_options() {
        assert!(lint(&["--size".to_string(), "huge".to_string()]).is_err());
        assert!(lint(&["--frobnicate".to_string()]).is_err());
        assert!(lint(&[]).is_err());
    }

    #[test]
    fn lint_missing_file_reports_parse_diag_and_exits_2() {
        let args: Vec<String> = ["lint", "/nonexistent/x.mlir", "--json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run(&args).unwrap(), 2);
    }
}
