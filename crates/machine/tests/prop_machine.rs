//! Property tests of the machine model: physical sanity of time/energy
//! across the uncore range for arbitrary counter signatures.

use proptest::prelude::*;

use polyufc_machine::{ExecutionEngine, KernelCounters, Platform};

fn arb_counters() -> impl Strategy<Value = KernelCounters> {
    (
        1u64..10_000_000_000,
        0u64..100_000_000,
        0u64..50_000_000,
        0u64..10_000_000,
        any::<bool>(),
    )
        .prop_map(
            |(flops, l1_hits, llc_hits, fills, parallel)| KernelCounters {
                name: "prop".into(),
                flops,
                accesses: l1_hits + llc_hits + fills,
                hits: vec![l1_hits, 0, llc_hits],
                misses: vec![llc_hits + fills, llc_hits + fills, fills],
                dram_fills: fills,
                dram_writebacks: fills / 4,
                line_bytes: 64,
                parallel,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn time_never_increases_with_uncore_frequency(c in arb_counters()) {
        for plat in Platform::all() {
            let eng = ExecutionEngine::noiseless(plat.clone());
            let freqs = plat.uncore_freqs();
            let mut prev = f64::INFINITY;
            for &f in &freqs {
                let t = eng.run_kernel(&c, f).time_s;
                prop_assert!(t <= prev * (1.0 + 1e-9), "time rose from {prev} to {t} at {f}");
                prop_assert!(t > 0.0);
                prev = t;
            }
        }
    }

    #[test]
    fn energy_and_power_positive_and_consistent(c in arb_counters()) {
        let plat = Platform::broadwell();
        let eng = ExecutionEngine::noiseless(plat.clone());
        for &f in &[1.2, 2.0, 2.8] {
            let r = eng.run_kernel(&c, f);
            prop_assert!(r.energy.total() > 0.0);
            prop_assert!(r.avg_power_w > 0.0);
            let p = r.energy.total() / r.time_s;
            prop_assert!((p - r.avg_power_w).abs() / p < 1e-9);
            // Package power within physical bounds of the platform.
            prop_assert!(r.avg_power_w < 500.0, "implausible power {}", r.avg_power_w);
            // EDP = E * T.
            prop_assert!((r.edp() - r.energy.total() * r.time_s).abs() <= r.edp() * 1e-12);
        }
    }

    #[test]
    fn uncore_energy_rises_with_frequency_when_time_is_flat(flops in 1u64..1_000_000_000) {
        // A pure-compute kernel: time is uncore-independent, so uncore
        // energy must be strictly increasing in f.
        let c = KernelCounters {
            name: "flops".into(),
            flops,
            accesses: 0,
            hits: vec![0, 0, 0],
            misses: vec![0, 0, 0],
            dram_fills: 0,
            dram_writebacks: 0,
            line_bytes: 64,
            parallel: true,
        };
        let plat = Platform::raptor_lake();
        let eng = ExecutionEngine::noiseless(plat.clone());
        let lo = eng.run_kernel(&c, plat.uncore_min_ghz);
        let hi = eng.run_kernel(&c, plat.uncore_max_ghz);
        prop_assert!((lo.time_s - hi.time_s).abs() < lo.time_s * 1e-9);
        prop_assert!(hi.energy.uncore_j > lo.energy.uncore_j);
    }

    #[test]
    fn clamping_total(f in -5.0f64..20.0) {
        for plat in Platform::all() {
            let g = plat.clamp_uncore(f);
            prop_assert!(g >= plat.uncore_min_ghz - 1e-9);
            prop_assert!(g <= plat.uncore_max_ghz + 1e-9);
            // Quantized to the step grid.
            let steps = g / plat.uncore_step_ghz;
            prop_assert!((steps - steps.round()).abs() < 1e-6);
        }
    }
}
