//! Guarded-runtime contract tests: byte-identical pass-through with no
//! faults (property-tested over random programs), and deterministic
//! seeded fault scenarios exercising retry, fallback, and the watchdog.

use proptest::prelude::*;

use polyufc_ir::affine::{AffineKernel, Loop};
use polyufc_ir::scf::{ScfOp, ScfProgram};
use polyufc_machine::{
    CapOutcome, CapPrediction, ExecutionEngine, FaultPlan, GuardedCapRuntime, KernelCounters,
    Platform, UfsDriver,
};

fn arb_counters() -> impl Strategy<Value = KernelCounters> {
    (
        1u64..10_000_000_000,
        0u64..100_000_000,
        0u64..50_000_000,
        0u64..10_000_000,
        any::<bool>(),
    )
        .prop_map(
            |(flops, l1_hits, llc_hits, fills, parallel)| KernelCounters {
                name: String::new(),
                flops,
                accesses: l1_hits + llc_hits + fills,
                hits: vec![l1_hits, 0, llc_hits],
                misses: vec![llc_hits + fills, llc_hits + fills, fills],
                dram_fills: fills,
                dram_writebacks: fills / 4,
                line_bytes: 64,
                parallel,
            },
        )
}

/// A random scf program: kernels with arbitrary (possibly absent) cap
/// calls, plus matching counters.
fn arb_program() -> impl Strategy<Value = (ScfProgram, Vec<KernelCounters>)> {
    proptest::collection::vec((any::<bool>(), 800u32..3500, arb_counters()), 1..5).prop_map(
        |entries| {
            let mut ops = Vec::new();
            let mut counters = Vec::new();
            for (i, (has_cap, mhz, mut c)) in entries.into_iter().enumerate() {
                if has_cap {
                    ops.push(ScfOp::SetUncoreCap { mhz });
                }
                c.name = format!("k{i}");
                ops.push(ScfOp::Kernel(AffineKernel {
                    name: format!("k{i}"),
                    loops: vec![Loop::range(4)],
                    statements: vec![],
                }));
                counters.push(c);
            }
            (
                ScfProgram {
                    name: "prop".into(),
                    arrays: vec![],
                    ops,
                },
                counters,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With a pristine fault plan the guard is an exact pass-through:
    /// every physical field of the run result is bit-identical to the
    /// unguarded `run_scf` (the guard field itself differs by design).
    #[test]
    fn pristine_guard_is_byte_identical((scf, counters) in arb_program()) {
        for plat in Platform::all() {
            let eng = ExecutionEngine::new(plat.clone());
            prop_assert!(eng.fault.is_pristine());
            let plain = eng.run_scf(&scf, &counters);
            let (guarded, report) =
                GuardedCapRuntime::new(&eng).run_scf(&scf, &counters, &[]);
            prop_assert_eq!(plain.time_s.to_bits(), guarded.time_s.to_bits());
            prop_assert_eq!(plain.energy.static_j.to_bits(), guarded.energy.static_j.to_bits());
            prop_assert_eq!(plain.energy.core_j.to_bits(), guarded.energy.core_j.to_bits());
            prop_assert_eq!(plain.energy.uncore_j.to_bits(), guarded.energy.uncore_j.to_bits());
            prop_assert_eq!(plain.energy.dram_j.to_bits(), guarded.energy.dram_j.to_bits());
            prop_assert_eq!(plain.avg_power_w.to_bits(), guarded.avg_power_w.to_bits());
            prop_assert_eq!(plain.uncore_ghz.to_bits(), guarded.uncore_ghz.to_bits());
            // And no guard activity of any kind.
            prop_assert!(!report.fell_back);
            prop_assert_eq!(report.retries(), 0);
            prop_assert_eq!(report.timeouts(), 0);
            prop_assert_eq!(report.unverified(), 0);
            prop_assert_eq!(report.backoff_s, 0.0);
        }
    }
}

fn counters(name: &str) -> KernelCounters {
    KernelCounters {
        name: name.into(),
        flops: 4_000_000_000,
        accesses: 50_000_000,
        hits: vec![40_000_000, 0, 5_000_000],
        misses: vec![10_000_000, 10_000_000, 5_000_000],
        dram_fills: 5_000_000,
        dram_writebacks: 1_000_000,
        line_bytes: 64,
        parallel: true,
    }
}

fn capped_program(names: &[&str], cap_mhz: u32) -> (ScfProgram, Vec<KernelCounters>) {
    let mut ops = Vec::new();
    let mut cs = Vec::new();
    for name in names {
        ops.push(ScfOp::SetUncoreCap { mhz: cap_mhz });
        ops.push(ScfOp::Kernel(AffineKernel {
            name: (*name).into(),
            loops: vec![Loop::range(4)],
            statements: vec![],
        }));
        cs.push(counters(name));
    }
    (
        ScfProgram {
            name: "test".into(),
            arrays: vec![],
            ops,
        },
        cs,
    )
}

/// 100%-stuck writes: the guard must exhaust its retries, record the
/// kernel as unverified, release the cap (run at governor max, like the
/// stock driver), and fall back for the rest of the program.
#[test]
fn stuck_writes_exhaust_retries_then_fall_back() {
    let plat = Platform::broadwell();
    let plan = FaultPlan::stuck_writes(7, 1.0, 4);
    let eng = ExecutionEngine::noiseless(plat.clone()).with_fault_plan(plan);
    let (scf, cs) = capped_program(&["a", "b"], 1600);
    let runtime = GuardedCapRuntime::new(&eng);
    let (run, report) = runtime.run_scf(&scf, &cs, &[]);

    assert!(report.fell_back, "stuck writes must trigger fallback");
    assert_eq!(report.fallback_kernel.as_deref(), Some("a"));
    let a = &report.records[0];
    assert_eq!(a.outcome, CapOutcome::Unverified);
    assert_eq!(a.retries, runtime.config.max_retries);
    assert!(
        (a.applied_ghz - plat.uncore_max_ghz).abs() < 1e-9,
        "unverified cap must be released to governor max, ran at {}",
        a.applied_ghz
    );
    // Everything after the hard fault runs degraded, at max.
    let b = &report.records[1];
    assert_eq!(b.outcome, CapOutcome::Degraded);
    assert!((b.applied_ghz - plat.uncore_max_ghz).abs() < 1e-9);
    assert!(report.backoff_s > 0.0, "retries must charge backoff time");

    // The summary threaded through RunResult matches the report.
    let summary = run.guard.expect("guarded runs carry a summary");
    assert!(summary.fell_back);
    assert_eq!(summary.retries, report.retries());
    assert_eq!(summary.unverified, 1);

    // Graceful degradation bound: the guarded run costs at most the stock
    // baseline plus the sunk retry overhead (both kernels ran at max).
    let stock = UfsDriver::stock().run_baseline(&eng, &cs);
    assert!(run.time_s >= stock.time_s);
    assert!(
        run.time_s <= stock.time_s + report.backoff_s + 4.0 * plat.cap_switch_us * 1e-6 + 1e-12,
        "degraded time {} vs stock {} exceeds the sunk-overhead bound",
        run.time_s,
        stock.time_s
    );
}

/// Wildly wrong static predictions trip the watchdog after `hysteresis`
/// consecutive strikes, and the remainder of the run degrades.
#[test]
fn misprediction_watchdog_degrades_after_hysteresis() {
    let plat = Platform::broadwell();
    let eng = ExecutionEngine::noiseless(plat.clone());
    let (scf, cs) = capped_program(&["a", "b", "c"], 1600);
    let runtime = GuardedCapRuntime::new(&eng);
    // Predictions 10x off in time: every kernel is a strike.
    let predictions: Vec<CapPrediction> = cs
        .iter()
        .map(|c| {
            let r = eng.run_kernel(c, 1.6);
            CapPrediction {
                f_ghz: 1.6,
                time_s: r.time_s * 10.0,
                energy_j: r.energy.total(),
            }
        })
        .collect();
    let (_, report) = runtime.run_scf(&scf, &cs, &predictions);
    assert!(report.fell_back);
    // Strikes on kernels 0 and 1 reach the default hysteresis of 2.
    assert_eq!(report.fallback_kernel.as_deref(), Some("b"));
    assert!(report.records[0].mispredicted);
    assert!(report.records[1].mispredicted);
    assert_eq!(report.records[2].outcome, CapOutcome::Degraded);
}

/// Accurate predictions keep the guard quiet: verified writes, no
/// strikes, no fallback.
#[test]
fn accurate_predictions_stay_verified() {
    let plat = Platform::broadwell();
    let eng = ExecutionEngine::noiseless(plat.clone());
    let (scf, cs) = capped_program(&["a", "b"], 1600);
    let predictions: Vec<CapPrediction> = cs
        .iter()
        .map(|c| {
            let r = eng.run_kernel(c, 1.6);
            CapPrediction {
                f_ghz: 1.6,
                time_s: r.time_s,
                energy_j: r.energy.total(),
            }
        })
        .collect();
    let (_, report) = GuardedCapRuntime::new(&eng).run_scf(&scf, &cs, &predictions);
    assert!(!report.fell_back);
    assert_eq!(report.records[0].outcome, CapOutcome::Verified);
    // Same cap twice: the second kernel inherits the ambient frequency.
    assert_eq!(report.records[1].outcome, CapOutcome::Inherited);
    assert_eq!(report.mispredictions(), 0);
}

/// Dropped writes are recovered by retry: a plan that drops some (but
/// not all) write attempts still ends verified, with retries > 0 and no
/// fallback — the scenario verify-after-write exists for.
#[test]
fn dropped_writes_recover_via_retry() {
    let plat = Platform::broadwell();
    // Heavy but not total drop probability; with 1 + max_retries
    // attempts per write and many seeds, recovery is overwhelmingly
    // likely. Scan seeds for a deterministic one that exercises both a
    // drop and a recovery.
    let mut exercised = false;
    for seed in 0..64 {
        let plan = FaultPlan {
            seed,
            write_drop_prob: 0.6,
            ..FaultPlan::pristine()
        };
        let eng = ExecutionEngine::noiseless(plat.clone()).with_fault_plan(plan);
        let (scf, cs) = capped_program(&["a"], 1600);
        let (_, report) = GuardedCapRuntime::new(&eng).run_scf(&scf, &cs, &[]);
        if report.retries() > 0 && !report.fell_back {
            assert_eq!(report.records[0].outcome, CapOutcome::VerifiedAfterRetry);
            assert!((report.records[0].applied_ghz - 1.6).abs() < 1e-9);
            exercised = true;
            break;
        }
    }
    assert!(
        exercised,
        "no seed in 0..64 produced a drop-then-recover trace"
    );
}
