//! The hardware substitute: simulated Intel platforms (Broadwell and
//! Raptor Lake, Table III), an execution engine that turns interpreter
//! traces into time/energy "measurements" as a function of the uncore
//! frequency, a RAPL-style energy meter with per-zone readings, and a
//! model of the stock Intel UFS driver used as the paper's baseline.
//!
//! See DESIGN.md for the substitution rationale: the paper evaluates on
//! real hardware; this crate reproduces the *mechanics* that make uncore
//! capping interesting — DRAM latency and bandwidth that scale with the
//! uncore frequency, and uncore power that rises linearly with it — so
//! the shape of every time/energy/EDP-vs-frequency curve is preserved.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dufs;
pub mod exec;
pub mod fault;
pub mod guard;
pub mod measure_cache;
pub mod platform;
pub mod rapl;
pub mod ufs;

pub use dufs::DufsGovernor;
pub use exec::{
    measure_kernel, measure_kernel_with_plan, measure_program, measure_program_with_plan,
    ExecutionEngine, KernelCounters, RunResult,
};
pub use fault::FaultPlan;
pub use guard::{
    CapOutcome, CapPrediction, GuardConfig, GuardReport, GuardSummary, GuardedCapRuntime,
    KernelGuardRecord,
};
pub use measure_cache::{
    kernel_fingerprint, measure_cache_reset, measure_cache_stats, program_fingerprint,
    MeasureCacheStats,
};
pub use platform::Platform;
pub use rapl::EnergyBreakdown;
pub use ufs::UfsDriver;
