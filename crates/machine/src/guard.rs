//! The guarded capping runtime: trust, but verify.
//!
//! The compiler's static caps are only advice to hardware that may not
//! take it: cap writes get dropped or land on the wrong step, counters
//! read back garbage, and the analytic `T(f_c,I)`/`E(f_c,I)` model that
//! chose the cap carries systematic error. [`GuardedCapRuntime`] wraps
//! cap application the way a production runtime library would:
//!
//! 1. **Verify after write.** Every cap write is read back; a mismatch
//!    (or a timed-out read) triggers a bounded retry with exponential
//!    backoff, each backoff interval charged to the run's wall-clock at
//!    static power.
//! 2. **Misprediction watchdog.** After each kernel the observed time and
//!    energy are compared against the static model predictions; relative
//!    error above the configured thresholds is a *strike*.
//! 3. **Hysteresis + graceful fallback.** One bad kernel is tolerated
//!    (noise and model outliers happen); [`GuardConfig::hysteresis`]
//!    consecutive strikes — or a cap write that still fails verification
//!    after all retries, which is an unambiguous hardware fault — degrade
//!    the run to the stock [`crate::UfsDriver`] behavior: the cap is
//!    released and every remaining kernel runs at the governor's maximum
//!    frequency. Degraded ≈ stock baseline plus the already-sunk
//!    overheads, which bounds the worst case.
//!
//! Every decision is recorded in a [`GuardReport`]; a compact
//! [`GuardSummary`] is threaded through [`RunResult`] so harness tables
//! can surface guard activity without carrying the full report.
//!
//! With a pristine fault plan the guard is an exact pass-through: its
//! accumulation mirrors [`ExecutionEngine::run_scf`] operation-for-
//! operation, so the output is byte-identical to the unguarded path
//! (property-tested in `tests/guard.rs`).

use std::collections::HashMap;

use polyufc_ir::scf::ScfProgram;

use crate::exec::{ExecutionEngine, KernelCounters, RunResult};
use crate::rapl::EnergyBreakdown;

/// The static model's prediction for one kernel at its chosen cap —
/// plain data, so the machine crate needs no dependency on the compiler's
/// `ParametricModel` (the dependency points the other way).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapPrediction {
    /// The cap the prediction was made at (GHz).
    pub f_ghz: f64,
    /// Predicted execution time `T(f_c, I)`, seconds.
    pub time_s: f64,
    /// Predicted energy `E(f_c, I)`, joules.
    pub energy_j: f64,
}

/// Tunable guard thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Maximum verify-after-write retries per cap application.
    pub max_retries: u32,
    /// First retry's backoff interval (µs); doubles per retry. An MSR
    /// write plus read-back verify is microseconds of work, so the
    /// default is µs-scale — large backoffs would dominate millisecond
    /// kernels and break the degradation bound for no modeling gain.
    pub backoff_base_us: f64,
    /// Consecutive mispredicted kernels required before degrading to the
    /// stock governor (per-kernel strikes; a verified-good kernel resets
    /// the streak).
    pub hysteresis: u32,
    /// Relative time error above which a kernel counts as mispredicted.
    /// Generous by design: the analytic model itself carries tens of
    /// percent of systematic error (Hofmann et al.), and the watchdog
    /// must fire on *faults*, not on the model being a model.
    pub time_rel_err: f64,
    /// Relative energy error threshold, same convention.
    pub energy_rel_err: f64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            max_retries: 3,
            backoff_base_us: 5.0,
            hysteresis: 2,
            time_rel_err: 0.75,
            energy_rel_err: 0.75,
        }
    }
}

/// How one kernel's cap application ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapOutcome {
    /// The ambient frequency already matched; no write was issued.
    Inherited,
    /// The write verified on the first attempt.
    Verified,
    /// The write verified after at least one retry.
    VerifiedAfterRetry,
    /// Verification still failed after all retries; the cap was released
    /// and the kernel ran at the governor's maximum (an untrusted knob
    /// could be stuck arbitrarily low — stock behavior bounds the loss).
    Unverified,
    /// The guard had already degraded to the stock governor; the kernel
    /// ran at the governor's maximum frequency.
    Degraded,
}

impl std::fmt::Display for CapOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CapOutcome::Inherited => "inherited",
            CapOutcome::Verified => "verified",
            CapOutcome::VerifiedAfterRetry => "verified-after-retry",
            CapOutcome::Unverified => "unverified",
            CapOutcome::Degraded => "degraded",
        };
        f.write_str(s)
    }
}

/// One kernel's guard record.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelGuardRecord {
    /// Kernel name.
    pub kernel: String,
    /// The cap the compiler asked for (GHz).
    pub requested_ghz: f64,
    /// The frequency the kernel actually ran at (GHz).
    pub applied_ghz: f64,
    /// How the cap application ended.
    pub outcome: CapOutcome,
    /// Verify-after-write retries spent on this kernel.
    pub retries: u32,
    /// Verify reads that timed out.
    pub timeouts: u32,
    /// Observed-vs-predicted relative time error (`None` without a
    /// prediction or after degradation).
    pub time_rel_err: Option<f64>,
    /// Observed-vs-predicted relative energy error.
    pub energy_rel_err: Option<f64>,
    /// Whether this kernel counted as a watchdog strike.
    pub mispredicted: bool,
}

/// Compact, copyable roll-up of a [`GuardReport`], threaded through
/// [`RunResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardSummary {
    /// Total verify-after-write retries.
    pub retries: u32,
    /// Total timed-out verify reads.
    pub timeouts: u32,
    /// Kernels flagged by the misprediction watchdog.
    pub mispredictions: u32,
    /// Kernels that ran with an unverified cap.
    pub unverified: u32,
    /// Whether the run degraded to the stock governor.
    pub fell_back: bool,
}

/// Every decision the guard made during one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GuardReport {
    /// Per-kernel records, in program order.
    pub records: Vec<KernelGuardRecord>,
    /// Whether the run degraded to the stock governor.
    pub fell_back: bool,
    /// The kernel whose strike triggered the fallback.
    pub fallback_kernel: Option<String>,
    /// Total wall-clock spent in retry backoff, seconds.
    pub backoff_s: f64,
}

impl GuardReport {
    /// Total verify-after-write retries.
    pub fn retries(&self) -> u32 {
        self.records.iter().map(|r| r.retries).sum()
    }

    /// Total timed-out verify reads.
    pub fn timeouts(&self) -> u32 {
        self.records.iter().map(|r| r.timeouts).sum()
    }

    /// Kernels flagged by the misprediction watchdog.
    pub fn mispredictions(&self) -> u32 {
        self.records.iter().filter(|r| r.mispredicted).count() as u32
    }

    /// Kernels that ran with an unverified cap.
    pub fn unverified(&self) -> u32 {
        self.records
            .iter()
            .filter(|r| r.outcome == CapOutcome::Unverified)
            .count() as u32
    }

    /// The compact roll-up threaded through [`RunResult`].
    pub fn summary(&self) -> GuardSummary {
        GuardSummary {
            retries: self.retries(),
            timeouts: self.timeouts(),
            mispredictions: self.mispredictions(),
            unverified: self.unverified(),
            fell_back: self.fell_back,
        }
    }

    /// One-line roll-up for harness tables.
    pub fn one_line(&self) -> String {
        let mut s = format!(
            "{} kernels, {} retries, {} timeouts, {} mispredicted, {} unverified",
            self.records.len(),
            self.retries(),
            self.timeouts(),
            self.mispredictions(),
            self.unverified()
        );
        if self.fell_back {
            s.push_str(&format!(
                ", FELL BACK to stock governor at '{}'",
                self.fallback_kernel.as_deref().unwrap_or("?")
            ));
        }
        s
    }

    /// Multi-line human-readable rendering (per-kernel decisions).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let err = match (r.time_rel_err, r.energy_rel_err) {
                (Some(t), Some(e)) => format!(" Δt={:.0}% ΔE={:.0}%", t * 100.0, e * 100.0),
                _ => String::new(),
            };
            out.push_str(&format!(
                "  {:<16} req {:.1} GHz, ran {:.1} GHz, {}{}{}\n",
                r.kernel,
                r.requested_ghz,
                r.applied_ghz,
                r.outcome,
                if r.retries > 0 {
                    format!(" ({} retries)", r.retries)
                } else {
                    String::new()
                },
                err
            ));
        }
        out.push_str(&format!("  => {}\n", self.one_line()));
        out
    }
}

/// The guarded capping runtime: wraps an engine's scf execution with
/// verify-after-write, bounded retry, a misprediction watchdog, and
/// graceful degradation to the stock governor.
#[derive(Debug, Clone)]
pub struct GuardedCapRuntime<'e> {
    /// The engine (and through it the platform and fault plan) to run on.
    pub engine: &'e ExecutionEngine,
    /// Guard thresholds.
    pub config: GuardConfig,
}

impl<'e> GuardedCapRuntime<'e> {
    /// A guard with default thresholds.
    pub fn new(engine: &'e ExecutionEngine) -> Self {
        GuardedCapRuntime {
            engine,
            config: GuardConfig::default(),
        }
    }

    /// Replaces the guard configuration (builder style).
    pub fn with_config(mut self, config: GuardConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs an scf program with guarded cap application.
    ///
    /// `predictions` holds the static model's per-kernel expectations at
    /// the chosen caps; pass an empty slice to disable the misprediction
    /// watchdog (verify-after-write still runs).
    ///
    /// # Panics
    ///
    /// Panics if `counters` does not match the program's kernels, or if
    /// `predictions` is non-empty but mismatched.
    pub fn run_scf(
        &self,
        scf: &ScfProgram,
        counters: &[KernelCounters],
        predictions: &[CapPrediction],
    ) -> (RunResult, GuardReport) {
        let pairs = scf.kernels_with_caps();
        assert_eq!(
            pairs.len(),
            counters.len(),
            "one counter set per kernel required"
        );
        assert!(
            predictions.is_empty() || predictions.len() == pairs.len(),
            "one prediction per kernel (or none at all) required"
        );
        let plat = &self.engine.platform;
        let fault = &self.engine.fault;
        let cfg = &self.config;

        let mut time = 0.0;
        let mut energy = EnergyBreakdown::default();
        let mut weighted_f = 0.0;
        let mut current = plat.uncore_max_ghz;
        let mut switches = 0u32;
        let mut backoff_s = 0.0;
        // Per-kernel strike ledger plus the consecutive streak the
        // hysteresis watches; a program can re-run a kernel name, and its
        // history should count against it.
        let mut strikes: HashMap<String, u32> = HashMap::new();
        let mut streak = 0u32;
        let mut degraded = false;
        let mut report = GuardReport::default();

        for (i, ((cap, _k), c)) in pairs.iter().zip(counters).enumerate() {
            let requested = match cap {
                Some(mhz) => plat.clamp_uncore(*mhz as f64 / 1000.0),
                None => plat.uncore_max_ghz,
            };
            // Degraded mode: the cap is released and the stock governor
            // runs the uncore at its maximum.
            let target = if degraded {
                plat.uncore_max_ghz
            } else {
                requested
            };

            let mut retries = 0u32;
            let mut timeouts = 0u32;
            let outcome;
            // The frequency the kernel runs at. Mirrors the unguarded
            // path exactly when nothing faults: run at `target` (the
            // unguarded path runs at the requested frequency even when
            // it is within the switch epsilon of the ambient one), fall
            // back to the knob's observed state only on a failed write.
            let applied;
            if (target - current).abs() <= 1e-9 {
                // Nothing to write; the ambient frequency already
                // satisfies the cap (also the degraded steady state).
                outcome = if degraded {
                    CapOutcome::Degraded
                } else {
                    CapOutcome::Inherited
                };
                applied = target;
            } else if degraded {
                // Releasing the cap: the governor ramps to max on its
                // own; there is no MSR write to drop or verify.
                switches += 1;
                current = plat.uncore_max_ghz;
                applied = current;
                outcome = CapOutcome::Degraded;
            } else {
                // Write → verify → retry with exponential backoff.
                // `cap_switch_us` is charged per *net* transition the
                // kernel waits to settle; intermediate landings during
                // the retry loop are already covered by the backoff
                // wall-clock, so the episode costs at most one switch.
                let f0 = current;
                let mut verified = false;
                let mut attempt = 0u32;
                loop {
                    let salt = ((i as u64) << 8) | attempt as u64;
                    current = fault.perturb_write(current, target, plat, c.name.as_bytes(), salt);
                    let read_ok = !fault.read_times_out(c.name.as_bytes(), salt);
                    if !read_ok {
                        timeouts += 1;
                    } else if (current - target).abs() <= 1e-9 {
                        verified = true;
                        break;
                    }
                    if attempt >= cfg.max_retries {
                        break;
                    }
                    attempt += 1;
                    retries += 1;
                    backoff_s +=
                        cfg.backoff_base_us * 1e-6 * (1u64 << (attempt - 1).min(16)) as f64;
                }
                outcome = if verified && retries == 0 {
                    CapOutcome::Verified
                } else if verified {
                    CapOutcome::VerifiedAfterRetry
                } else {
                    CapOutcome::Unverified
                };
                if verified {
                    applied = target;
                } else {
                    // The knob cannot be trusted; running at whatever
                    // frequency it stuck at could be arbitrarily bad.
                    // Release the cap (reliable — the governor ramps to
                    // max on its own, there is no MSR write to verify)
                    // and run this kernel like the stock driver would.
                    current = plat.uncore_max_ghz;
                    applied = current;
                }
                if (current - f0).abs() > 1e-9 {
                    switches += 1;
                }
            }

            let r = self.engine.run_kernel(c, applied);
            time += r.time_s;
            energy = energy.add(&r.energy);
            weighted_f += applied * r.time_s;

            // Misprediction watchdog.
            let mut t_err = None;
            let mut e_err = None;
            let mut mispredicted = false;
            if !degraded {
                if !predictions.is_empty() {
                    let pr = &predictions[i];
                    let te = (r.time_s - pr.time_s).abs() / pr.time_s.max(1e-12);
                    let ee = (r.energy.total() - pr.energy_j).abs() / pr.energy_j.max(1e-12);
                    t_err = Some(te);
                    e_err = Some(ee);
                    if te > cfg.time_rel_err || ee > cfg.energy_rel_err {
                        mispredicted = true;
                    }
                }
                if outcome == CapOutcome::Unverified {
                    // A write that still fails after every retry is an
                    // unambiguous hardware fault, not model error.
                    mispredicted = true;
                }
                if mispredicted {
                    *strikes.entry(c.name.clone()).or_insert(0) += 1;
                    streak += 1;
                    let hard_fault = outcome == CapOutcome::Unverified;
                    if streak >= cfg.hysteresis || hard_fault {
                        degraded = true;
                        report.fell_back = true;
                        report.fallback_kernel = Some(c.name.clone());
                    }
                } else {
                    streak = 0;
                }
            }

            report.records.push(KernelGuardRecord {
                kernel: c.name.clone(),
                requested_ghz: requested,
                applied_ghz: applied,
                outcome,
                retries,
                timeouts,
                time_rel_err: t_err,
                energy_rel_err: e_err,
                mispredicted,
            });
        }

        // Same overhead accounting as the unguarded path, plus the
        // guard's own backoff time (zero without faults).
        let overhead = switches as f64 * plat.cap_switch_us * 1e-6 + backoff_s;
        time += overhead;
        energy.static_j += overhead * plat.p_static_w;
        report.backoff_s = backoff_s;
        let result = RunResult {
            time_s: time,
            energy,
            avg_power_w: energy.total() / time.max(1e-12),
            uncore_ghz: if time > 0.0 {
                weighted_f / time
            } else {
                current
            },
            guard: Some(report.summary()),
        };
        (result, report)
    }
}
