//! Process-wide memoization of measured kernel counters.
//!
//! [`crate::measure_kernel`] is a pure function: the counters it returns
//! are fully determined by the platform's cache hierarchy and the
//! kernel's structure plus the memory layout of the arrays it touches
//! (measurement noise is applied later, at run time, never to counters).
//! Harness runs measure many (kernel × platform) points, and structurally
//! identical points recur — repeated operators in lowered ML graphs,
//! repeated measurements of the same kernel across a binary's phases and
//! across the test suite. The `MeasureCache` is the direct analogue of
//! the Presburger `CountCache`: a bounded, process-wide map from an exact
//! structural fingerprint to the simulated [`KernelCounters`].
//!
//! # Keying
//!
//! The key is a byte-exact fingerprint (no hashing collisions: the full
//! byte string is the map key) covering everything the trace simulation
//! reads:
//!
//! * the platform name and every hierarchy level's geometry
//!   (size, line, associativity, sharing);
//! * per loop: the lower/upper bound expressions and the parallel flag;
//! * per statement: flops, and per access: the referenced array's *base
//!   address* (under the simulator's deterministic layout), element
//!   width, row-major strides, the index expressions, and the
//!   read/write direction.
//!
//! Kernel and statement *names* are deliberately excluded — they do not
//! influence the trace — and the kernel name is restored on a hit so the
//! returned counters are indistinguishable from a fresh measurement.
//! Base addresses must be part of the key: two structurally identical
//! kernels whose arrays land at different offsets map lines to different
//! cache sets and can legitimately produce different conflict-miss
//! counts.
//!
//! # Bounding
//!
//! Like the `CountCache`, the map is generational: when it reaches
//! capacity the next insert clears it (one `evictions` tick) rather than
//! tracking per-entry recency — hit rates are high within a harness run
//! and the entries are cheap to recompute relative to bookkeeping an LRU.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use polyufc_ir::affine::{AffineKernel, AffineProgram};
use polyufc_presburger::LinExpr;

use crate::exec::KernelCounters;
use crate::fault::FaultPlan;
use crate::platform::Platform;

/// A snapshot of the process-wide cache's counters, for bench reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeasureCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Generational clears performed on overflow.
    pub evictions: u64,
}

impl MeasureCacheStats {
    /// Hit rate in `[0, 1]`; zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Entries are a few hundred bytes (key + counters); 4096 of them bound
/// the cache to a couple of MB while covering every point a harness
/// binary measures.
const DEFAULT_CAPACITY: usize = 4096;

struct MeasureCache {
    map: HashMap<Vec<u8>, KernelCounters>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl MeasureCache {
    fn with_capacity(capacity: usize) -> Self {
        MeasureCache {
            map: HashMap::new(),
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn lookup(&mut self, key: &[u8], name: &str) -> Option<KernelCounters> {
        if let Some(hit) = self.map.get(key) {
            let mut counters = hit.clone();
            counters.name = name.to_string();
            self.hits += 1;
            Some(counters)
        } else {
            self.misses += 1;
            None
        }
    }

    /// The stored copy is name-less so a later hit under a renamed kernel
    /// cannot leak the original name.
    fn insert(&mut self, key: Vec<u8>, counters: &KernelCounters) {
        let mut stored = counters.clone();
        stored.name = String::new();
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            self.map.clear();
            self.evictions += 1;
        }
        self.map.insert(key, stored);
    }

    fn stats(&self) -> MeasureCacheStats {
        MeasureCacheStats {
            hits: self.hits,
            misses: self.misses,
            len: self.map.len(),
            evictions: self.evictions,
        }
    }
}

fn cache() -> &'static Mutex<MeasureCache> {
    static CACHE: OnceLock<Mutex<MeasureCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(MeasureCache::with_capacity(DEFAULT_CAPACITY)))
}

/// Snapshot of the process-wide measure cache (for bench reports).
pub fn measure_cache_stats() -> MeasureCacheStats {
    cache().lock().unwrap().stats()
}

/// Clears the process-wide measure cache and its counters (test isolation).
pub fn measure_cache_reset() {
    let mut c = cache().lock().unwrap();
    c.map.clear();
    c.hits = 0;
    c.misses = 0;
    c.evictions = 0;
}

/// Looks up the counters for a fingerprint; restores `name` on a hit.
pub(crate) fn lookup(key: &[u8], name: &str) -> Option<KernelCounters> {
    cache().lock().unwrap().lookup(key, name)
}

/// Inserts freshly simulated counters under a fingerprint.
pub(crate) fn insert(key: Vec<u8>, counters: &KernelCounters) {
    cache().lock().unwrap().insert(key, counters);
}

/// Byte-exact structural fingerprint of one (platform, kernel) point
/// under a pristine fault plan — the same key [`crate::measure_kernel`]
/// memoizes under. Public so content-addressed caches above the machine
/// layer (the serve daemon's artifact cache) can key on exactly the
/// structural identity the measurement layer already computes. Kernel
/// and statement *names* are excluded (see the module docs); callers
/// whose artifacts embed names must append them to the key themselves.
pub fn kernel_fingerprint(
    platform: &Platform,
    program: &AffineProgram,
    kernel: &AffineKernel,
) -> Vec<u8> {
    fingerprint(platform, program, kernel, &FaultPlan::pristine())
}

/// Concatenated, length-prefixed [`kernel_fingerprint`] of every kernel
/// in the program: the structural identity of a whole compilation input
/// on one platform. Two programs share a fingerprint iff every kernel
/// traces identically on that platform's hierarchy.
pub fn program_fingerprint(platform: &Platform, program: &AffineProgram) -> Vec<u8> {
    let mut out = Vec::with_capacity(256 * program.kernels.len().max(1));
    out.extend_from_slice(&(program.kernels.len() as u64).to_le_bytes());
    for k in &program.kernels {
        let fp = kernel_fingerprint(platform, program, k);
        out.extend_from_slice(&(fp.len() as u64).to_le_bytes());
        out.extend_from_slice(&fp);
    }
    out
}

/// Builds the byte-exact fingerprint of one (platform, kernel, fault
/// plan) point (see the module docs for what it must cover).
///
/// The fault plan is part of the point: a non-pristine plan perturbs the
/// returned counters, so letting faulted and clean measurements share a
/// key would poison the clean namespace (serve noisy counters to clean
/// runs) or launder faults away (serve clean counters to faulted runs).
/// Pristine plans contribute a fixed `pristine` marker, keeping the clean
/// namespace stable across plan instances.
pub(crate) fn fingerprint(
    platform: &Platform,
    program: &AffineProgram,
    kernel: &AffineKernel,
    plan: &FaultPlan,
) -> Vec<u8> {
    let mut k = Fp(Vec::with_capacity(256));

    // Fault-plan namespace first: cheap to compare, and a changed plan
    // can never alias a clean key no matter what follows.
    let fp = plan.fingerprint();
    k.usize(fp.len());
    k.0.extend_from_slice(&fp);

    // Platform: name + hierarchy geometry.
    k.str(&platform.name);
    k.usize(platform.hierarchy.levels.len());
    for l in &platform.hierarchy.levels {
        k.u64(l.size_bytes);
        k.u64(l.line_bytes);
        k.u64(l.assoc as u64);
        k.u64(l.shared as u64);
    }

    // Array layout, replicating the simulator's deterministic placement:
    // arrays in declaration order, each padded to a whole number of lines.
    // Only geometry enters the key; array names do not affect the trace.
    let line = platform.hierarchy.line_bytes();
    let mut next = 0u64;
    let mut base_addrs = Vec::with_capacity(program.arrays.len());
    for a in &program.arrays {
        base_addrs.push(next);
        next += (a.size_bytes() as u64).div_ceil(line) * line;
    }

    // Loop nest: bounds and parallel flags.
    k.usize(kernel.loops.len());
    for l in &kernel.loops {
        k.u64(l.parallel as u64);
        k.exprs(&l.lb.exprs);
        k.exprs(&l.ub.exprs);
    }

    // Statements: flops and accesses (array geometry inlined per access,
    // so unreferenced arrays never perturb the key).
    k.usize(kernel.statements.len());
    for s in &kernel.statements {
        k.u64(s.flops);
        k.usize(s.accesses.len());
        for a in &s.accesses {
            let decl = &program.arrays[a.array.0];
            k.u64(base_addrs[a.array.0]);
            k.usize(decl.elem.size_bytes());
            let strides = decl.strides();
            k.usize(strides.len());
            for st in strides {
                k.usize(st);
            }
            k.u64(a.is_write as u64);
            k.exprs(&a.indices);
        }
    }
    k.0
}

/// Little-endian, length-prefixed serializer — self-delimiting, so no two
/// distinct field sequences can share a byte string.
struct Fp(Vec<u8>);

impl Fp {
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.0.extend_from_slice(s.as_bytes());
    }

    fn expr(&mut self, e: &LinExpr) {
        self.i64(e.constant_term());
        let terms: Vec<(usize, i64)> = e.terms().collect();
        self.usize(terms.len());
        for (var, coeff) in terms {
            self.usize(var);
            self.i64(coeff);
        }
    }

    fn exprs(&mut self, es: &[LinExpr]) {
        self.usize(es.len());
        for e in es {
            self.expr(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::measure_kernel;
    use polyufc_ir::affine::{Access, Loop, Statement};
    use polyufc_ir::types::ElemType;

    fn small_program(flops: u64) -> AffineProgram {
        let mut p = AffineProgram::new("t");
        let a = p.add_array("A", vec![64, 64], ElemType::F64);
        p.kernels.push(AffineKernel {
            name: "k".into(),
            loops: vec![Loop::range(64), Loop::range(64)],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![
                    Access::read(a, vec![LinExpr::var(0), LinExpr::var(1)]),
                    Access::write(a, vec![LinExpr::var(0), LinExpr::var(1)]),
                ],
                flops,
            }],
        });
        p
    }

    // The global cache is shared with every concurrently running test that
    // calls `measure_kernel`, so hit/miss accounting is exercised on local
    // `MeasureCache` instances; only name restoration and value equality
    // (concurrency-safe properties) go through the production path.

    #[test]
    fn local_cache_hits_and_restores_names() {
        let plat = Platform::broadwell();
        let p = small_program(2);
        let k = &p.kernels[0];
        let counters = measure_kernel(&plat, &p, k);

        let mut c = MeasureCache::with_capacity(16);
        let key = fingerprint(&plat, &p, k, &FaultPlan::pristine());
        assert!(c.lookup(&key, "k").is_none());
        c.insert(key.clone(), &counters);
        let hit = c.lookup(&key, "renamed").expect("second lookup hits");
        assert_eq!(hit.name, "renamed");
        assert_eq!(hit.flops, counters.flops);
        assert_eq!(hit.hits, counters.hits);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().len, 1);
        // The stored entry is name-less: renames cannot leak names.
        assert_eq!(c.map.get(&key).unwrap().name, "");
    }

    #[test]
    fn fingerprint_ignores_names_but_sees_structure() {
        let plat = Platform::broadwell();
        let p = small_program(2);
        let base = fingerprint(&plat, &p, &p.kernels[0], &FaultPlan::pristine());

        // Kernel/statement names are not part of the point.
        let mut renamed = p.kernels[0].clone();
        renamed.name = "other".into();
        renamed.statements[0].name = "T".into();
        assert_eq!(
            fingerprint(&plat, &p, &renamed, &FaultPlan::pristine()),
            base
        );

        // Flops are.
        let p3 = small_program(3);
        assert_ne!(
            fingerprint(&plat, &p3, &p3.kernels[0], &FaultPlan::pristine()),
            base
        );

        // A parallel flag is.
        let mut par = p.kernels[0].clone();
        par.loops[0].parallel = true;
        assert_ne!(fingerprint(&plat, &p, &par, &FaultPlan::pristine()), base);

        // The platform is.
        let rpl = Platform::raptor_lake();
        assert_ne!(
            fingerprint(&rpl, &p, &p.kernels[0], &FaultPlan::pristine()),
            base
        );
    }

    #[test]
    fn fingerprint_sees_layout_not_spectators() {
        let plat = Platform::broadwell();
        let p1 = small_program(2);
        let base = fingerprint(&plat, &p1, &p1.kernels[0], &FaultPlan::pristine());

        // An extra array declared *after* every referenced one leaves all
        // referenced base addresses unchanged: same point.
        let mut p2 = small_program(2);
        p2.add_array("Unused", vec![4096], ElemType::F32);
        assert_eq!(
            fingerprint(&plat, &p2, &p2.kernels[0], &FaultPlan::pristine()),
            base
        );

        // A preceding array shifts `A`'s base address — a genuinely
        // different memory layout, hence a different point.
        let mut p3 = AffineProgram::new("t");
        p3.add_array("Pad", vec![1024], ElemType::F64);
        let a = p3.add_array("A", vec![64, 64], ElemType::F64);
        p3.kernels.push(AffineKernel {
            name: "k".into(),
            loops: vec![Loop::range(64), Loop::range(64)],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![
                    Access::read(a, vec![LinExpr::var(0), LinExpr::var(1)]),
                    Access::write(a, vec![LinExpr::var(0), LinExpr::var(1)]),
                ],
                flops: 2,
            }],
        });
        assert_ne!(
            fingerprint(&plat, &p3, &p3.kernels[0], &FaultPlan::pristine()),
            base
        );
    }

    #[test]
    fn program_fingerprint_is_structural() {
        let plat = Platform::broadwell();
        let p = small_program(2);
        let base = program_fingerprint(&plat, &p);

        // A renamed program is the same structural point...
        let mut renamed = p.clone();
        renamed.name = "other".into();
        renamed.kernels[0].name = "renamed".into();
        assert_eq!(program_fingerprint(&plat, &renamed), base);

        // ...different flops or a different platform are not.
        let p3 = small_program(3);
        assert_ne!(program_fingerprint(&plat, &p3), base);
        assert_ne!(program_fingerprint(&Platform::raptor_lake(), &p), base);
    }

    #[test]
    fn generational_clear_on_overflow() {
        let plat = Platform::broadwell();
        let mut c = MeasureCache::with_capacity(2);
        for flops in 1..=3u64 {
            let p = small_program(flops);
            let k = &p.kernels[0];
            let key = fingerprint(&plat, &p, k, &FaultPlan::pristine());
            if c.lookup(&key, &k.name).is_none() {
                c.insert(key, &measure_kernel(&plat, &p, k));
            }
        }
        let st = c.stats();
        assert_eq!(st.evictions, 1, "third insert clears the full map");
        assert_eq!(st.len, 1);
        assert_eq!(st.misses, 3);
    }

    #[test]
    fn fault_plans_have_their_own_cache_namespace() {
        // Regression for the pre-fault-layer key scheme, which had no
        // plan component: a faulted measurement would be served the clean
        // cached counters (laundering the faults away), and a faulted
        // miss would store perturbed counters under the clean key
        // (poisoning every later clean run). Both directions are caught
        // by the asserts below when the plan is dropped from the key.
        let plat = Platform::broadwell();
        let p = small_program(2);
        let k = &p.kernels[0];
        let plan = FaultPlan {
            seed: 42,
            counter_noise: 0.2,
            ..FaultPlan::pristine()
        };
        assert_ne!(
            fingerprint(&plat, &p, k, &plan),
            fingerprint(&plat, &p, k, &FaultPlan::pristine()),
            "the fault plan must be part of the cache key"
        );

        // Production path (global cache): clean, faulted, clean again.
        let clean = measure_kernel(&plat, &p, k);
        let faulted = crate::exec::measure_kernel_with_plan(&plat, &p, k, &plan);
        assert_ne!(
            (clean.hits.clone(), clean.dram_fills),
            (faulted.hits.clone(), faulted.dram_fills),
            "a cache hit on the clean entry would launder the faults away"
        );
        let clean_again = measure_kernel(&plat, &p, k);
        assert_eq!(
            clean, clean_again,
            "the faulted insert must not poison the clean namespace"
        );
    }

    #[test]
    fn measure_kernel_hits_are_value_identical() {
        // Production path: repeated measurement of the same point must be
        // indistinguishable from a fresh simulation, including the name of
        // a structurally identical renamed kernel.
        let plat = Platform::broadwell();
        let p = small_program(7);
        let first = measure_kernel(&plat, &p, &p.kernels[0]);
        let again = measure_kernel(&plat, &p, &p.kernels[0]);
        assert_eq!(first, again);

        let mut renamed = p.kernels[0].clone();
        renamed.name = "renamed".into();
        let third = measure_kernel(&plat, &p, &renamed);
        assert_eq!(third.name, "renamed");
        let mut expect = first.clone();
        expect.name = "renamed".into();
        assert_eq!(third, expect);
    }
}
