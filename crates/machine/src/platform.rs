//! Platform descriptors mirroring the paper's Table III.

use polyufc_cache::{CacheHierarchy, CacheLevelConfig};
use serde::{Deserialize, Serialize};

/// A simulated x86 server/desktop platform.
///
/// Timing: DRAM miss latency follows the paper's `M^t(f) = a/f + b` shape
/// and achievable DRAM bandwidth grows linearly with the uncore frequency
/// until the DIMMs saturate. Power: uncore dynamic power is linear in the
/// uncore frequency (`α·f + γ`), core power is charged per active core at
/// the fixed base frequency, and a constant `p_con` models static power.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    /// Short name ("BDW", "RPL").
    pub name: String,
    /// Physical cores.
    pub cores: u32,
    /// Hardware threads.
    pub threads: u32,
    /// Fixed core frequency in GHz (P-state performance governor).
    pub core_freq_ghz: f64,
    /// Minimum uncore frequency (GHz).
    pub uncore_min_ghz: f64,
    /// Maximum uncore frequency (GHz).
    pub uncore_max_ghz: f64,
    /// Uncore frequency step (GHz); the UFS interface exposes 100 MHz.
    pub uncore_step_ghz: f64,
    /// Cache hierarchy (L1 → LLC).
    #[serde(skip, default = "default_hierarchy")]
    pub hierarchy: CacheHierarchy,
    /// Double-precision flops per cycle per core (FMA width).
    pub flops_per_cycle: f64,
    /// L1/L2 hit latency in ns (uncore-independent levels).
    pub private_hit_latency_ns: Vec<f64>,
    /// LLC hit latency: `a/f + b` ns with `f` in GHz.
    pub llc_latency: (f64, f64),
    /// DRAM miss latency: `a/f + b` ns.
    pub dram_latency: (f64, f64),
    /// Achievable DRAM bandwidth: `min(peak, slope·f)` GB/s.
    pub dram_bw_peak_gbps: f64,
    /// Bandwidth slope per GHz of uncore.
    pub dram_bw_slope: f64,
    /// Memory-level parallelism per core (outstanding misses, including
    /// what hardware prefetchers sustain).
    pub mlp: f64,
    /// Static (constant) power `p_con` in watts.
    pub p_static_w: f64,
    /// Dynamic power per active core at base frequency, watts.
    pub core_dyn_w: f64,
    /// Energy per flop, joules.
    pub e_flop_j: f64,
    /// Uncore dynamic power slope `α` (W per GHz).
    pub uncore_alpha_w_per_ghz: f64,
    /// Uncore idle/offset power `γ` (W).
    pub uncore_gamma_w: f64,
    /// DRAM energy per byte transferred, joules.
    pub e_dram_byte_j: f64,
    /// Cost of one uncore cap change, microseconds (Sec. VII-F).
    pub cap_switch_us: f64,
    /// Whether RAPL exposes a separate uncore energy zone (BDW does not,
    /// paper footnote 15).
    pub has_uncore_rapl_zone: bool,
}

// Referenced by the `#[serde(default = "...")]` attribute above; the
// vendored offline serde derive ignores helper attributes, so the
// reference is invisible to dead-code analysis.
#[allow(dead_code)]
fn default_hierarchy() -> CacheHierarchy {
    Platform::broadwell().hierarchy
}

impl Platform {
    /// Intel Broadwell: Xeon E5-1650 v4, 6C/12T, uncore 1.2–2.8 GHz
    /// (Table III).
    pub fn broadwell() -> Self {
        Platform {
            name: "BDW".into(),
            cores: 6,
            threads: 12,
            core_freq_ghz: 3.6,
            uncore_min_ghz: 1.2,
            uncore_max_ghz: 2.8,
            uncore_step_ghz: 0.1,
            hierarchy: CacheHierarchy::new(vec![
                CacheLevelConfig {
                    size_bytes: 32 << 10,
                    line_bytes: 64,
                    assoc: 8,
                    shared: false,
                },
                CacheLevelConfig {
                    size_bytes: 256 << 10,
                    line_bytes: 64,
                    assoc: 8,
                    shared: false,
                },
                CacheLevelConfig {
                    size_bytes: 15 << 20,
                    line_bytes: 64,
                    assoc: 20,
                    shared: true,
                },
            ]),
            flops_per_cycle: 16.0, // AVX2 2×FMA×4 lanes DP
            private_hit_latency_ns: vec![1.1, 3.3],
            llc_latency: (34.0, 4.0),
            dram_latency: (38.0, 62.0),
            dram_bw_peak_gbps: 68.0, // 4ch DDR4-2133
            dram_bw_slope: 27.0,
            mlp: 16.0,
            p_static_w: 18.0,
            core_dyn_w: 6.0,
            e_flop_j: 4.0e-11,
            uncore_alpha_w_per_ghz: 12.0,
            uncore_gamma_w: 6.0,
            e_dram_byte_j: 5.0e-11,
            cap_switch_us: 35.0,
            has_uncore_rapl_zone: false,
        }
    }

    /// Intel Raptor Lake: Core i5-13600, 14C/20T, uncore 0.8–4.6 GHz
    /// (Table III). Larger LLC and more bandwidth than BDW, which is what
    /// shifts several kernels from BB to CB in Fig. 6.
    pub fn raptor_lake() -> Self {
        Platform {
            name: "RPL".into(),
            cores: 14,
            threads: 20,
            core_freq_ghz: 3.9,
            uncore_min_ghz: 0.8,
            uncore_max_ghz: 4.6,
            uncore_step_ghz: 0.1,
            hierarchy: CacheHierarchy::new(vec![
                CacheLevelConfig {
                    size_bytes: 48 << 10,
                    line_bytes: 64,
                    assoc: 12,
                    shared: false,
                },
                CacheLevelConfig {
                    size_bytes: 2 << 20,
                    line_bytes: 64,
                    assoc: 16,
                    shared: false,
                },
                CacheLevelConfig {
                    size_bytes: 24 << 20,
                    line_bytes: 64,
                    assoc: 12,
                    shared: true,
                },
            ]),
            flops_per_cycle: 12.0, // mixed P/E-core average
            private_hit_latency_ns: vec![1.0, 3.0],
            llc_latency: (40.0, 3.0),
            dram_latency: (30.0, 58.0),
            dram_bw_peak_gbps: 86.0, // 2ch DDR5-5600
            dram_bw_slope: 22.0,
            mlp: 18.0,
            p_static_w: 14.0,
            core_dyn_w: 4.5,
            e_flop_j: 3.0e-11,
            uncore_alpha_w_per_ghz: 7.0,
            uncore_gamma_w: 4.5,
            e_dram_byte_j: 4.0e-11,
            cap_switch_us: 21.0,
            has_uncore_rapl_zone: true,
        }
    }

    /// Both evaluation platforms.
    pub fn all() -> Vec<Platform> {
        vec![Platform::broadwell(), Platform::raptor_lake()]
    }

    /// The uncore frequencies selectable through the UFS interface, in
    /// GHz, ascending (the paper's ≈39-step search space on RPL).
    pub fn uncore_freqs(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let mut f = self.uncore_min_ghz;
        while f <= self.uncore_max_ghz + 1e-9 {
            out.push((f * 10.0).round() / 10.0);
            f += self.uncore_step_ghz;
        }
        out
    }

    /// Clamps and quantizes a requested cap to the valid range/step
    /// (MHz precision, avoiding floating-point dust).
    pub fn clamp_uncore(&self, f_ghz: f64) -> f64 {
        let f = f_ghz.clamp(self.uncore_min_ghz, self.uncore_max_ghz);
        let q = (f / self.uncore_step_ghz).round() * self.uncore_step_ghz;
        (q * 1000.0).round() / 1000.0
    }

    /// Peak double-precision compute throughput with `cores` active, in
    /// flops/s.
    pub fn peak_flops(&self, cores: u32) -> f64 {
        cores as f64 * self.core_freq_ghz * 1e9 * self.flops_per_cycle
    }

    /// Achievable DRAM bandwidth at an uncore frequency, bytes/s.
    pub fn dram_bandwidth(&self, f_ghz: f64) -> f64 {
        (self.dram_bw_slope * f_ghz).min(self.dram_bw_peak_gbps) * 1e9
    }

    /// DRAM miss latency at an uncore frequency, seconds.
    pub fn dram_latency_s(&self, f_ghz: f64) -> f64 {
        (self.dram_latency.0 / f_ghz + self.dram_latency.1) * 1e-9
    }

    /// LLC hit latency at an uncore frequency, seconds.
    pub fn llc_latency_s(&self, f_ghz: f64) -> f64 {
        (self.llc_latency.0 / f_ghz + self.llc_latency.1) * 1e-9
    }

    /// Uncore power at frequency `f` with memory utilization `util` in
    /// `[0, 1]`, watts.
    pub fn uncore_power(&self, f_ghz: f64, util: f64) -> f64 {
        self.uncore_gamma_w
            + self.uncore_alpha_w_per_ghz * f_ghz * (0.35 + 0.65 * util.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_ranges() {
        let bdw = Platform::broadwell();
        assert_eq!(bdw.cores, 6);
        assert_eq!((bdw.uncore_min_ghz, bdw.uncore_max_ghz), (1.2, 2.8));
        assert!(!bdw.has_uncore_rapl_zone);
        let rpl = Platform::raptor_lake();
        assert_eq!(rpl.cores, 14);
        assert_eq!((rpl.uncore_min_ghz, rpl.uncore_max_ghz), (0.8, 4.6));
        assert!(rpl.has_uncore_rapl_zone);
    }

    #[test]
    fn rpl_search_space_is_39_steps() {
        // Paper Sec. VII-F: 100 MHz precision -> ≈39 steps.
        let rpl = Platform::raptor_lake();
        assert_eq!(rpl.uncore_freqs().len(), 39);
        let bdw = Platform::broadwell();
        assert_eq!(bdw.uncore_freqs().len(), 17);
    }

    #[test]
    fn clamping_and_quantization() {
        let bdw = Platform::broadwell();
        assert_eq!(bdw.clamp_uncore(0.3), 1.2);
        assert_eq!(bdw.clamp_uncore(9.9), 2.8);
        assert!((bdw.clamp_uncore(1.234) - 1.2).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_scales_then_saturates() {
        let bdw = Platform::broadwell();
        assert!(bdw.dram_bandwidth(1.2) < bdw.dram_bandwidth(2.0));
        assert_eq!(bdw.dram_bandwidth(2.6), bdw.dram_bandwidth(2.8)); // saturated
    }

    #[test]
    fn latency_decreases_with_uncore() {
        let rpl = Platform::raptor_lake();
        assert!(rpl.dram_latency_s(0.8) > rpl.dram_latency_s(4.6));
        assert!(rpl.llc_latency_s(0.8) > rpl.llc_latency_s(4.6));
    }

    #[test]
    fn uncore_power_linear_in_f() {
        let bdw = Platform::broadwell();
        let p1 = bdw.uncore_power(1.2, 1.0);
        let p2 = bdw.uncore_power(2.8, 1.0);
        assert!(p2 > p1);
        // ~30% of package power at max (paper's motivation).
        let pkg = bdw.p_static_w + bdw.core_dyn_w * 6.0 + p2;
        assert!(
            p2 / pkg > 0.2 && p2 / pkg < 0.5,
            "uncore share {}",
            p2 / pkg
        );
    }
}
