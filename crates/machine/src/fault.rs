//! Deterministic, seedable fault injection for the machine model.
//!
//! Real measurement campaigns are not clean: RAPL counters are noisy and
//! occasionally report wild outliers, uncore-frequency writes get dropped
//! or land on the wrong step (the MSR write races the firmware's own
//! power management), thermal events transparently throttle the uncore
//! for part of a run, and counter reads time out under multiplexing
//! pressure. A [`FaultPlan`] describes one such adversarial environment.
//!
//! Two invariants make the layer safe to compile in everywhere:
//!
//! * **Off by default.** [`FaultPlan::pristine`] is the `Default`, every
//!   injection site checks [`FaultPlan::is_pristine`] first, and the
//!   pristine path is byte-identical to a build without the layer — the
//!   figure harnesses' stdout does not change (A/B checked in CI).
//! * **Deterministic.** Every fault decision is a pure function of
//!   `(seed, domain, key, salt)` through the same FNV-1a → SplitMix64
//!   construction as the engine's measurement noise, so a seeded fault
//!   scenario reproduces bit-for-bit across hosts and Rust releases.
//!
//! Plans are serializable as compact `key=value` spec strings
//! ([`FaultPlan::parse_spec`] / [`FaultPlan::spec_string`] round-trip),
//! which is also how the `--fault-plan` CLI flag takes them.

use rand::{rngs::StdRng, RngCore as _, RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::platform::Platform;

/// Multiplier applied to an observed wall-clock reading when a
/// measurement times out: the harness re-arms the counter and re-reads,
/// roughly doubling the observed interval.
pub const TIMEOUT_STALL_SCALE: f64 = 2.0;

/// A seeded description of the faults to inject into the machine model.
///
/// All probabilities are per-event in `[0, 1]`; a field at zero disables
/// that fault class entirely. The all-zero plan is [`FaultPlan::pristine`]
/// and injects nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every fault decision (mixed with the event key).
    pub seed: u64,
    /// Multiplicative noise amplitude on observed counters and RAPL
    /// readings (e.g. `0.02` = ±2%), on top of the engine's own noise.
    pub counter_noise: f64,
    /// Probability that a reading is a wild outlier.
    pub outlier_prob: f64,
    /// Multiplier applied to outlier readings (e.g. `4.0`).
    pub outlier_scale: f64,
    /// Probability that an uncore-cap write is silently dropped (the
    /// knob keeps its previous value).
    pub write_drop_prob: f64,
    /// Probability that an uncore-cap write lands on a *different*
    /// frequency step than requested (stuck/misrouted write).
    pub write_stuck_prob: f64,
    /// Maximum distance, in 100 MHz steps, of a stuck write's landing
    /// point from the requested step (at least 1 when stuck writes are
    /// enabled).
    pub stuck_span_steps: u32,
    /// Probability that a kernel run overlaps a transient thermal
    /// throttle window.
    pub throttle_prob: f64,
    /// Uncore frequency forced during a throttle window (GHz); `0.0`
    /// means the platform minimum.
    pub throttle_ghz: f64,
    /// Fraction of the kernel's work executed inside the throttle
    /// window.
    pub throttle_share: f64,
    /// Probability that a measurement (or a guard's verify read) times
    /// out.
    pub timeout_prob: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::pristine()
    }
}

impl FaultPlan {
    /// The no-fault plan: every injection site becomes a no-op and the
    /// machine model behaves byte-identically to a build without the
    /// fault layer.
    pub fn pristine() -> Self {
        FaultPlan {
            seed: 0,
            counter_noise: 0.0,
            outlier_prob: 0.0,
            outlier_scale: 1.0,
            write_drop_prob: 0.0,
            write_stuck_prob: 0.0,
            stuck_span_steps: 0,
            throttle_prob: 0.0,
            throttle_ghz: 0.0,
            throttle_share: 0.0,
            timeout_prob: 0.0,
        }
    }

    /// The documented "standard fault matrix" used by the robustness
    /// acceptance tests and the CI `fault-matrix` job: noisy counters
    /// with occasional outliers plus a 25% chance that any cap write is
    /// dropped.
    pub fn standard_matrix(seed: u64) -> Self {
        FaultPlan {
            seed,
            counter_noise: 0.02,
            outlier_prob: 0.02,
            outlier_scale: 4.0,
            write_drop_prob: 0.25,
            ..FaultPlan::pristine()
        }
    }

    /// Every cap write lands off-target by up to `span` steps — the
    /// scenario the guard's verify-after-write exists for.
    pub fn stuck_writes(seed: u64, prob: f64, span: u32) -> Self {
        FaultPlan {
            seed,
            write_stuck_prob: prob,
            stuck_span_steps: span.max(1),
            ..FaultPlan::pristine()
        }
    }

    /// Transient thermal throttling: with the given probability a run
    /// spends `share` of its work at the platform's minimum uncore
    /// frequency.
    pub fn thermal_throttle(seed: u64, prob: f64, share: f64) -> Self {
        FaultPlan {
            seed,
            throttle_prob: prob,
            throttle_share: share.clamp(0.0, 1.0),
            ..FaultPlan::pristine()
        }
    }

    /// Flaky measurement reads: timeouts plus mild counter noise.
    pub fn flaky_reads(seed: u64, timeout_prob: f64) -> Self {
        FaultPlan {
            seed,
            counter_noise: 0.01,
            timeout_prob,
            ..FaultPlan::pristine()
        }
    }

    /// Whether this plan injects nothing (the fast-path check at every
    /// injection site).
    pub fn is_pristine(&self) -> bool {
        self.counter_noise == 0.0
            && self.outlier_prob == 0.0
            && self.write_drop_prob == 0.0
            && self.write_stuck_prob == 0.0
            && self.throttle_prob == 0.0
            && self.timeout_prob == 0.0
    }

    /// A deterministic RNG for one fault event, keyed by `(seed, domain,
    /// key, salt)`. Same construction as the engine's measurement-noise
    /// stream: FNV-1a folded into SplitMix64, never `DefaultHasher`
    /// (whose algorithm is unspecified across Rust releases).
    fn event_rng(&self, domain: &str, key: &[u8], salt: u64) -> StdRng {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut h = FNV_OFFSET;
        for b in self.seed.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        for b in domain.bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        for &b in key {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        for b in salt.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        StdRng::seed_from_u64(h)
    }

    /// Bernoulli draw for one event.
    fn chance(&self, p: f64, domain: &str, key: &[u8], salt: u64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.event_rng(domain, key, salt).random::<f64>() < p
    }

    /// Multiplicative scale a noisy observation (timer or RAPL reading)
    /// picks up: `1 + counter_noise·U(-1,1)`, times `outlier_scale` on
    /// outlier events. `1.0` when observation faults are disabled.
    pub fn observe_scale(&self, domain: &str, key: &[u8], salt: u64) -> f64 {
        if self.counter_noise == 0.0 && self.outlier_prob == 0.0 {
            return 1.0;
        }
        let mut rng = self.event_rng(domain, key, salt);
        let mut scale = 1.0 + self.counter_noise * (rng.random::<f64>() * 2.0 - 1.0);
        if self.outlier_prob > 0.0 && rng.random::<f64>() < self.outlier_prob {
            scale *= self.outlier_scale.max(0.0);
        }
        scale
    }

    /// Where an uncore-cap write actually lands: `requested` normally,
    /// the previous value (`current`) when the write is dropped, or a
    /// neighboring frequency step when it sticks. The result is always on
    /// the platform's frequency grid.
    pub fn perturb_write(
        &self,
        current_ghz: f64,
        requested_ghz: f64,
        platform: &Platform,
        key: &[u8],
        salt: u64,
    ) -> f64 {
        if self.write_drop_prob <= 0.0 && self.write_stuck_prob <= 0.0 {
            return requested_ghz;
        }
        if self.chance(self.write_drop_prob, "write-drop", key, salt) {
            return current_ghz;
        }
        if self.chance(self.write_stuck_prob, "write-stuck", key, salt) {
            let span = self.stuck_span_steps.max(1) as u64;
            let mut rng = self.event_rng("stuck-step", key, salt);
            let steps = 1 + rng.next_u64() % span;
            let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
            let landed = platform.clamp_uncore(requested_ghz + sign * steps as f64 * 0.1);
            if (landed - requested_ghz).abs() > 1e-9 {
                return landed;
            }
            // Clamping folded the miss back onto the target; stick the
            // other way so a stuck write is observably stuck.
            let other = platform.clamp_uncore(requested_ghz - sign * steps as f64 * 0.1);
            return other;
        }
        requested_ghz
    }

    /// The throttle window (if any) a kernel run at frequency `f` hits:
    /// `(work_share, forced_ghz)`.
    pub fn throttle_window(
        &self,
        platform: &Platform,
        key: &[u8],
        f_ghz: f64,
    ) -> Option<(f64, f64)> {
        if self.throttle_prob <= 0.0 || self.throttle_share <= 0.0 {
            return None;
        }
        let salt = (f_ghz * 1000.0) as u64;
        if !self.chance(self.throttle_prob, "throttle", key, salt) {
            return None;
        }
        let forced = if self.throttle_ghz > 0.0 {
            platform.clamp_uncore(self.throttle_ghz)
        } else {
            platform.uncore_min_ghz
        };
        Some((self.throttle_share.clamp(0.0, 1.0), forced))
    }

    /// Whether a measurement read for this event times out.
    pub fn read_times_out(&self, key: &[u8], salt: u64) -> bool {
        self.chance(self.timeout_prob, "timeout", key, salt)
    }

    /// Deterministically perturbs measured cache/DRAM event counters the
    /// way a multiplexed PAPI read would: multiplicative jitter with
    /// occasional outliers on the hit/miss/fill/writeback counts.
    /// Instruction-derived counters (`flops`, `accesses`) stay exact.
    /// Keyed by the structural fingerprint so identically shaped kernels
    /// perturb identically regardless of their names.
    pub fn perturb_counters(&self, c: &mut crate::exec::KernelCounters, structural_key: &[u8]) {
        if self.counter_noise == 0.0 && self.outlier_prob == 0.0 {
            return;
        }
        let mut salt = 0u64;
        let mut jitter = |v: u64| -> u64 {
            salt += 1;
            let s = self.observe_scale("papi", structural_key, salt);
            ((v as f64 * s).round().max(0.0)) as u64
        };
        for h in &mut c.hits {
            *h = jitter(*h);
        }
        for m in &mut c.misses {
            *m = jitter(*m);
        }
        c.dram_fills = jitter(c.dram_fills);
        c.dram_writebacks = jitter(c.dram_writebacks);
    }

    /// A byte fingerprint for cache keying: the literal `pristine` marker
    /// for the no-fault plan (so the clean cache namespace is stable), or
    /// a self-delimiting dump of every field.
    pub fn fingerprint(&self) -> Vec<u8> {
        if self.is_pristine() {
            return b"pristine".to_vec();
        }
        let mut out = b"fault:".to_vec();
        out.extend_from_slice(&self.seed.to_le_bytes());
        for v in [
            self.counter_noise,
            self.outlier_prob,
            self.outlier_scale,
            self.write_drop_prob,
            self.write_stuck_prob,
            self.throttle_prob,
            self.throttle_ghz,
            self.throttle_share,
            self.timeout_prob,
        ] {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(self.stuck_span_steps as u64).to_le_bytes());
        out
    }

    /// Serializes the plan as a canonical spec string that
    /// [`FaultPlan::parse_spec`] round-trips.
    pub fn spec_string(&self) -> String {
        if self.is_pristine() {
            return "pristine".to_string();
        }
        format!(
            "seed={},noise={},outlier={},outlier-scale={},drop={},stuck={},stuck-span={},\
             throttle={},throttle-ghz={},throttle-share={},timeout={}",
            self.seed,
            self.counter_noise,
            self.outlier_prob,
            self.outlier_scale,
            self.write_drop_prob,
            self.write_stuck_prob,
            self.stuck_span_steps,
            self.throttle_prob,
            self.throttle_ghz,
            self.throttle_share,
            self.timeout_prob
        )
    }

    /// Parses a fault-plan spec: a preset name (`pristine`/`none`/`off`,
    /// `standard`, `stuck`, `thermal`, `flaky`) and/or comma-separated
    /// `key=value` overrides, e.g. `standard,seed=7` or
    /// `noise=0.05,drop=0.5,seed=1`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unknown key or malformed value.
    pub fn parse_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::pristine();
        for (i, tok) in spec.split(',').enumerate() {
            let tok = tok.trim();
            if tok.is_empty() {
                continue;
            }
            if let Some((k, v)) = tok.split_once('=') {
                let k = k.trim();
                let v = v.trim();
                let f = |v: &str| -> Result<f64, String> {
                    v.parse::<f64>()
                        .map_err(|_| format!("fault-plan: bad number '{v}' for '{k}'"))
                };
                match k {
                    "seed" => {
                        plan.seed = v
                            .parse::<u64>()
                            .map_err(|_| format!("fault-plan: bad seed '{v}'"))?;
                    }
                    "noise" => plan.counter_noise = f(v)?,
                    "outlier" => plan.outlier_prob = f(v)?,
                    "outlier-scale" => plan.outlier_scale = f(v)?,
                    "drop" => plan.write_drop_prob = f(v)?,
                    "stuck" => plan.write_stuck_prob = f(v)?,
                    "stuck-span" => {
                        plan.stuck_span_steps = v
                            .parse::<u32>()
                            .map_err(|_| format!("fault-plan: bad stuck-span '{v}'"))?;
                    }
                    "throttle" => plan.throttle_prob = f(v)?,
                    "throttle-ghz" => plan.throttle_ghz = f(v)?,
                    "throttle-share" => plan.throttle_share = f(v)?,
                    "timeout" => plan.timeout_prob = f(v)?,
                    _ => return Err(format!("fault-plan: unknown key '{k}'")),
                }
            } else {
                // Preset name; only meaningful as the leading token so
                // overrides compose on top of it.
                let preset = match tok {
                    "pristine" | "none" | "off" => FaultPlan::pristine(),
                    "standard" => FaultPlan::standard_matrix(42),
                    "stuck" => FaultPlan::stuck_writes(42, 1.0, 4),
                    "thermal" => FaultPlan::thermal_throttle(42, 0.5, 0.5),
                    "flaky" => FaultPlan::flaky_reads(42, 0.3),
                    _ => return Err(format!("fault-plan: unknown preset '{tok}'")),
                };
                if i != 0 {
                    return Err(format!(
                        "fault-plan: preset '{tok}' must be the first token"
                    ));
                }
                plan = preset;
            }
        }
        // Normalize probabilities so downstream draws stay well-defined.
        for p in [
            &mut plan.counter_noise,
            &mut plan.outlier_prob,
            &mut plan.write_drop_prob,
            &mut plan.write_stuck_prob,
            &mut plan.throttle_prob,
            &mut plan.throttle_share,
            &mut plan.timeout_prob,
        ] {
            if !p.is_finite() || *p < 0.0 {
                return Err(format!("fault-plan: negative or non-finite rate {p}"));
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_is_default_and_injects_nothing() {
        let p = FaultPlan::default();
        assert!(p.is_pristine());
        let plat = Platform::broadwell();
        assert_eq!(p.observe_scale("time", b"k", 0), 1.0);
        assert_eq!(p.perturb_write(2.8, 1.2, &plat, b"k", 0), 1.2);
        assert!(p.throttle_window(&plat, b"k", 2.0).is_none());
        assert!(!p.read_times_out(b"k", 0));
        assert_eq!(p.fingerprint(), b"pristine");
    }

    #[test]
    fn events_are_deterministic_per_key() {
        let p = FaultPlan::standard_matrix(7);
        let a = p.observe_scale("rapl", b"gemm", 3);
        let b = p.observe_scale("rapl", b"gemm", 3);
        assert_eq!(a, b);
        // Different salt, key, or seed → independent draws.
        assert_ne!(a, p.observe_scale("rapl", b"gemm", 4));
        assert_ne!(a, p.observe_scale("rapl", b"mvt", 3));
        assert_ne!(
            a,
            FaultPlan::standard_matrix(8).observe_scale("rapl", b"gemm", 3)
        );
    }

    #[test]
    fn dropped_writes_keep_current_frequency() {
        let plat = Platform::broadwell();
        let p = FaultPlan {
            seed: 1,
            write_drop_prob: 1.0,
            ..FaultPlan::pristine()
        };
        assert_eq!(p.perturb_write(2.8, 1.2, &plat, b"k", 0), 2.8);
    }

    #[test]
    fn stuck_writes_land_on_grid_but_off_target() {
        let plat = Platform::broadwell();
        let p = FaultPlan::stuck_writes(3, 1.0, 5);
        for salt in 0..32 {
            let landed = p.perturb_write(2.8, 2.0, &plat, b"k", salt);
            assert!((landed - 2.0).abs() > 1e-9, "stuck write must miss");
            // On the 100 MHz grid, inside the platform range.
            assert!(landed >= plat.uncore_min_ghz - 1e-9);
            assert!(landed <= plat.uncore_max_ghz + 1e-9);
            let steps = (landed - 2.0).abs() / 0.1;
            assert!((steps - steps.round()).abs() < 1e-6);
        }
    }

    #[test]
    fn spec_round_trips() {
        let p = FaultPlan::standard_matrix(9);
        let s = p.spec_string();
        assert_eq!(FaultPlan::parse_spec(&s).unwrap(), p);
        assert_eq!(
            FaultPlan::parse_spec("pristine").unwrap(),
            FaultPlan::pristine()
        );
        assert_eq!(
            FaultPlan::parse_spec("standard").unwrap(),
            FaultPlan::standard_matrix(42)
        );
        assert_eq!(
            FaultPlan::parse_spec("standard,seed=7").unwrap(),
            FaultPlan::standard_matrix(7)
        );
        assert!(FaultPlan::parse_spec("bogus").is_err());
        assert!(FaultPlan::parse_spec("noise=abc").is_err());
        assert!(FaultPlan::parse_spec("seed=1,standard").is_err());
    }

    #[test]
    fn fingerprints_distinguish_plans() {
        let a = FaultPlan::standard_matrix(1);
        let b = FaultPlan::standard_matrix(2);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), FaultPlan::pristine().fingerprint());
    }

    #[test]
    fn counter_perturbation_is_structural_not_name_keyed() {
        let p = FaultPlan::standard_matrix(5);
        let mk = |name: &str| crate::exec::KernelCounters {
            name: name.to_string(),
            flops: 1000,
            accesses: 500,
            hits: vec![400, 50],
            misses: vec![100, 50],
            dram_fills: 50,
            dram_writebacks: 25,
            line_bytes: 64,
            parallel: false,
        };
        let mut a = mk("a");
        let mut b = mk("b");
        p.perturb_counters(&mut a, b"same-structure");
        p.perturb_counters(&mut b, b"same-structure");
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.dram_fills, b.dram_fills);
        assert_eq!(a.flops, 1000, "instruction counts stay exact");
        let mut c = mk("a");
        p.perturb_counters(&mut c, b"other-structure");
        assert_ne!(
            (c.hits.clone(), c.dram_fills),
            (a.hits.clone(), a.dram_fills)
        );
    }
}
