//! The Intel uncore frequency scaling (UFS) driver model — the paper's
//! hardware baseline.
//!
//! The stock `intel_uncore_frequency` driver leaves the uncore governor
//! free to scale within `[min, max]`; under sustained load it runs at (or
//! near) the maximum uncore frequency, which is precisely the
//! over-provisioning PolyUFC attacks (`f_s ≫ f_c`, Sec. II-F). The driver
//! also exposes the max-frequency knob that PolyUFC's generated
//! `set_uncore_cap` calls write to.

use polyufc_ir::scf::ScfProgram;

use crate::exec::{ExecutionEngine, KernelCounters, RunResult};

/// The baseline driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct UfsDriver {
    /// Optional system-wide cap (what `write_max_freq` would set); `None`
    /// models the untouched default configuration.
    pub max_cap_ghz: Option<f64>,
}

impl UfsDriver {
    /// The untouched default driver (governor free to reach max).
    pub fn stock() -> Self {
        UfsDriver { max_cap_ghz: None }
    }

    /// The uncore frequency the governor settles at under load.
    pub fn effective_frequency(&self, engine: &ExecutionEngine) -> f64 {
        match self.max_cap_ghz {
            Some(f) => engine.platform.clamp_uncore(f),
            None => engine.platform.uncore_max_ghz,
        }
    }

    /// Runs a program under the baseline driver: every kernel executes at
    /// the governor's settled frequency; no cap-switch overheads.
    pub fn run_baseline(&self, engine: &ExecutionEngine, counters: &[KernelCounters]) -> RunResult {
        let f = self.effective_frequency(engine);
        let mut time = 0.0;
        let mut energy = crate::rapl::EnergyBreakdown::default();
        for c in counters {
            let r = engine.run_kernel(c, f);
            time += r.time_s;
            energy = energy.add(&r.energy);
        }
        RunResult {
            time_s: time,
            energy,
            avg_power_w: energy.total() / time.max(1e-12),
            uncore_ghz: f,
            guard: None,
        }
    }

    /// Convenience: baseline run of an scf program (caps ignored — the
    /// stock driver does not receive them).
    pub fn run_baseline_scf(
        &self,
        engine: &ExecutionEngine,
        _scf: &ScfProgram,
        counters: &[KernelCounters],
    ) -> RunResult {
        self.run_baseline(engine, counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::measure_kernel;
    use crate::platform::Platform;
    use polyufc_ir::affine::{Access, AffineKernel, AffineProgram, Loop, Statement};
    use polyufc_ir::types::ElemType;
    use polyufc_presburger::LinExpr;

    fn stream_kernel() -> (AffineProgram, AffineKernel) {
        let mut p = AffineProgram::new("s");
        let a = p.add_array("A", vec![1 << 20], ElemType::F64);
        let k = AffineKernel {
            name: "s".into(),
            loops: vec![Loop::range(1 << 20)],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![Access::read(a, vec![LinExpr::var(0)])],
                flops: 1,
            }],
        };
        p.kernels.push(k.clone());
        (p, k)
    }

    #[test]
    fn stock_runs_at_max() {
        let plat = Platform::raptor_lake();
        let eng = ExecutionEngine::noiseless(plat);
        assert_eq!(UfsDriver::stock().effective_frequency(&eng), 4.6);
    }

    #[test]
    fn capped_driver_clamps() {
        let plat = Platform::broadwell();
        let eng = ExecutionEngine::noiseless(plat);
        let d = UfsDriver {
            max_cap_ghz: Some(9.0),
        };
        assert_eq!(d.effective_frequency(&eng), 2.8);
    }

    #[test]
    fn baseline_equals_max_frequency_runs() {
        let (p, k) = stream_kernel();
        let plat = Platform::broadwell();
        let c = measure_kernel(&plat, &p, &k);
        let eng = ExecutionEngine::noiseless(plat);
        let base = UfsDriver::stock().run_baseline(&eng, std::slice::from_ref(&c));
        let direct = eng.run_kernel(&c, eng.platform.uncore_max_ghz);
        assert!((base.time_s - direct.time_s).abs() < 1e-12);
        assert!((base.energy.total() - direct.energy.total()).abs() < 1e-9);
    }
}
