//! RAPL-style energy accounting with per-zone readings.

use serde::{Deserialize, Serialize};

/// Energy consumed by one run, split into RAPL-like zones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Static/constant energy (`p_con · T`).
    pub static_j: f64,
    /// Core dynamic energy (flops plus active-core power).
    pub core_j: f64,
    /// Uncore energy (LLC, memory controller, interconnect).
    pub uncore_j: f64,
    /// DRAM energy.
    pub dram_j: f64,
}

impl EnergyBreakdown {
    /// Total package + DRAM energy.
    pub fn total(&self) -> f64 {
        self.static_j + self.core_j + self.uncore_j + self.dram_j
    }

    /// What a RAPL read reports on a platform: `(package, uncore zone)` —
    /// the uncore zone is `None` when the platform does not expose one
    /// (BDW, paper footnote 15), in which case only total package energy
    /// is observable.
    pub fn rapl_read(&self, has_uncore_zone: bool) -> (f64, Option<f64>) {
        let pkg = self.total();
        (pkg, has_uncore_zone.then_some(self.uncore_j))
    }

    /// Element-wise sum.
    pub fn add(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            static_j: self.static_j + other.static_j,
            core_j: self.core_j + other.core_j,
            uncore_j: self.uncore_j + other.uncore_j,
            dram_j: self.dram_j + other.dram_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_zones() {
        let e = EnergyBreakdown {
            static_j: 1.0,
            core_j: 2.0,
            uncore_j: 3.0,
            dram_j: 4.0,
        };
        assert_eq!(e.total(), 10.0);
        assert_eq!(e.rapl_read(true), (10.0, Some(3.0)));
        assert_eq!(e.rapl_read(false), (10.0, None));
        let s = e.add(&e);
        assert_eq!(s.total(), 20.0);
    }
}
