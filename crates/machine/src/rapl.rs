//! RAPL-style energy accounting with per-zone readings.

use serde::{Deserialize, Serialize};

/// Energy consumed by one run, split into RAPL-like zones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Static/constant energy (`p_con · T`).
    pub static_j: f64,
    /// Core dynamic energy (flops plus active-core power).
    pub core_j: f64,
    /// Uncore energy (LLC, memory controller, interconnect).
    pub uncore_j: f64,
    /// DRAM energy.
    pub dram_j: f64,
}

impl EnergyBreakdown {
    /// Total package + DRAM energy.
    pub fn total(&self) -> f64 {
        self.static_j + self.core_j + self.uncore_j + self.dram_j
    }

    /// What a RAPL read reports on a platform: `(package, uncore zone)` —
    /// the uncore zone is `None` when the platform does not expose one
    /// (BDW, paper footnote 15), in which case only total package energy
    /// is observable.
    pub fn rapl_read(&self, has_uncore_zone: bool) -> (f64, Option<f64>) {
        let pkg = self.total();
        (pkg, has_uncore_zone.then_some(self.uncore_j))
    }

    /// Element-wise sum.
    pub fn add(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            static_j: self.static_j + other.static_j,
            core_j: self.core_j + other.core_j,
            uncore_j: self.uncore_j + other.uncore_j,
            dram_j: self.dram_j + other.dram_j,
        }
    }

    /// Every zone scaled by one factor (a meter-wide reading error).
    pub fn scaled(&self, s: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            static_j: self.static_j * s,
            core_j: self.core_j * s,
            uncore_j: self.uncore_j * s,
            dram_j: self.dram_j * s,
        }
    }

    /// What the RAPL meter *reports* under a fault plan: the true
    /// breakdown times a deterministic per-event reading error (noise
    /// plus occasional outliers). Pristine plans return `self` exactly.
    pub fn observed(
        &self,
        plan: &crate::fault::FaultPlan,
        key: &[u8],
        salt: u64,
    ) -> EnergyBreakdown {
        let s = plan.observe_scale("rapl", key, salt);
        if s == 1.0 {
            return *self;
        }
        self.scaled(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_zones() {
        let e = EnergyBreakdown {
            static_j: 1.0,
            core_j: 2.0,
            uncore_j: 3.0,
            dram_j: 4.0,
        };
        assert_eq!(e.total(), 10.0);
        assert_eq!(e.rapl_read(true), (10.0, Some(3.0)));
        assert_eq!(e.rapl_read(false), (10.0, None));
        let s = e.add(&e);
        assert_eq!(s.total(), 20.0);
    }
}
