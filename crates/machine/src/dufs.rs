//! A dynamic uncore frequency scaling (DUFS) governor — the reactive
//! runtime alternative PolyUFC is compared against conceptually (duf,
//! UPScavenger, and the OS governors of the related work, Sec. VIII).
//!
//! The governor samples memory utilization once per control period and
//! steps the uncore frequency up when the memory subsystem is saturated,
//! down when it idles. Its weakness is exactly what the paper exploits:
//! control-loop latency. Kernels shorter than a few periods finish before
//! the governor converges, and phase changes are chased instead of
//! anticipated — while PolyUFC sets the right frequency *before* the
//! kernel starts.

use crate::exec::{ExecutionEngine, KernelCounters, RunResult};
use crate::rapl::EnergyBreakdown;

/// A reactive uncore governor.
#[derive(Debug, Clone, Copy)]
pub struct DufsGovernor {
    /// Control-loop period in seconds (OS governors: milliseconds).
    pub period_s: f64,
    /// Frequency step per decision, GHz.
    pub step_ghz: f64,
    /// Raise the frequency when memory utilization exceeds this.
    pub up_threshold: f64,
    /// Lower it when utilization falls below this.
    pub down_threshold: f64,
}

impl Default for DufsGovernor {
    fn default() -> Self {
        DufsGovernor {
            period_s: 2e-3,
            step_ghz: 0.2,
            up_threshold: 0.85,
            down_threshold: 0.45,
        }
    }
}

impl DufsGovernor {
    /// Runs a kernel sequence under the governor, starting from the given
    /// uncore frequency (carried across kernels, like real hardware).
    /// Returns the run result and the final frequency.
    pub fn run(
        &self,
        engine: &ExecutionEngine,
        counters: &[KernelCounters],
        start_ghz: f64,
    ) -> (RunResult, f64) {
        let plat = &engine.platform;
        let mut f = plat.clamp_uncore(start_ghz);
        let mut time = 0.0;
        let mut energy = EnergyBreakdown::default();
        let mut weighted_f = 0.0;
        for c in counters {
            // Work is divisible: at frequency f the kernel proceeds at
            // rate 1/time(f) per second. Each control period consumes a
            // slice and may change f.
            let mut remaining = 1.0f64;
            let mut guard = 0;
            while remaining > 1e-12 && guard < 100_000 {
                guard += 1;
                let full = engine.run_kernel(c, f);
                let slice = (self.period_s / full.time_s).min(remaining);
                let dt = slice * full.time_s;
                time += dt;
                weighted_f += f * dt;
                let scale = dt / full.time_s;
                energy.static_j += full.energy.static_j * scale;
                energy.core_j += full.energy.core_j * scale;
                energy.uncore_j += full.energy.uncore_j * scale;
                energy.dram_j += full.energy.dram_j * scale;
                remaining -= slice;
                if remaining <= 1e-12 {
                    break;
                }
                // Utilization estimate the governor would see: memory time
                // share at the current frequency.
                let util = memory_utilization(engine, c, f);
                if util > self.up_threshold {
                    f = plat.clamp_uncore(f + self.step_ghz);
                } else if util < self.down_threshold {
                    f = plat.clamp_uncore(f - self.step_ghz);
                }
            }
        }
        (
            RunResult {
                time_s: time,
                energy,
                avg_power_w: energy.total() / time.max(1e-12),
                uncore_ghz: if time > 0.0 { weighted_f / time } else { f },
                guard: None,
            },
            f,
        )
    }
}

/// Memory-time share of a kernel at a frequency (what an uncore governor
/// infers from its occupancy counters).
fn memory_utilization(engine: &ExecutionEngine, c: &KernelCounters, f: f64) -> f64 {
    let p = &engine.platform;
    let cores = if c.parallel { p.cores } else { 1 };
    let t_comp = c.flops as f64 / p.peak_flops(cores).max(1.0);
    let dram_bytes = (c.dram_fills + c.dram_writebacks) as f64 * c.line_bytes as f64;
    let t_bw = dram_bytes / p.dram_bandwidth(f);
    let n = c.hits.len();
    let llc_hits = if n >= 1 { c.hits[n - 1] as f64 } else { 0.0 };
    let t_lat = (c.dram_fills as f64 * p.dram_latency_s(f) + llc_hits * p.llc_latency_s(f))
        / (p.mlp * cores as f64);
    let t_mem = t_bw.max(t_lat);
    (t_mem / t_comp.max(t_mem).max(1e-15)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::measure_kernel;
    use crate::platform::Platform;
    use polyufc_ir::affine::{Access, AffineKernel, AffineProgram, Loop, Statement};
    use polyufc_ir::types::ElemType;
    use polyufc_presburger::LinExpr;

    fn stream(n: usize) -> (AffineProgram, AffineKernel) {
        let mut p = AffineProgram::new("s");
        let a = p.add_array("A", vec![n], ElemType::F64);
        let b = p.add_array("B", vec![n], ElemType::F64);
        let mut l = Loop::range(n as i64);
        l.parallel = true;
        let k = AffineKernel {
            name: "s".into(),
            loops: vec![l],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![
                    Access::read(a, vec![LinExpr::var(0)]),
                    Access::write(b, vec![LinExpr::var(0)]),
                ],
                flops: 1,
            }],
        };
        p.kernels.push(k.clone());
        (p, k)
    }

    #[test]
    fn governor_ramps_up_for_bandwidth_bound_work() {
        let (p, k) = stream(8_000_000);
        let plat = Platform::broadwell();
        let c = measure_kernel(&plat, &p, &k);
        let eng = ExecutionEngine::noiseless(plat.clone());
        let gov = DufsGovernor {
            period_s: 1e-4,
            ..Default::default()
        };
        let (_, f_end) = gov.run(&eng, std::slice::from_ref(&c), plat.uncore_min_ghz);
        assert!(
            f_end > plat.uncore_min_ghz + 0.3,
            "governor should ramp up, ended at {f_end}"
        );
    }

    #[test]
    fn short_kernels_suffer_control_latency() {
        // A kernel much shorter than the control period runs entirely at
        // the stale starting frequency.
        let (p, k) = stream(100_000);
        let plat = Platform::broadwell();
        let c = measure_kernel(&plat, &p, &k);
        let eng = ExecutionEngine::noiseless(plat.clone());
        let gov = DufsGovernor::default(); // 2 ms period
        let (run, f_end) = gov.run(&eng, std::slice::from_ref(&c), plat.uncore_min_ghz);
        let fast = eng.run_kernel(&c, plat.uncore_max_ghz);
        assert!(
            (f_end - plat.uncore_min_ghz).abs() < 1e-9,
            "no time to react"
        );
        assert!(
            run.time_s > fast.time_s * 1.5,
            "stale frequency must cost time"
        );
    }

    #[test]
    fn energy_accounting_consistent() {
        let (p, k) = stream(2_000_000);
        let plat = Platform::broadwell();
        let c = measure_kernel(&plat, &p, &k);
        let eng = ExecutionEngine::noiseless(plat.clone());
        let (run, _) = DufsGovernor::default().run(&eng, std::slice::from_ref(&c), 2.0);
        assert!(run.energy.total() > 0.0);
        assert!((run.avg_power_w - run.energy.total() / run.time_s).abs() < 1e-9);
    }
}
