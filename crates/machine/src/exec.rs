//! The execution engine: "runs" programs on a simulated platform.
//!
//! Execution is two-phase, like real measurement campaigns: first the
//! kernel's memory behavior is measured once by exact trace simulation
//! (producing frequency-independent counters), then time/energy at any
//! uncore frequency follow from the platform's timing and power models.
//! This mirrors the physics: cache hit/miss behavior does not depend on
//! the uncore frequency, while latency, bandwidth, and uncore power do.

use polyufc_cache::CacheSim;
use polyufc_ir::affine::{AffineKernel, AffineProgram};
use polyufc_ir::interp::interpret_kernel;
use polyufc_ir::scf::ScfProgram;
use rand::{RngExt as _, SeedableRng};

use crate::fault::FaultPlan;
use crate::guard::GuardSummary;
use crate::platform::Platform;
use crate::rapl::EnergyBreakdown;

/// Frequency-independent counters of one kernel on one platform,
/// gathered by exact trace simulation (the PAPI-counter stand-in).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCounters {
    /// Kernel name.
    pub name: String,
    /// Total flops.
    pub flops: u64,
    /// Total accesses.
    pub accesses: u64,
    /// Per-level hits.
    pub hits: Vec<u64>,
    /// Per-level misses.
    pub misses: Vec<u64>,
    /// Lines fetched from DRAM.
    pub dram_fills: u64,
    /// Dirty lines written back to DRAM.
    pub dram_writebacks: u64,
    /// Cache line size (bytes).
    pub line_bytes: u64,
    /// Whether the kernel has an outer parallel loop.
    pub parallel: bool,
}

impl KernelCounters {
    /// DRAM traffic in bytes (fills + writebacks).
    pub fn dram_bytes(&self) -> f64 {
        (self.dram_fills + self.dram_writebacks) as f64 * self.line_bytes as f64
    }

    /// Measured operational intensity (flops per DRAM fill byte).
    pub fn measured_oi(&self) -> f64 {
        let q = self.dram_fills as f64 * self.line_bytes as f64;
        if q <= 0.0 {
            f64::INFINITY
        } else {
            self.flops as f64 / q
        }
    }
}

/// One simulated run (a kernel or a whole program) at a fixed uncore
/// frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Wall-clock time, seconds.
    pub time_s: f64,
    /// Energy by zone.
    pub energy: EnergyBreakdown,
    /// Mean package power, watts.
    pub avg_power_w: f64,
    /// The uncore frequency the run used (GHz); for multi-kernel programs
    /// with several caps this is the time-weighted mean.
    pub uncore_ghz: f64,
    /// Summary of the guard's decisions when the run went through a
    /// [`crate::guard::GuardedCapRuntime`]; `None` for unguarded runs.
    pub guard: Option<GuardSummary>,
}

impl RunResult {
    /// Energy-delay product, J·s.
    pub fn edp(&self) -> f64 {
        self.energy.total() * self.time_s
    }
}

/// Measures a kernel's frequency-independent counters by running its
/// trace through the platform's cache hierarchy.
///
/// Counters are deterministic in the (platform, kernel, layout) point, so
/// results are memoized process-wide (see [`crate::measure_cache`]):
/// re-measuring a structurally identical point returns the cached
/// counters instead of re-simulating the trace.
pub fn measure_kernel(
    platform: &Platform,
    program: &AffineProgram,
    kernel: &AffineKernel,
) -> KernelCounters {
    measure_kernel_with_plan(platform, program, kernel, &FaultPlan::pristine())
}

/// [`measure_kernel`] under a fault plan: the trace simulation itself is
/// exact, but a non-pristine plan perturbs the returned hit/miss/DRAM
/// counts the way a noisy multiplexed PAPI read would. Faulted points are
/// cached under a key that includes the plan's fingerprint, so they can
/// never poison (or be served from) the clean cache namespace.
pub fn measure_kernel_with_plan(
    platform: &Platform,
    program: &AffineProgram,
    kernel: &AffineKernel,
    plan: &FaultPlan,
) -> KernelCounters {
    let key = crate::measure_cache::fingerprint(platform, program, kernel, plan);
    if let Some(cached) = crate::measure_cache::lookup(&key, &kernel.name) {
        return cached;
    }
    let mut sim = CacheSim::new(&platform.hierarchy, program);
    interpret_kernel(program, kernel, &mut sim);
    let st = sim.stats;
    let mut counters = KernelCounters {
        name: kernel.name.clone(),
        flops: st.flops,
        accesses: st.accesses,
        hits: st.hits,
        misses: st.misses,
        dram_fills: st.dram_line_fills,
        dram_writebacks: st.dram_writebacks,
        line_bytes: platform.hierarchy.line_bytes(),
        parallel: kernel.outer_parallel().is_some(),
    };
    if !plan.is_pristine() {
        // Key the perturbation by the structural fingerprint, not the
        // kernel name: names are excluded from the cache key, so two
        // identically shaped kernels must perturb identically or a cache
        // hit would depend on which one was measured first.
        plan.perturb_counters(&mut counters, &key);
    }
    crate::measure_cache::insert(key, &counters);
    counters
}

/// Measures every kernel of a program.
pub fn measure_program(platform: &Platform, program: &AffineProgram) -> Vec<KernelCounters> {
    // Kernels are measured by independent trace simulations, so fan them
    // out; results come back in kernel order (par_map preserves input
    // order), keeping downstream reports byte-identical to a serial run.
    polyufc_par::par_map(&program.kernels, |k| measure_kernel(platform, program, k))
}

/// Measures every kernel of a program under a fault plan (see
/// [`measure_kernel_with_plan`]).
pub fn measure_program_with_plan(
    platform: &Platform,
    program: &AffineProgram,
    plan: &FaultPlan,
) -> Vec<KernelCounters> {
    polyufc_par::par_map(&program.kernels, |k| {
        measure_kernel_with_plan(platform, program, k, plan)
    })
}

/// The execution engine for a platform.
#[derive(Debug, Clone)]
pub struct ExecutionEngine {
    /// The platform being simulated.
    pub platform: Platform,
    /// Multiplicative measurement noise amplitude (e.g. 0.005 = ±0.5%);
    /// deterministic per (kernel, frequency). Zero disables noise.
    pub noise: f64,
    /// Active fault-injection plan; [`FaultPlan::pristine`] (the default)
    /// leaves every run byte-identical to an engine without the fault
    /// layer.
    pub fault: FaultPlan,
}

impl ExecutionEngine {
    /// Engine with realistic measurement noise.
    pub fn new(platform: Platform) -> Self {
        ExecutionEngine {
            platform,
            noise: 0.004,
            fault: FaultPlan::pristine(),
        }
    }

    /// Engine without noise (for model-validation tests).
    pub fn noiseless(platform: Platform) -> Self {
        ExecutionEngine {
            platform,
            noise: 0.0,
            fault: FaultPlan::pristine(),
        }
    }

    /// Replaces the engine's fault plan (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// A copy of this engine with the fault plan stripped — what
    /// calibration and other trusted-measurement paths must run through.
    pub fn sanitized(&self) -> ExecutionEngine {
        ExecutionEngine {
            platform: self.platform.clone(),
            noise: self.noise,
            fault: FaultPlan::pristine(),
        }
    }

    /// Measures every kernel of a program under this engine's fault plan.
    pub fn measure_program(&self, program: &AffineProgram) -> Vec<KernelCounters> {
        measure_program_with_plan(&self.platform, program, &self.fault)
    }

    /// Simulates one kernel at an uncore frequency.
    pub fn run_kernel(&self, c: &KernelCounters, f_uncore_ghz: f64) -> RunResult {
        if self.fault.is_pristine() {
            return self.run_kernel_clean(c, f_uncore_ghz);
        }
        self.run_kernel_faulty(c, f_uncore_ghz)
    }

    /// The fault-free run path — exactly the pre-fault-layer model, so
    /// pristine plans stay byte-identical to historical results.
    fn run_kernel_clean(&self, c: &KernelCounters, f_uncore_ghz: f64) -> RunResult {
        let p = &self.platform;
        let f = p.clamp_uncore(f_uncore_ghz);
        let cores_used = if c.parallel { p.cores } else { 1 };

        // Compute time.
        let t_comp = c.flops as f64 / p.peak_flops(cores_used).max(1.0);

        // Memory time: bandwidth-bound or latency-bound, whichever
        // dominates; LLC hit service time also scales with the uncore.
        let dram_bytes = (c.dram_fills + c.dram_writebacks) as f64 * c.line_bytes as f64;
        let t_bw = dram_bytes / p.dram_bandwidth(f);
        let n = c.hits.len();
        let llc_hits = if n >= 1 { c.hits[n - 1] as f64 } else { 0.0 };
        let concurrency = p.mlp * cores_used as f64;
        let t_lat = (c.dram_fills as f64 * p.dram_latency_s(f) + llc_hits * p.llc_latency_s(f))
            / concurrency;
        let t_mem = t_bw.max(t_lat);

        // Bounded overlap of compute and memory.
        let time = t_comp.max(t_mem) + 0.04 * t_comp.min(t_mem);
        let time = time.max(1e-9);

        // Energy.
        let comp_util = (t_comp / time).clamp(0.0, 1.0);
        let mem_util = (t_mem / time).clamp(0.0, 1.0);
        let e_static = p.p_static_w * time;
        let e_core = c.flops as f64 * p.e_flop_j
            + p.core_dyn_w * cores_used as f64 * time * (0.25 + 0.75 * comp_util);
        let e_uncore = p.uncore_power(f, mem_util) * time;
        let e_dram = dram_bytes * p.e_dram_byte_j;

        let mut energy = EnergyBreakdown {
            static_j: e_static,
            core_j: e_core,
            uncore_j: e_uncore,
            dram_j: e_dram,
        };
        let mut time = time;
        if self.noise > 0.0 {
            let mut rng = noise_rng(&c.name, f);
            let jitter =
                |r: &mut rand::rngs::StdRng, n: f64| 1.0 + n * (r.random::<f64>() * 2.0 - 1.0);
            time *= jitter(&mut rng, self.noise);
            let ej = jitter(&mut rng, self.noise);
            energy.static_j *= ej;
            energy.core_j *= ej;
            energy.uncore_j *= ej;
            energy.dram_j *= ej;
        }
        RunResult {
            time_s: time,
            energy,
            avg_power_w: energy.total() / time,
            uncore_ghz: f,
            guard: None,
        }
    }

    /// The faulted run path: the clean physics first, then the plan's
    /// transforms appended — a transient thermal-throttle window forcing
    /// part of the work to a lower uncore frequency, observation noise on
    /// the timer and RAPL readings, and measurement timeouts inflating
    /// the observed wall-clock.
    fn run_kernel_faulty(&self, c: &KernelCounters, f_uncore_ghz: f64) -> RunResult {
        let p = &self.platform;
        let f = p.clamp_uncore(f_uncore_ghz);
        let base = self.run_kernel_clean(c, f);
        let mut time = base.time_s;
        let mut energy = base.energy;
        let mut f_eff = f;

        let key = c.name.as_bytes();
        let salt = (f * 1000.0) as u64;

        // Thermal throttle: `share` of the work runs at the forced
        // frequency; time and energy blend by work share.
        if let Some((share, f_thr)) = self.fault.throttle_window(p, key, f) {
            if (f_thr - f).abs() > 1e-9 {
                let slow = self.run_kernel_clean(c, f_thr);
                time = (1.0 - share) * base.time_s + share * slow.time_s;
                energy = EnergyBreakdown {
                    static_j: (1.0 - share) * base.energy.static_j + share * slow.energy.static_j,
                    core_j: (1.0 - share) * base.energy.core_j + share * slow.energy.core_j,
                    uncore_j: (1.0 - share) * base.energy.uncore_j + share * slow.energy.uncore_j,
                    dram_j: (1.0 - share) * base.energy.dram_j + share * slow.energy.dram_j,
                };
                f_eff = (1.0 - share) * f + share * f_thr;
            }
        }

        // Observation noise: the timer and the RAPL meter read through
        // independent noisy channels.
        time *= self.fault.observe_scale("timer", key, salt);
        energy = energy.observed(&self.fault, key, salt);

        // Measurement timeout: the harness re-arms and re-reads, roughly
        // doubling the observed interval.
        if self.fault.read_times_out(key, salt) {
            time *= crate::fault::TIMEOUT_STALL_SCALE;
        }

        let time = time.max(1e-9);
        RunResult {
            time_s: time,
            energy,
            avg_power_w: energy.total() / time,
            uncore_ghz: f_eff,
            guard: None,
        }
    }

    /// Simulates an scf program: kernels run under the most recent
    /// `set_uncore_cap` (the platform maximum before the first call, which
    /// is the UFS default), and each cap *change* costs the platform's
    /// switch latency (35 µs on BDW, 21 µs on RPL — Sec. VII-F).
    ///
    /// `counters` must hold one entry per kernel, in program order.
    ///
    /// # Panics
    ///
    /// Panics if `counters` does not match the program's kernels.
    pub fn run_scf(&self, scf: &ScfProgram, counters: &[KernelCounters]) -> RunResult {
        let pairs = scf.kernels_with_caps();
        assert_eq!(
            pairs.len(),
            counters.len(),
            "one counter set per kernel required"
        );
        let mut time = 0.0;
        let mut energy = EnergyBreakdown::default();
        let mut weighted_f = 0.0;
        let mut current = self.platform.uncore_max_ghz;
        let mut switches = 0u32;
        for (i, ((cap, _k), c)) in pairs.iter().zip(counters).enumerate() {
            let requested = match cap {
                Some(mhz) => self.platform.clamp_uncore(*mhz as f64 / 1000.0),
                None => self.platform.uncore_max_ghz,
            };
            // An unguarded runtime trusts every write: dropped or stuck
            // writes silently leave the knob somewhere else.
            let f = if self.fault.is_pristine() {
                requested
            } else {
                self.fault.perturb_write(
                    current,
                    requested,
                    &self.platform,
                    c.name.as_bytes(),
                    i as u64,
                )
            };
            if (f - current).abs() > 1e-9 {
                switches += 1;
                current = f;
            }
            let r = self.run_kernel(c, f);
            time += r.time_s;
            energy = energy.add(&r.energy);
            weighted_f += f * r.time_s;
        }
        // Cap-switch overhead: time at roughly static power.
        let overhead = switches as f64 * self.platform.cap_switch_us * 1e-6;
        time += overhead;
        energy.static_j += overhead * self.platform.p_static_w;
        RunResult {
            time_s: time,
            energy,
            avg_power_w: energy.total() / time.max(1e-12),
            uncore_ghz: if time > 0.0 {
                weighted_f / time
            } else {
                current
            },
            guard: None,
        }
    }

    /// Sweeps all uncore frequencies for a kernel, returning
    /// `(f_ghz, result)` pairs — the Fig. 1 primitive.
    pub fn sweep_kernel(&self, c: &KernelCounters) -> Vec<(f64, RunResult)> {
        self.platform
            .uncore_freqs()
            .iter()
            .map(|&f| (f, self.run_kernel(c, f)))
            .collect()
    }
}

fn noise_rng(name: &str, f: f64) -> rand::rngs::StdRng {
    // FNV-1a over the kernel name and the mHz-quantized frequency. The
    // hash is spelled out (rather than `DefaultHasher`) because simulated
    // measurement noise must be reproducible across Rust releases:
    // `DefaultHasher`'s algorithm is explicitly unspecified and has
    // changed before.
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    for b in ((f * 1000.0) as u64).to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    rand::rngs::StdRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_ir::affine::{Access, Loop, Statement};
    use polyufc_ir::types::ElemType;
    use polyufc_presburger::LinExpr;

    /// Compute-heavy kernel: small data, many flops.
    fn compute_bound() -> (AffineProgram, AffineKernel) {
        let mut p = AffineProgram::new("cb");
        let a = p.add_array("A", vec![64, 64], ElemType::F64);
        let (vi, vj, vk) = (LinExpr::var(0), LinExpr::var(1), LinExpr::var(2));
        let mut l0 = Loop::range(64);
        l0.parallel = true;
        let k = AffineKernel {
            name: "cb".into(),
            loops: vec![l0, Loop::range(64), Loop::range(64)],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![Access::read(a, vec![vi.clone(), vj.clone()]), {
                    let _ = vk;
                    Access::write(a, vec![vi, vj])
                }],
                flops: 8,
            }],
        };
        p.kernels.push(k.clone());
        (p, k)
    }

    /// Bandwidth-heavy kernel: streaming, few flops.
    fn bandwidth_bound() -> (AffineProgram, AffineKernel) {
        let mut p = AffineProgram::new("bb");
        let n = 3_000_000; // 24 MB > BDW LLC
        let a = p.add_array("A", vec![n], ElemType::F64);
        let b = p.add_array("B", vec![n], ElemType::F64);
        let mut l0 = Loop::range(n as i64);
        l0.parallel = true;
        let k = AffineKernel {
            name: "bb".into(),
            loops: vec![l0],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![
                    Access::read(a, vec![LinExpr::var(0)]),
                    Access::write(b, vec![LinExpr::var(0)]),
                ],
                flops: 1,
            }],
        };
        p.kernels.push(k.clone());
        (p, k)
    }

    #[test]
    fn noise_stream_is_pinned() {
        // The FNV-1a → SplitMix64 noise stream is part of the simulator's
        // reproducibility contract: the same (kernel, frequency) must
        // yield the same jitter on every host and Rust release. These
        // constants pin the stream; a change here is a breaking change to
        // every recorded experiment.
        let mut r = noise_rng("gemm", 2.2);
        let draw_t = r.random::<f64>();
        let draw_e = r.random::<f64>();
        assert_eq!(draw_t, 0.8983106640629496);
        assert_eq!(draw_e, 0.13156881817303678);

        // The induced jitter on a noisy run: time scales by the first
        // draw, every energy component by the second.
        let (p, k) = compute_bound();
        let plat = Platform::broadwell();
        let mut c = measure_kernel(&plat, &p, &k);
        c.name = "gemm".into();
        let noisy = ExecutionEngine {
            platform: plat.clone(),
            noise: 0.004,
            fault: FaultPlan::pristine(),
        };
        let clean = ExecutionEngine::noiseless(plat);
        let rn = noisy.run_kernel(&c, 2.2);
        let rc = clean.run_kernel(&c, 2.2);
        let jt = 1.0 + 0.004 * (draw_t * 2.0 - 1.0);
        let je = 1.0 + 0.004 * (draw_e * 2.0 - 1.0);
        assert_eq!(rn.time_s, rc.time_s * jt);
        assert_eq!(rn.energy.core_j, rc.energy.core_j * je);
        assert_eq!(rn.energy.uncore_j, rc.energy.uncore_j * je);
    }

    #[test]
    fn cb_time_flat_energy_rises_with_uncore() {
        let (p, k) = compute_bound();
        let plat = Platform::broadwell();
        let c = measure_kernel(&plat, &p, &k);
        let eng = ExecutionEngine::noiseless(plat);
        let lo = eng.run_kernel(&c, 1.2);
        let hi = eng.run_kernel(&c, 2.8);
        // CB: time barely changes, energy strictly higher at high uncore.
        assert!(
            (lo.time_s - hi.time_s).abs() / hi.time_s < 0.05,
            "CB time should be flat"
        );
        assert!(
            lo.energy.total() < hi.energy.total(),
            "CB energy must rise with uncore f"
        );
        assert!(lo.edp() < hi.edp());
    }

    #[test]
    fn bb_time_improves_with_uncore() {
        let (p, k) = bandwidth_bound();
        let plat = Platform::broadwell();
        let c = measure_kernel(&plat, &p, &k);
        let eng = ExecutionEngine::noiseless(plat);
        let lo = eng.run_kernel(&c, 1.2);
        let hi = eng.run_kernel(&c, 2.8);
        assert!(
            hi.time_s < lo.time_s * 0.7,
            "BB must speed up with uncore f"
        );
    }

    #[test]
    fn bb_optimal_edp_below_max_frequency() {
        // The motivating observation (Fig. 1): even BB kernels often have
        // their EDP/energy optimum slightly below the maximum uncore
        // frequency once bandwidth saturates.
        let (p, k) = bandwidth_bound();
        let plat = Platform::broadwell();
        let c = measure_kernel(&plat, &p, &k);
        let eng = ExecutionEngine::noiseless(plat);
        let sweep = eng.sweep_kernel(&c);
        let best_edp = sweep
            .iter()
            .min_by(|a, b| a.1.edp().partial_cmp(&b.1.edp()).unwrap())
            .unwrap();
        let max_f = plat_max(&eng);
        assert!(best_edp.0 <= max_f);
        assert!(
            best_edp.0 >= 1.8,
            "BB optimum should not be at the minimum either"
        );
    }

    fn plat_max(e: &ExecutionEngine) -> f64 {
        e.platform.uncore_max_ghz
    }

    #[test]
    fn parallel_flag_speeds_up_compute() {
        let (p, k) = compute_bound();
        let plat = Platform::broadwell();
        let mut c = measure_kernel(&plat, &p, &k);
        let eng = ExecutionEngine::noiseless(plat);
        let par = eng.run_kernel(&c, 2.0);
        c.parallel = false;
        let seq = eng.run_kernel(&c, 2.0);
        assert!(par.time_s < seq.time_s / 3.0);
    }

    #[test]
    fn scf_cap_switch_overhead_charged() {
        use polyufc_ir::scf::{ScfOp, ScfProgram};
        let (p, k) = compute_bound();
        let plat = Platform::broadwell();
        let c = measure_kernel(&plat, &p, &k);
        let eng = ExecutionEngine::noiseless(plat);
        let no_caps = ScfProgram {
            name: "n".into(),
            arrays: p.arrays.clone(),
            ops: vec![ScfOp::Kernel(k.clone())],
        };
        let with_caps = ScfProgram {
            name: "c".into(),
            arrays: p.arrays.clone(),
            ops: vec![ScfOp::SetUncoreCap { mhz: 1200 }, ScfOp::Kernel(k.clone())],
        };
        let r0 = eng.run_scf(&no_caps, std::slice::from_ref(&c));
        let r1 = eng.run_scf(&with_caps, std::slice::from_ref(&c));
        // One switch: 35 µs extra on BDW, but lower uncore energy.
        assert!(r1.time_s > r0.time_s);
        assert!((r1.time_s - r0.time_s - 35e-6).abs() / 35e-6 < 0.25 || r1.time_s > r0.time_s);
        assert!(r1.energy.uncore_j < r0.energy.uncore_j);
    }

    #[test]
    fn noise_is_deterministic_and_small() {
        let (p, k) = compute_bound();
        let plat = Platform::broadwell();
        let c = measure_kernel(&plat, &p, &k);
        let eng = ExecutionEngine::new(plat);
        let a = eng.run_kernel(&c, 2.0);
        let b = eng.run_kernel(&c, 2.0);
        assert_eq!(a.time_s, b.time_s, "same seed, same result");
        let clean = ExecutionEngine::noiseless(eng.platform.clone()).run_kernel(&c, 2.0);
        assert!((a.time_s - clean.time_s).abs() / clean.time_s < 0.01);
    }

    #[test]
    fn rapl_zone_visibility_matches_platform() {
        let (p, k) = bandwidth_bound();
        for plat in Platform::all() {
            let c = measure_kernel(&plat, &p, &k);
            let has_zone = plat.has_uncore_rapl_zone;
            let eng = ExecutionEngine::noiseless(plat);
            let r = eng.run_kernel(&c, 2.0);
            let (pkg, unc) = r.energy.rapl_read(has_zone);
            assert!(pkg > 0.0);
            assert_eq!(unc.is_some(), has_zone);
        }
    }
}
