//! Fuzz-style robustness tests for the textual affine-dialect parser:
//! malformed programs — truncated, garbled, or adversarial — must come
//! back as `TextError`, never as a panic, wrap, or runaway allocation.

use proptest::prelude::*;

use polyufc_ir::textual::parse_affine_program;

/// Line fragments biased toward the grammar so random concatenations
/// exercise the memref, func, loop, and statement paths, not just the
/// top-level "unexpected line" rejection.
const FRAGMENTS: &[&str] = &[
    "// affine program `f`\n",
    "memref %A : 8x8xf64\n",
    "memref %B : 99999999999x99999999999xf64\n",
    "memref %C : f32\n",
    "memref %D 8xf64\n",
    "func @k {\n",
    "  affine.for %i0 = max(0) to min(8) {\n",
    "  affine.parallel %i1 = max(0) to min(i0) {\n",
    "  affine.for %i2 = max to min {\n",
    "  S0: load %A[i0, i1]; store %A[i1, i0] // 2 flops\n",
    "  S1: load %A[i99999, 0] // 1 flops\n",
    "  S2: load %Z[i0] // 1 flops\n",
    "  S3: load %A[999999999999999999999i0] // 1 flops\n",
    "}\n",
    "}}\n",
    "garbage\n",
    "",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Any concatenation of grammar-ish fragments parses or errors —
    /// never panics.
    #[test]
    fn fragment_soup_never_panics(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..12)
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let _ = parse_affine_program(&src);
    }
}

#[test]
fn oversized_numbers_are_errors_not_panics() {
    // Coefficient that overflows i64.
    let src = "memref %A : 8xf64\nfunc @k {\n  affine.for %i0 = max(0) to min(8) {\n  S0: load %A[99999999999999999999i0] // 1 flops\n}\n}\n";
    let e = parse_affine_program(src).unwrap_err();
    assert!(e.message.contains("overflow"), "{e}");

    // Iterator index that overflows usize.
    let src = "memref %A : 8xf64\nfunc @k {\n  affine.for %i0 = max(0) to min(8) {\n  S0: load %A[i99999999999999999999] // 1 flops\n}\n}\n";
    let e = parse_affine_program(src).unwrap_err();
    assert!(e.message.contains("overflow"), "{e}");

    // Iterator index past the sanity limit must not allocate a
    // million-entry coefficient vector.
    let src = "memref %A : 8xf64\nfunc @k {\n  affine.for %i0 = max(0) to min(8) {\n  S0: load %A[i999999] // 1 flops\n}\n}\n";
    let e = parse_affine_program(src).unwrap_err();
    assert!(e.message.contains("limit"), "{e}");

    // Memref shape whose element count overflows usize.
    let src = "memref %A : 99999999999x99999999999x99999999999xf64\nfunc @k {\n}\n";
    let e = parse_affine_program(src).unwrap_err();
    assert!(e.message.contains("overflow"), "{e}");
}

#[test]
fn reasonable_programs_still_parse() {
    let src = "// affine program `ok`\nmemref %A : 8x8xf64\nfunc @k {\n  affine.for %i0 = max(0) to min(8) {\n  S0: load %A[i0, 2i0 - 1] // 1 flops\n}\n}\n";
    let p = parse_affine_program(src).unwrap();
    assert_eq!(p.kernels.len(), 1);
}
