//! The linalg dialect: structured operations with explicit iteration
//! spaces and affine indexing maps, mirroring `linalg.generic` and the
//! named ops PolyUFC caps at (Sec. VI-B: linalg is the chosen granularity
//! for applying uncore frequency caps).

use std::collections::BTreeMap;
use std::fmt;

use polyufc_presburger::LinExpr;

use crate::affine::{Access, AffineKernel, AffineProgram, Loop, Statement};
use crate::types::ElemType;

/// The named operation a [`LinalgOp`] was created as. Used for printing,
/// phase reporting (Fig. 5), and cap placement; the lowering itself is
/// driven by the generic iteration-space description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinalgKind {
    /// Dense matrix multiplication (optionally scaled by a constant).
    Matmul,
    /// Batched matrix multiplication.
    BatchMatmul,
    /// 2-D convolution in `nchw`/`fchw` layout.
    Conv2dNchwFchw,
    /// Pointwise map over one or more inputs (add, exp, div, ...).
    Elementwise,
    /// Reduction over the innermost axis (sum or max).
    Reduce,
    /// Broadcast of a reduced operand back over the full space.
    Broadcast,
    /// Materialized transpose.
    Transpose,
    /// Fill with a constant (writes only).
    Fill,
}

impl fmt::Display for LinalgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinalgKind::Matmul => "linalg.matmul",
            LinalgKind::BatchMatmul => "linalg.batch_matmul",
            LinalgKind::Conv2dNchwFchw => "linalg.conv_2d_nchw_fchw",
            LinalgKind::Elementwise => "linalg.elemwise",
            LinalgKind::Reduce => "linalg.reduce",
            LinalgKind::Broadcast => "linalg.broadcast",
            LinalgKind::Transpose => "linalg.transpose",
            LinalgKind::Fill => "linalg.fill",
        };
        write!(f, "{s}")
    }
}

/// An operand access of a structured op: a named buffer indexed by affine
/// expressions over the op's iteration dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinalgAccess {
    /// Buffer name (shared across the ops of a [`LinalgProgram`]).
    pub buffer: String,
    /// Affine indices over the iteration dimensions.
    pub indices: Vec<LinExpr>,
    /// Whether the operand is written.
    pub is_write: bool,
}

/// A structured operation in `linalg.generic` style: an iteration space
/// given by dimension extents, a set of operand accesses, and a per-point
/// flop count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinalgOp {
    /// Instance name (unique within the program).
    pub name: String,
    /// Which named op this is.
    pub kind: LinalgKind,
    /// Iteration-space extents, outermost first.
    pub iter_dims: Vec<usize>,
    /// Indices of reduction dimensions (the rest are parallel).
    pub reduction_dims: Vec<usize>,
    /// Operand accesses.
    pub accesses: Vec<LinalgAccess>,
    /// Flops per iteration point.
    pub flops_per_point: u64,
}

impl LinalgOp {
    /// Number of iteration points.
    pub fn iter_points(&self) -> u128 {
        self.iter_dims.iter().map(|&d| d as u128).product()
    }

    /// Total flops of the op.
    pub fn total_flops(&self) -> u128 {
        self.iter_points() * self.flops_per_point as u128
    }

    /// `C[m,n] += A[m,k] * B[k,n]`, iteration space `[m, n, k]`.
    /// `scaled` adds one multiply per point (fused `α·(A·B)` as in sdpa).
    #[allow(clippy::too_many_arguments)]
    pub fn matmul(
        name: impl Into<String>,
        a: &str,
        b: &str,
        c: &str,
        m: usize,
        n: usize,
        k: usize,
        scaled: bool,
    ) -> Self {
        let (vm, vn, vk) = (LinExpr::var(0), LinExpr::var(1), LinExpr::var(2));
        LinalgOp {
            name: name.into(),
            kind: LinalgKind::Matmul,
            iter_dims: vec![m, n, k],
            reduction_dims: vec![2],
            accesses: vec![
                LinalgAccess {
                    buffer: a.into(),
                    indices: vec![vm.clone(), vk.clone()],
                    is_write: false,
                },
                LinalgAccess {
                    buffer: b.into(),
                    indices: vec![vk, vn.clone()],
                    is_write: false,
                },
                LinalgAccess {
                    buffer: c.into(),
                    indices: vec![vm.clone(), vn.clone()],
                    is_write: false,
                },
                LinalgAccess {
                    buffer: c.into(),
                    indices: vec![vm, vn],
                    is_write: true,
                },
            ],
            flops_per_point: if scaled { 3 } else { 2 },
        }
    }

    /// Batched matmul `C[b,m,n] += A[b,m,k] * B[b,k,n]`.
    #[allow(clippy::too_many_arguments)]
    pub fn batch_matmul(
        name: impl Into<String>,
        a: &str,
        bb: &str,
        c: &str,
        b: usize,
        m: usize,
        n: usize,
        k: usize,
        scaled: bool,
    ) -> Self {
        let (vb, vm, vn, vk) = (
            LinExpr::var(0),
            LinExpr::var(1),
            LinExpr::var(2),
            LinExpr::var(3),
        );
        LinalgOp {
            name: name.into(),
            kind: LinalgKind::BatchMatmul,
            iter_dims: vec![b, m, n, k],
            reduction_dims: vec![3],
            accesses: vec![
                LinalgAccess {
                    buffer: a.into(),
                    indices: vec![vb.clone(), vm.clone(), vk.clone()],
                    is_write: false,
                },
                LinalgAccess {
                    buffer: bb.into(),
                    indices: vec![vb.clone(), vk, vn.clone()],
                    is_write: false,
                },
                LinalgAccess {
                    buffer: c.into(),
                    indices: vec![vb.clone(), vm.clone(), vn.clone()],
                    is_write: false,
                },
                LinalgAccess {
                    buffer: c.into(),
                    indices: vec![vb, vm, vn],
                    is_write: true,
                },
            ],
            flops_per_point: if scaled { 3 } else { 2 },
        }
    }

    /// `conv2d` in `nchw`/`fchw` layout, no padding:
    /// `O[n,f,oh,ow] += I[n,c,oh*s+kh,ow*s+kw] * W[f,c,kh,kw]`.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d_nchw_fchw(
        name: impl Into<String>,
        input: &str,
        weights: &str,
        output: &str,
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        f: usize,
        kh: usize,
        kw: usize,
        stride: usize,
    ) -> Self {
        assert!(h >= kh && w >= kw, "kernel larger than input");
        let oh = (h - kh) / stride + 1;
        let ow = (w - kw) / stride + 1;
        // dims: [n, f, oh, ow, c, kh, kw]
        let v = |i: usize| LinExpr::var(i);
        let s = stride as i64;
        LinalgOp {
            name: name.into(),
            kind: LinalgKind::Conv2dNchwFchw,
            iter_dims: vec![n, f, oh, ow, c, kh, kw],
            reduction_dims: vec![4, 5, 6],
            accesses: vec![
                LinalgAccess {
                    buffer: input.into(),
                    indices: vec![v(0), v(4), v(2) * s + v(5), v(3) * s + v(6)],
                    is_write: false,
                },
                LinalgAccess {
                    buffer: weights.into(),
                    indices: vec![v(1), v(4), v(5), v(6)],
                    is_write: false,
                },
                LinalgAccess {
                    buffer: output.into(),
                    indices: vec![v(0), v(1), v(2), v(3)],
                    is_write: false,
                },
                LinalgAccess {
                    buffer: output.into(),
                    indices: vec![v(0), v(1), v(2), v(3)],
                    is_write: true,
                },
            ],
            flops_per_point: 2,
        }
    }

    /// Pointwise unary/binary op over `dims`: `out[i..] = f(ins[i..])`.
    pub fn elementwise(
        name: impl Into<String>,
        inputs: &[&str],
        output: &str,
        dims: &[usize],
        flops_per_point: u64,
    ) -> Self {
        let idx: Vec<LinExpr> = (0..dims.len()).map(LinExpr::var).collect();
        let mut accesses: Vec<LinalgAccess> = inputs
            .iter()
            .map(|b| LinalgAccess {
                buffer: (*b).into(),
                indices: idx.clone(),
                is_write: false,
            })
            .collect();
        accesses.push(LinalgAccess {
            buffer: output.into(),
            indices: idx,
            is_write: true,
        });
        LinalgOp {
            name: name.into(),
            kind: LinalgKind::Elementwise,
            iter_dims: dims.to_vec(),
            reduction_dims: vec![],
            accesses,
            flops_per_point,
        }
    }

    /// Reduction over the innermost axis: `out[d0..dk-1] (+|max)= in[d0..dk]`.
    pub fn reduce(name: impl Into<String>, input: &str, output: &str, dims: &[usize]) -> Self {
        assert!(!dims.is_empty());
        let idx_in: Vec<LinExpr> = (0..dims.len()).map(LinExpr::var).collect();
        let idx_out: Vec<LinExpr> = (0..dims.len() - 1).map(LinExpr::var).collect();
        LinalgOp {
            name: name.into(),
            kind: LinalgKind::Reduce,
            iter_dims: dims.to_vec(),
            reduction_dims: vec![dims.len() - 1],
            accesses: vec![
                LinalgAccess {
                    buffer: input.into(),
                    indices: idx_in,
                    is_write: false,
                },
                LinalgAccess {
                    buffer: output.into(),
                    indices: idx_out.clone(),
                    is_write: false,
                },
                LinalgAccess {
                    buffer: output.into(),
                    indices: idx_out,
                    is_write: true,
                },
            ],
            flops_per_point: 1,
        }
    }

    /// Broadcast of a rank-(k-1) operand over the innermost axis combined
    /// with a pointwise op: `out[d0..dk] = f(in[d0..dk], red[d0..dk-1])`.
    pub fn broadcast_combine(
        name: impl Into<String>,
        input: &str,
        reduced: &str,
        output: &str,
        dims: &[usize],
    ) -> Self {
        let idx_full: Vec<LinExpr> = (0..dims.len()).map(LinExpr::var).collect();
        let idx_red: Vec<LinExpr> = (0..dims.len() - 1).map(LinExpr::var).collect();
        LinalgOp {
            name: name.into(),
            kind: LinalgKind::Broadcast,
            iter_dims: dims.to_vec(),
            reduction_dims: vec![],
            accesses: vec![
                LinalgAccess {
                    buffer: input.into(),
                    indices: idx_full.clone(),
                    is_write: false,
                },
                LinalgAccess {
                    buffer: reduced.into(),
                    indices: idx_red,
                    is_write: false,
                },
                LinalgAccess {
                    buffer: output.into(),
                    indices: idx_full,
                    is_write: true,
                },
            ],
            flops_per_point: 1,
        }
    }

    /// Batched matmul with a transposed second operand:
    /// `C[b,m,n] += A[b,m,k] * B[b,n,k]` — the `Q·Kᵀ` shape of attention.
    #[allow(clippy::too_many_arguments)]
    pub fn batch_matmul_bt(
        name: impl Into<String>,
        a: &str,
        bb: &str,
        c: &str,
        b: usize,
        m: usize,
        n: usize,
        k: usize,
        scaled: bool,
    ) -> Self {
        let (vb, vm, vn, vk) = (
            LinExpr::var(0),
            LinExpr::var(1),
            LinExpr::var(2),
            LinExpr::var(3),
        );
        LinalgOp {
            name: name.into(),
            kind: LinalgKind::BatchMatmul,
            iter_dims: vec![b, m, n, k],
            reduction_dims: vec![3],
            accesses: vec![
                LinalgAccess {
                    buffer: a.into(),
                    indices: vec![vb.clone(), vm.clone(), vk.clone()],
                    is_write: false,
                },
                LinalgAccess {
                    buffer: bb.into(),
                    indices: vec![vb.clone(), vn.clone(), vk],
                    is_write: false,
                },
                LinalgAccess {
                    buffer: c.into(),
                    indices: vec![vb.clone(), vm.clone(), vn.clone()],
                    is_write: false,
                },
                LinalgAccess {
                    buffer: c.into(),
                    indices: vec![vb, vm, vn],
                    is_write: true,
                },
            ],
            flops_per_point: if scaled { 3 } else { 2 },
        }
    }

    /// Pure broadcast materialization: `out[d0..dk] = in[d0..dk-1]`.
    pub fn broadcast(name: impl Into<String>, input: &str, output: &str, dims: &[usize]) -> Self {
        let idx_full: Vec<LinExpr> = (0..dims.len()).map(LinExpr::var).collect();
        let idx_red: Vec<LinExpr> = (0..dims.len() - 1).map(LinExpr::var).collect();
        LinalgOp {
            name: name.into(),
            kind: LinalgKind::Broadcast,
            iter_dims: dims.to_vec(),
            reduction_dims: vec![],
            accesses: vec![
                LinalgAccess {
                    buffer: input.into(),
                    indices: idx_red,
                    is_write: false,
                },
                LinalgAccess {
                    buffer: output.into(),
                    indices: idx_full,
                    is_write: true,
                },
            ],
            flops_per_point: 0,
        }
    }

    /// Materialized 2-D transpose of the two innermost dims (outer dims
    /// pass through): `out[.., j, i] = in[.., i, j]`.
    pub fn transpose2(name: impl Into<String>, input: &str, output: &str, dims: &[usize]) -> Self {
        let r = dims.len();
        assert!(r >= 2);
        let idx_in: Vec<LinExpr> = (0..r).map(LinExpr::var).collect();
        let mut idx_out = idx_in.clone();
        idx_out.swap(r - 2, r - 1);
        LinalgOp {
            name: name.into(),
            kind: LinalgKind::Transpose,
            iter_dims: dims.to_vec(),
            reduction_dims: vec![],
            accesses: vec![
                LinalgAccess {
                    buffer: input.into(),
                    indices: idx_in,
                    is_write: false,
                },
                LinalgAccess {
                    buffer: output.into(),
                    indices: idx_out,
                    is_write: true,
                },
            ],
            flops_per_point: 0,
        }
    }

    /// Fill with a constant.
    pub fn fill(name: impl Into<String>, output: &str, dims: &[usize]) -> Self {
        let idx: Vec<LinExpr> = (0..dims.len()).map(LinExpr::var).collect();
        LinalgOp {
            name: name.into(),
            kind: LinalgKind::Fill,
            iter_dims: dims.to_vec(),
            reduction_dims: vec![],
            accesses: vec![LinalgAccess {
                buffer: output.into(),
                indices: idx,
                is_write: true,
            }],
            flops_per_point: 0,
        }
    }
}

impl fmt::Display for LinalgOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "%{} = {} dims=[{}] red=[{}] flops/pt={}",
            self.name,
            self.kind,
            self.iter_dims
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(","),
            self.reduction_dims
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(","),
            self.flops_per_point
        )
    }
}

/// A sequence of structured ops over named buffers.
#[derive(Debug, Clone, Default)]
pub struct LinalgProgram {
    /// Program name.
    pub name: String,
    /// Buffer shapes (name -> extents); element type is uniform.
    pub buffers: BTreeMap<String, Vec<usize>>,
    /// Element type shared by all buffers.
    pub elem: ElemType,
    /// Ops in execution order.
    pub ops: Vec<LinalgOp>,
}

impl LinalgProgram {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>, elem: ElemType) -> Self {
        LinalgProgram {
            name: name.into(),
            buffers: BTreeMap::new(),
            elem,
            ops: Vec::new(),
        }
    }

    /// Declares (or re-declares, idempotently) a buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer exists with a different shape.
    pub fn buffer(&mut self, name: &str, dims: &[usize]) -> &mut Self {
        if let Some(prev) = self.buffers.get(name) {
            assert_eq!(
                prev, dims,
                "buffer `{name}` re-declared with different shape"
            );
        } else {
            self.buffers.insert(name.into(), dims.to_vec());
        }
        self
    }

    /// Appends an op, declaring its buffers if needed by inferring shapes
    /// from the iteration space is not possible — callers must declare
    /// buffers explicitly first.
    ///
    /// # Panics
    ///
    /// Panics if an accessed buffer is undeclared or indexed with the
    /// wrong arity.
    pub fn push(&mut self, op: LinalgOp) -> &mut Self {
        for a in &op.accesses {
            let dims = self
                .buffers
                .get(&a.buffer)
                .unwrap_or_else(|| panic!("undeclared buffer `{}` in op `{}`", a.buffer, op.name));
            assert_eq!(
                a.indices.len(),
                dims.len(),
                "op `{}` indexes `{}` with wrong arity",
                op.name,
                a.buffer
            );
        }
        self.ops.push(op);
        self
    }

    /// Lowers to the affine dialect: one kernel per op, shared array table.
    pub fn lower_to_affine(&self) -> AffineProgram {
        let mut p = AffineProgram::new(self.name.clone());
        let mut ids = BTreeMap::new();
        for (name, dims) in &self.buffers {
            let id = p.add_array(name.clone(), dims.clone(), self.elem);
            ids.insert(name.clone(), id);
        }
        for op in &self.ops {
            let loops: Vec<Loop> = op
                .iter_dims
                .iter()
                .enumerate()
                .map(|(d, &n)| {
                    let mut l = Loop::range(n as i64);
                    // Parallel dims: every non-reduction loop is marked;
                    // Pluto refines this later.
                    l.parallel = !op.reduction_dims.contains(&d);
                    l
                })
                .collect();
            let accesses: Vec<Access> = op
                .accesses
                .iter()
                .map(|a| Access {
                    array: ids[&a.buffer],
                    indices: a.indices.clone(),
                    is_write: a.is_write,
                })
                .collect();
            p.kernels.push(AffineKernel {
                name: op.name.clone(),
                loops,
                statements: vec![Statement {
                    name: format!("{}_s0", op.name),
                    accesses,
                    flops: op.flops_per_point,
                }],
            });
        }
        debug_assert_eq!(p.validate(), Ok(()));
        p
    }
}

impl fmt::Display for LinalgProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// linalg program `{}`", self.name)?;
        for (n, d) in &self.buffers {
            writeln!(
                f,
                "buffer %{} : {}x{}",
                n,
                d.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join("x"),
                self.elem
            )?;
        }
        for op in &self.ops {
            writeln!(f, "{op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_flops() {
        let op = LinalgOp::matmul("mm", "A", "B", "C", 4, 5, 6, false);
        assert_eq!(op.iter_points(), 120);
        assert_eq!(op.total_flops(), 240);
        assert_eq!(op.reduction_dims, vec![2]);
    }

    #[test]
    fn conv_output_dims() {
        // AlexNet conv1: 224x224, k=11, stride 4 -> 54x54 output.
        let op = LinalgOp::conv2d_nchw_fchw("c1", "I", "W", "O", 1, 3, 224, 224, 64, 11, 11, 4);
        assert_eq!(op.iter_dims[2], 54);
        assert_eq!(op.iter_dims[3], 54);
    }

    #[test]
    fn lower_matmul_to_affine() {
        let mut lp = LinalgProgram::new("mm", ElemType::F64);
        lp.buffer("A", &[4, 6])
            .buffer("B", &[6, 5])
            .buffer("C", &[4, 5]);
        lp.push(LinalgOp::matmul("mm0", "A", "B", "C", 4, 5, 6, false));
        let ap = lp.lower_to_affine();
        assert_eq!(ap.kernels.len(), 1);
        let k = &ap.kernels[0];
        assert_eq!(k.depth(), 3);
        assert_eq!(k.domain_size().unwrap(), 120);
        assert!(k.loops[0].parallel && k.loops[1].parallel && !k.loops[2].parallel);
        assert_eq!(k.statements[0].accesses.len(), 4);
        assert!(ap.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "undeclared buffer")]
    fn undeclared_buffer_panics() {
        let mut lp = LinalgProgram::new("bad", ElemType::F64);
        lp.push(LinalgOp::fill("f", "X", &[4]));
    }

    #[test]
    fn reduce_and_broadcast_arities() {
        let mut lp = LinalgProgram::new("softmaxish", ElemType::F32);
        lp.buffer("X", &[2, 8])
            .buffer("M", &[2])
            .buffer("Y", &[2, 8]);
        lp.push(LinalgOp::reduce("max", "X", "M", &[2, 8]));
        lp.push(LinalgOp::broadcast_combine("sub", "X", "M", "Y", &[2, 8]));
        let ap = lp.lower_to_affine();
        assert!(ap.validate().is_ok());
        assert_eq!(ap.kernels.len(), 2);
    }

    #[test]
    fn transpose_swaps_indices() {
        let op = LinalgOp::transpose2("t", "A", "B", &[3, 4]);
        assert_eq!(op.accesses[1].indices[0], LinExpr::var(1));
        assert_eq!(op.accesses[1].indices[1], LinExpr::var(0));
        assert_eq!(op.flops_per_point, 0);
    }
}
