//! The tensor dialect: the torch stand-in. High-level ops on named
//! tensors, lowered to linalg by [`crate::lower`].

use std::fmt;

/// High-level tensor operations with their shape parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorOpKind {
    /// `C[m,n] = A[m,k] @ B[k,n]` — e.g. an LM-head matmul.
    MatMul {
        /// Rows of the output.
        m: usize,
        /// Columns of the output.
        n: usize,
        /// Contraction size.
        k: usize,
    },
    /// 2-D convolution (nchw input, fchw weights, no padding).
    Conv2d {
        /// Batch.
        n: usize,
        /// Input channels.
        c: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
        /// Output channels (filters).
        f: usize,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Stride.
        stride: usize,
    },
    /// Softmax over the innermost axis.
    Softmax {
        /// Tensor shape.
        dims: Vec<usize>,
    },
    /// Scaled dot-product attention over fused batch·heads.
    Sdpa {
        /// Batch size.
        b: usize,
        /// Number of heads.
        h: usize,
        /// Sequence length.
        s: usize,
        /// Head dimension.
        d: usize,
    },
    /// Pointwise addition of two tensors.
    Add {
        /// Tensor shape.
        dims: Vec<usize>,
    },
    /// Pointwise ReLU.
    Relu {
        /// Tensor shape.
        dims: Vec<usize>,
    },
}

impl fmt::Display for TensorOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorOpKind::MatMul { m, n, k } => write!(f, "torch.matmul({m}x{k}, {k}x{n})"),
            TensorOpKind::Conv2d {
                n,
                c,
                h,
                w,
                f: fo,
                kh,
                kw,
                stride,
            } => {
                write!(
                    f,
                    "torch.conv2d({n}x{c}x{h}x{w}, {fo}x{c}x{kh}x{kw}, stride={stride})"
                )
            }
            TensorOpKind::Softmax { dims } => write!(f, "torch.softmax(dims={dims:?})"),
            TensorOpKind::Sdpa { b, h, s, d } => write!(f, "torch.sdpa({b}x{h}x{s}x{d})"),
            TensorOpKind::Add { dims } => write!(f, "torch.add(dims={dims:?})"),
            TensorOpKind::Relu { dims } => write!(f, "torch.relu(dims={dims:?})"),
        }
    }
}

/// One tensor-dialect operation instance. Input/output buffer names tie
/// ops together; shapes are implied by the kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorOp {
    /// Instance name.
    pub name: String,
    /// Operation and shapes.
    pub kind: TensorOpKind,
    /// Input buffer names (arity depends on the kind).
    pub inputs: Vec<String>,
    /// Output buffer name.
    pub output: String,
}

/// A straight-line graph of tensor ops (the torch-level module).
#[derive(Debug, Clone, Default)]
pub struct TensorGraph {
    /// Graph name (e.g. the model it came from).
    pub name: String,
    /// Ops in execution order.
    pub ops: Vec<TensorOp>,
}

impl TensorGraph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        TensorGraph {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Appends an op.
    pub fn push(&mut self, op: TensorOp) -> &mut Self {
        self.ops.push(op);
        self
    }
}

impl fmt::Display for TensorGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// tensor graph `{}`", self.name)?;
        for op in &self.ops {
            writeln!(
                f,
                "%{} = {} ({}) -> %{}",
                op.name,
                op.kind,
                op.inputs.join(", "),
                op.output
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_builds_and_prints() {
        let mut g = TensorGraph::new("demo");
        g.push(TensorOp {
            name: "mm".into(),
            kind: TensorOpKind::MatMul { m: 4, n: 5, k: 6 },
            inputs: vec!["A".into(), "B".into()],
            output: "C".into(),
        });
        let s = g.to_string();
        assert!(s.contains("torch.matmul"));
        assert_eq!(g.ops.len(), 1);
    }
}
