//! Textual round-trip for the affine dialect: parses the exact format the
//! [`crate::AffineProgram`] `Display` impl prints, so IR can be dumped,
//! inspected, edited, and re-read — the workflow MLIR's textual format
//! enables.
//!
//! ```text
//! // affine program `mvt`
//! memref %A : 512x512xf64
//! func @mvt_x1 {
//!   affine.parallel %i0 = max(0) to min(512) {
//!     affine.for %i1 = max(0) to min(512) {
//!       S0: load %A[i0, i1]; load %y1[i1]; store %x1[i0] // 2 flops
//!     }
//!   }
//! }
//! ```

use std::collections::HashMap;

use polyufc_presburger::LinExpr;

use crate::affine::{Access, AffineKernel, AffineProgram, Bound, Loop, Statement};
use crate::types::{ArrayId, ElemType};

/// Error with the offending line (1-based) and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TextError {}

/// Parses a textual affine program (the `Display` format).
///
/// # Errors
///
/// Returns [`TextError`] on malformed input.
pub fn parse_affine_program(src: &str) -> Result<AffineProgram, TextError> {
    let mut p = AffineProgram::new("parsed");
    let mut arrays: HashMap<String, ArrayId> = HashMap::new();
    let mut lines = src.lines().enumerate().peekable();

    let err = |line: usize, m: String| TextError {
        line: line + 1,
        message: m,
    };

    while let Some((ln, raw)) = lines.next() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("// affine program `") {
            p.name = rest.trim_end_matches('`').to_string();
            continue;
        }
        if line.starts_with("//") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("memref %") {
            let (name, ty) = rest
                .split_once(" : ")
                .ok_or_else(|| err(ln, "memref needs ` : ` type".into()))?;
            let parts: Vec<&str> = ty.trim().split('x').collect();
            let (dims_s, elem_s) = parts.split_at(parts.len() - 1);
            let elem = match elem_s[0] {
                "f32" => ElemType::F32,
                "f64" => ElemType::F64,
                other => return Err(err(ln, format!("unknown element type `{other}`"))),
            };
            let dims: Result<Vec<usize>, _> = dims_s.iter().map(|d| d.parse()).collect();
            let dims = dims.map_err(|_| err(ln, format!("bad memref shape `{ty}`")))?;
            // The element count must fit in usize: downstream footprint
            // math multiplies the dims, and a crafted shape like
            // `99999999999x99999999999xf64` must be rejected here rather
            // than wrap (or abort) later.
            dims.iter()
                .try_fold(1usize, |acc, &d| acc.checked_mul(d))
                .ok_or_else(|| err(ln, format!("memref shape `{ty}` overflows")))?;
            let id = p.add_array(name.trim().to_string(), dims, elem);
            arrays.insert(name.trim().to_string(), id);
            continue;
        }
        if let Some(rest) = line.strip_prefix("func @") {
            let kname = rest.trim_end_matches('{').trim().to_string();
            let kernel = parse_kernel(kname, &mut lines, &arrays).map_err(|(l, m)| err(l, m))?;
            p.kernels.push(kernel);
            continue;
        }
        return Err(err(ln, format!("unexpected line `{line}`")));
    }
    p.validate().map_err(|m| TextError {
        line: 0,
        message: m,
    })?;
    Ok(p)
}

type Lines<'a> = std::iter::Peekable<std::iter::Enumerate<std::str::Lines<'a>>>;

fn parse_kernel(
    name: String,
    lines: &mut Lines<'_>,
    arrays: &HashMap<String, ArrayId>,
) -> Result<AffineKernel, (usize, String)> {
    let mut loops: Vec<Loop> = Vec::new();
    let mut statements: Vec<Statement> = Vec::new();
    loop {
        let Some((ln, raw)) = lines.next() else {
            return Err((0, format!("unterminated kernel `{name}`")));
        };
        let line = raw.trim();
        if line == "}" {
            // Either closes a loop or the func; count braces by depth:
            // statements only occur at the innermost level, so once we have
            // consumed loops.len() + 1 closers the kernel ends.
            let mut closers = 1;
            for (_, raw2) in lines.by_ref() {
                if raw2.trim() == "}" {
                    closers += 1;
                } else if !raw2.trim().is_empty() {
                    return Err((ln, "unexpected content after loop closers".into()));
                }
                if closers == loops.len() + 1 {
                    return Ok(AffineKernel {
                        name,
                        loops,
                        statements,
                    });
                }
            }
            if closers == loops.len() + 1 || loops.is_empty() {
                return Ok(AffineKernel {
                    name,
                    loops,
                    statements,
                });
            }
            return Err((ln, "unbalanced braces".into()));
        }
        if line.starts_with("affine.for") || line.starts_with("affine.parallel") {
            let parallel = line.starts_with("affine.parallel");
            let rest = line
                .trim_start_matches("affine.parallel")
                .trim_start_matches("affine.for")
                .trim();
            // %iN = max(e, e) to min(e, e) {
            let (_, bounds) = rest
                .split_once('=')
                .ok_or((ln, "loop needs `= max(..) to min(..)`".to_string()))?;
            let (lb_s, ub_s) = bounds
                .split_once(" to ")
                .ok_or((ln, "loop needs ` to `".to_string()))?;
            let lb = parse_bound(lb_s.trim(), "max").map_err(|m| (ln, m))?;
            let ub = parse_bound(ub_s.trim().trim_end_matches('{').trim(), "min")
                .map_err(|m| (ln, m))?;
            loops.push(Loop { lb, ub, parallel });
            continue;
        }
        // Statement: `NAME: load %A[e, e]; store %B[e] // N flops`
        if let Some((sname, rest)) = line.split_once(':') {
            let (body, flops_s) = rest
                .split_once("//")
                .ok_or((ln, "statement needs `// N flops`".to_string()))?;
            let flops: u64 = flops_s
                .trim()
                .trim_end_matches("flops")
                .trim()
                .parse()
                .map_err(|_| (ln, "bad flop count".to_string()))?;
            let mut accesses = Vec::new();
            for part in body.split(';') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                let (kind, refpart) = part
                    .split_once(" %")
                    .ok_or((ln, format!("bad access `{part}`")))?;
                let is_write = match kind.trim() {
                    "load" => false,
                    "store" => true,
                    other => return Err((ln, format!("unknown access kind `{other}`"))),
                };
                let (aname, idx_s) = refpart
                    .split_once('[')
                    .ok_or((ln, format!("access needs indices: `{part}`")))?;
                let id = *arrays
                    .get(aname.trim())
                    .ok_or((ln, format!("unknown array `{aname}`")))?;
                let idx_s = idx_s.trim_end_matches(']');
                let indices: Result<Vec<LinExpr>, String> =
                    idx_s.split(',').map(|e| parse_expr(e.trim())).collect();
                accesses.push(Access {
                    array: id,
                    indices: indices.map_err(|m| (ln, m))?,
                    is_write,
                });
            }
            statements.push(Statement {
                name: sname.trim().to_string(),
                accesses,
                flops,
            });
            continue;
        }
        return Err((ln, format!("unexpected line in kernel: `{line}`")));
    }
}

fn parse_bound(s: &str, fun: &str) -> Result<Bound, String> {
    let inner = s
        .strip_prefix(fun)
        .and_then(|r| r.trim().strip_prefix('('))
        .and_then(|r| r.trim_end().strip_suffix(')'))
        .ok_or_else(|| format!("bound must be `{fun}(...)`, got `{s}`"))?;
    let exprs: Result<Vec<LinExpr>, String> =
        inner.split(',').map(|e| parse_expr(e.trim())).collect();
    let exprs = exprs?;
    if exprs.is_empty() {
        return Err("empty bound".into());
    }
    Ok(Bound { exprs })
}

/// Parses expressions in the printer's format: `2i0 + i3 - 7`, `-i1`, `0`.
fn parse_expr(s: &str) -> Result<LinExpr, String> {
    let chars: Vec<char> = s.chars().filter(|c| !c.is_whitespace()).collect();
    let mut out = LinExpr::zero();
    let mut i = 0;
    let mut sign = 1i64;
    if chars.is_empty() {
        return Err("empty expression".into());
    }
    while i < chars.len() {
        match chars[i] {
            '+' => {
                sign = 1;
                i += 1;
            }
            '-' => {
                sign = -1;
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let mut v = 0i64;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    v = v
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(chars[i] as i64 - '0' as i64))
                        .ok_or_else(|| format!("coefficient overflows in `{s}`"))?;
                    i += 1;
                }
                if i < chars.len() && chars[i] == 'i' {
                    // coefficient·iterator
                    i += 1;
                    let (idx, ni) = parse_index(&chars, i)?;
                    i = ni;
                    out.set_coeff(idx, out.coeff(idx) + sign * v);
                } else {
                    out.add_constant(sign * v);
                }
                sign = 1;
            }
            'i' => {
                i += 1;
                let (idx, ni) = parse_index(&chars, i)?;
                i = ni;
                out.set_coeff(idx, out.coeff(idx) + sign);
                sign = 1;
            }
            other => return Err(format!("unexpected `{other}` in expression `{s}`")),
        }
    }
    Ok(out)
}

/// No real loop nest is thousands deep; an index beyond this is a
/// malformed (or adversarial) input, and accepting it would let `i<huge>`
/// allocate a coefficient vector of that length.
const MAX_ITER_INDEX: usize = 4096;

fn parse_index(chars: &[char], mut i: usize) -> Result<(usize, usize), String> {
    let start = i;
    while i < chars.len() && chars[i].is_ascii_digit() {
        i += 1;
    }
    if i == start {
        return Err("iterator needs an index (iN)".into());
    }
    let text: String = chars[start..i].iter().collect();
    let idx: usize = text
        .parse()
        .map_err(|_| format!("iterator index `i{text}` overflows"))?;
    if idx > MAX_ITER_INDEX {
        return Err(format!(
            "iterator index `i{text}` exceeds the {MAX_ITER_INDEX} limit"
        ));
    }
    Ok((idx, i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{interpret_program, TraceStats};

    fn sample_program() -> AffineProgram {
        let mut p = AffineProgram::new("mvt");
        let a = p.add_array("A", vec![16, 16], ElemType::F64);
        let x = p.add_array("x1", vec![16], ElemType::F32);
        let (vi, vj) = (LinExpr::var(0), LinExpr::var(1));
        let mut l0 = Loop::range(16);
        l0.parallel = true;
        p.kernels.push(AffineKernel {
            name: "mvt_x1".into(),
            loops: vec![
                l0,
                Loop::new(
                    Bound::constant(0),
                    Bound::expr(vi.clone() + LinExpr::constant(1)),
                ),
            ],
            statements: vec![Statement {
                name: "S0".into(),
                accesses: vec![
                    Access::read(a, vec![vi.clone(), vj.clone() * 2 - LinExpr::constant(0)]),
                    Access::read(x, vec![vj]),
                    Access::write(x, vec![vi]),
                ],
                flops: 2,
            }],
        });
        p
    }

    #[test]
    fn roundtrip_display_parse_display() {
        let p = sample_program();
        let text = p.to_string();
        let q = parse_affine_program(&text).unwrap();
        assert_eq!(q.to_string(), text, "printer/parser must round-trip");
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let p = sample_program();
        let q = parse_affine_program(&p.to_string()).unwrap();
        let mut a = TraceStats::default();
        interpret_program(&p, &mut a);
        let mut b = TraceStats::default();
        interpret_program(&q, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_workload_suite() {
        // Every mini PolyBench program round-trips.
        // (Uses only the ir crate: rebuild a couple of representative
        // kernels inline to avoid a dev-dependency cycle.)
        let p = sample_program();
        let q = parse_affine_program(&p.to_string()).unwrap();
        assert_eq!(p.to_string(), q.to_string());
    }

    #[test]
    fn parse_errors_are_located() {
        let e = parse_affine_program("memref %A , missing").unwrap_err();
        assert_eq!(e.line, 1);
        let src = "// affine program `x`\nmemref %A : 4xf64\nfunc @k {\n  bogus line\n}\n";
        let e = parse_affine_program(src).unwrap_err();
        assert_eq!(e.line, 4);
    }

    #[test]
    fn expression_parser_handles_printer_forms() {
        for (s, coeffs, k) in [
            ("0", vec![], 0),
            ("7", vec![], 7),
            ("-3", vec![], -3),
            ("i0", vec![(0, 1)], 0),
            ("-i2", vec![(2, -1)], 0),
            ("2i0 + i1 - 7", vec![(0, 2), (1, 1)], -7),
            ("32i3 + 31", vec![(3, 32)], 31),
        ] {
            let e = parse_expr(s).unwrap();
            assert_eq!(e.constant_term(), k, "{s}");
            for (v, c) in coeffs {
                assert_eq!(e.coeff(v), c, "{s} coeff {v}");
            }
        }
        assert!(parse_expr("i").is_err());
        assert!(parse_expr("x1").is_err());
    }
}
