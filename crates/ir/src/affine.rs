//! The affine dialect: loop nests with affine bounds and affine array
//! accesses. This is the representation PolyUFC's polyhedral analyses
//! (iteration domains, access maps, cache model) run on.

use std::fmt;

use polyufc_presburger::{BasicMap, BasicSet, LinExpr, Set, Space};

use crate::types::{ArrayId, ElemType};

/// An affine loop bound: the max (for lower bounds) or min (for upper
/// bounds) of a list of affine expressions over the enclosing loop
/// iterators. Upper bounds are exclusive, matching `affine.for`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bound {
    /// Component expressions; `max` of them for lower bounds, `min` for
    /// upper bounds.
    pub exprs: Vec<LinExpr>,
}

impl Bound {
    /// A constant bound.
    pub fn constant(v: i64) -> Self {
        Bound {
            exprs: vec![LinExpr::constant(v)],
        }
    }

    /// A single-expression bound.
    pub fn expr(e: LinExpr) -> Self {
        Bound { exprs: vec![e] }
    }

    /// Evaluates as a lower bound (max of components).
    pub fn eval_lb(&self, iters: &[i64]) -> i64 {
        self.exprs
            .iter()
            .map(|e| e.eval(iters))
            .max()
            .expect("bound has components")
    }

    /// Evaluates as an upper bound (min of components).
    pub fn eval_ub(&self, iters: &[i64]) -> i64 {
        self.exprs
            .iter()
            .map(|e| e.eval(iters))
            .min()
            .expect("bound has components")
    }
}

/// One affine loop of a kernel. The iterator of loop `d` is variable `d`
/// in all contained expressions (0 = outermost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// Lower bound (inclusive, max of expressions).
    pub lb: Bound,
    /// Upper bound (exclusive, min of expressions).
    pub ub: Bound,
    /// Whether the loop carries no dependences and may run in parallel
    /// (set by the Pluto substitute; consumed by the machine model).
    pub parallel: bool,
}

impl Loop {
    /// A sequential loop `for i in 0..n`.
    pub fn range(n: i64) -> Self {
        Loop {
            lb: Bound::constant(0),
            ub: Bound::constant(n),
            parallel: false,
        }
    }

    /// A loop with affine bounds.
    pub fn new(lb: Bound, ub: Bound) -> Self {
        Loop {
            lb,
            ub,
            parallel: false,
        }
    }
}

/// An affine array access within a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// The accessed array.
    pub array: ArrayId,
    /// One affine index expression (over the loop iterators) per array
    /// dimension.
    pub indices: Vec<LinExpr>,
    /// Whether the access writes (otherwise it reads).
    pub is_write: bool,
}

impl Access {
    /// A read access.
    pub fn read(array: ArrayId, indices: Vec<LinExpr>) -> Self {
        Access {
            array,
            indices,
            is_write: false,
        }
    }

    /// A write access.
    pub fn write(array: ArrayId, indices: Vec<LinExpr>) -> Self {
        Access {
            array,
            indices,
            is_write: true,
        }
    }

    /// The access relation `{ [iters] -> [array indices] }` restricted to
    /// nothing (callers intersect with the iteration domain).
    pub fn index_map(&self, depth: usize) -> BasicMap {
        BasicMap::from_affine_exprs(0, depth, &self.indices)
    }
}

/// A statement at the innermost level of a kernel's loop nest, with its
/// array accesses and arithmetic work (`ω_s` in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    /// Statement label (for diagnostics and schedules).
    pub name: String,
    /// Accesses in program order within one statement instance.
    pub accesses: Vec<Access>,
    /// Floating point operations per statement instance.
    pub flops: u64,
}

/// A perfectly nested affine loop kernel: `loops[0]` is outermost; all
/// statements execute (in order) at the innermost level.
///
/// Imperfect nests are represented as sequences of kernels in an
/// [`AffineProgram`]; this mirrors the paper's setting where caps are
/// applied per top-level `affine.for`/`linalg` op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineKernel {
    /// Kernel name (usually the originating linalg op).
    pub name: String,
    /// The loop nest, outermost first.
    pub loops: Vec<Loop>,
    /// Statements at the innermost level.
    pub statements: Vec<Statement>,
}

impl AffineKernel {
    /// Nesting depth.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// The iteration domain as a Presburger set over the loop iterators.
    pub fn domain(&self) -> Set {
        let space = Space::set(0, self.depth());
        let mut b = BasicSet::universe(space);
        for (d, l) in self.loops.iter().enumerate() {
            for e in &l.lb.exprs {
                b.add_ge0(LinExpr::var(d) - e.clone());
            }
            for e in &l.ub.exprs {
                b.add_ge0(e.clone() - LinExpr::var(d) - LinExpr::constant(1));
            }
        }
        Set::from_basic(b)
    }

    /// Cardinality of the iteration domain (`|D_s|`, identical for every
    /// statement of a perfect nest).
    ///
    /// # Errors
    ///
    /// Propagates counting errors from the Presburger layer.
    pub fn domain_size(&self) -> polyufc_presburger::Result<i128> {
        self.domain().count()
    }

    /// Total flops of the kernel: `Σ_s ω_s · |D_s|`.
    ///
    /// # Errors
    ///
    /// Propagates counting errors.
    pub fn total_flops(&self) -> polyufc_presburger::Result<i128> {
        let d = self.domain_size()?;
        let per_point: i128 = self.statements.iter().map(|s| s.flops as i128).sum();
        Ok(d * per_point)
    }

    /// The outermost parallel loop index, if any.
    pub fn outer_parallel(&self) -> Option<usize> {
        self.loops.iter().position(|l| l.parallel)
    }

    /// Splits the kernel into `n_chunks` kernels covering contiguous
    /// ranges of the outermost loop — the substrate for *intra-kernel*
    /// capping (paper Sec. VII-F compares per-phase intra-kernel control
    /// against PolyUFC's inter-kernel caps). The concatenated traces equal
    /// the original's.
    ///
    /// Returns the original kernel unsplit if the outer range cannot be
    /// bounded or has fewer than `n_chunks` iterations.
    pub fn split_outer(&self, n_chunks: usize) -> Vec<AffineKernel> {
        let fallback = || vec![self.clone()];
        if n_chunks <= 1 || self.loops.is_empty() {
            return fallback();
        }
        let Ok(Some(iv)) = self.domain().basics()[0].var_intervals() else {
            return fallback();
        };
        let (Some(lo), Some(hi)) = iv[0] else {
            return fallback();
        };
        let extent = hi - lo + 1;
        if extent < n_chunks as i64 {
            return fallback();
        }
        let mut out = Vec::with_capacity(n_chunks);
        let step = extent / n_chunks as i64;
        for c in 0..n_chunks as i64 {
            let a = lo + c * step;
            let b = if c == n_chunks as i64 - 1 {
                hi + 1
            } else {
                lo + (c + 1) * step
            };
            let mut k = self.clone();
            k.name = format!("{}_part{}", self.name, c);
            k.loops[0].lb.exprs.push(LinExpr::constant(a));
            k.loops[0].ub.exprs.push(LinExpr::constant(b));
            out.push(k);
        }
        out
    }
}

/// An array declaration in a program's symbol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Array name.
    pub name: String,
    /// Dimension extents (row-major storage).
    pub dims: Vec<usize>,
    /// Element type.
    pub elem: ElemType,
}

impl ArrayDecl {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.len() * self.elem.size_bytes()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.dims.len()];
        for d in (0..self.dims.len().saturating_sub(1)).rev() {
            s[d] = s[d + 1] * self.dims[d + 1];
        }
        s
    }
}

/// A sequence of affine kernels over a shared array symbol table.
#[derive(Debug, Clone, Default)]
pub struct AffineProgram {
    /// Program name.
    pub name: String,
    /// Array symbol table; [`ArrayId`] indexes into it.
    pub arrays: Vec<ArrayDecl>,
    /// Kernels in execution order.
    pub kernels: Vec<AffineKernel>,
}

impl AffineProgram {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        AffineProgram {
            name: name.into(),
            arrays: Vec::new(),
            kernels: Vec::new(),
        }
    }

    /// Declares an array and returns its id.
    pub fn add_array(
        &mut self,
        name: impl Into<String>,
        dims: Vec<usize>,
        elem: ElemType,
    ) -> ArrayId {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            dims,
            elem,
        });
        ArrayId(self.arrays.len() - 1)
    }

    /// Looks up an array declaration.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0]
    }

    /// Total footprint of all arrays in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.arrays.iter().map(ArrayDecl::size_bytes).sum()
    }

    /// Validates structural invariants: access arities match declarations,
    /// bounds reference only enclosing iterators.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for k in &self.kernels {
            for (d, l) in k.loops.iter().enumerate() {
                for e in l.lb.exprs.iter().chain(&l.ub.exprs) {
                    if e.terms().any(|(i, _)| i >= d) {
                        return Err(format!(
                            "kernel `{}`: bound of loop {d} references iterator {}",
                            k.name,
                            e.terms().map(|(i, _)| i).max().unwrap()
                        ));
                    }
                }
            }
            for s in &k.statements {
                for a in &s.accesses {
                    if a.array.0 >= self.arrays.len() {
                        return Err(format!(
                            "kernel `{}`: statement `{}` references unknown array {}",
                            k.name, s.name, a.array
                        ));
                    }
                    let decl = self.array(a.array);
                    if a.indices.len() != decl.dims.len() {
                        return Err(format!(
                            "kernel `{}`: access to `{}` has {} indices, array has {} dims",
                            k.name,
                            decl.name,
                            a.indices.len(),
                            decl.dims.len()
                        ));
                    }
                    for e in &a.indices {
                        if e.terms().any(|(i, _)| i >= k.depth()) {
                            return Err(format!(
                                "kernel `{}`: access to `{}` references iterator beyond depth {}",
                                k.name,
                                decl.name,
                                k.depth()
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for AffineProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// affine program `{}`", self.name)?;
        for a in &self.arrays {
            writeln!(
                f,
                "memref %{} : {}x{}",
                a.name,
                a.dims
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("x"),
                a.elem
            )?;
        }
        for k in &self.kernels {
            writeln!(f, "func @{} {{", k.name)?;
            let iv = |i: usize| format!("i{i}");
            for (d, l) in k.loops.iter().enumerate() {
                let lb: Vec<String> =
                    l.lb.exprs
                        .iter()
                        .map(|e| e.display_with(iv).to_string())
                        .collect();
                let ub: Vec<String> =
                    l.ub.exprs
                        .iter()
                        .map(|e| e.display_with(iv).to_string())
                        .collect();
                let par = if l.parallel {
                    "affine.parallel"
                } else {
                    "affine.for"
                };
                writeln!(
                    f,
                    "{}{} %i{} = max({}) to min({}) {{",
                    "  ".repeat(d + 1),
                    par,
                    d,
                    lb.join(", "),
                    ub.join(", ")
                )?;
            }
            let pad = "  ".repeat(k.depth() + 1);
            for s in &k.statements {
                let mut parts = Vec::new();
                for a in &s.accesses {
                    let idx: Vec<String> = a
                        .indices
                        .iter()
                        .map(|e| e.display_with(iv).to_string())
                        .collect();
                    let kind = if a.is_write { "store" } else { "load" };
                    parts.push(format!(
                        "{kind} %{}[{}]",
                        self.array(a.array).name,
                        idx.join(", ")
                    ));
                }
                writeln!(
                    f,
                    "{pad}{}: {} // {} flops",
                    s.name,
                    parts.join("; "),
                    s.flops
                )?;
            }
            for d in (0..k.depth()).rev() {
                writeln!(f, "{}}}", "  ".repeat(d + 1))?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds `for i in 0..4 { for j in 0..3 { S: C[i][j] = A[i][j] } }`.
    fn copy_kernel() -> (AffineProgram, AffineKernel) {
        let mut p = AffineProgram::new("copy");
        let a = p.add_array("A", vec![4, 3], ElemType::F64);
        let c = p.add_array("C", vec![4, 3], ElemType::F64);
        let k = AffineKernel {
            name: "copy".into(),
            loops: vec![Loop::range(4), Loop::range(3)],
            statements: vec![Statement {
                name: "S0".into(),
                accesses: vec![
                    Access::read(a, vec![LinExpr::var(0), LinExpr::var(1)]),
                    Access::write(c, vec![LinExpr::var(0), LinExpr::var(1)]),
                ],
                flops: 0,
            }],
        };
        p.kernels.push(k.clone());
        (p, k)
    }

    #[test]
    fn domain_size_is_trip_count() {
        let (_, k) = copy_kernel();
        assert_eq!(k.domain_size().unwrap(), 12);
    }

    #[test]
    fn triangular_domain() {
        // for i in 0..6 { for j in 0..=i }  => ub j = i+1
        let k = AffineKernel {
            name: "tri".into(),
            loops: vec![
                Loop::range(6),
                Loop::new(
                    Bound::constant(0),
                    Bound::expr(LinExpr::var(0) + LinExpr::constant(1)),
                ),
            ],
            statements: vec![],
        };
        assert_eq!(k.domain_size().unwrap(), 21);
    }

    #[test]
    fn tiled_bounds_with_min() {
        // for t in 0..4 { for i in 32t .. min(32t+32, 100) }
        let k = AffineKernel {
            name: "tiled".into(),
            loops: vec![
                Loop::range(4),
                Loop::new(
                    Bound::expr(LinExpr::var(0) * 32),
                    Bound {
                        exprs: vec![
                            LinExpr::var(0) * 32 + LinExpr::constant(32),
                            LinExpr::constant(100),
                        ],
                    },
                ),
            ],
            statements: vec![],
        };
        assert_eq!(k.domain_size().unwrap(), 100);
    }

    #[test]
    fn total_flops_scales_with_domain() {
        let (_, mut k) = copy_kernel();
        k.statements[0].flops = 2;
        assert_eq!(k.total_flops().unwrap(), 24);
    }

    #[test]
    fn strides_row_major() {
        let d = ArrayDecl {
            name: "A".into(),
            dims: vec![2, 3, 4],
            elem: ElemType::F32,
        };
        assert_eq!(d.strides(), vec![12, 4, 1]);
        assert_eq!(d.size_bytes(), 96);
    }

    #[test]
    fn validate_catches_arity() {
        let (mut p, _) = copy_kernel();
        p.kernels[0].statements[0].accesses[0].indices.pop();
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_catches_scope() {
        let (mut p, _) = copy_kernel();
        p.kernels[0].statements[0].accesses[0].indices[0] = LinExpr::var(5);
        assert!(p.validate().is_err());
    }

    #[test]
    fn display_contains_structure() {
        let (p, _) = copy_kernel();
        let s = p.to_string();
        assert!(s.contains("affine.for"));
        assert!(s.contains("load %A"));
        assert!(s.contains("store %C"));
    }

    #[test]
    fn split_outer_preserves_trace() {
        use crate::interp::{interpret_kernel, TraceStats};
        let (mut p, k) = copy_kernel();
        let parts = k.split_outer(3);
        assert_eq!(parts.len(), 3);
        let mut whole = TraceStats::default();
        interpret_kernel(&p, &k, &mut whole);
        let mut sum = TraceStats::default();
        for part in &parts {
            p.kernels[0] = part.clone();
            interpret_kernel(&p, part, &mut sum);
        }
        assert_eq!(whole, sum);
        // Degenerate cases return the original.
        assert_eq!(k.split_outer(1).len(), 1);
        assert_eq!(k.split_outer(100).len(), 1);
    }

    #[test]
    fn bound_eval_min_max() {
        let b = Bound {
            exprs: vec![LinExpr::constant(5), LinExpr::var(0)],
        };
        assert_eq!(b.eval_lb(&[9]), 9);
        assert_eq!(b.eval_ub(&[9]), 5);
    }
}
