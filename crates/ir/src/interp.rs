//! Interpretation of affine kernels at their concrete problem sizes,
//! streaming memory-access and flop events. This is the trace source for
//! both the exact cache simulator and the machine model — the stand-in for
//! running the compiled binary on hardware.

use crate::affine::{AffineKernel, AffineProgram};
use crate::types::ArrayId;

/// One memory access produced by interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Which array is accessed.
    pub array: ArrayId,
    /// Linear element offset within the array (row-major).
    pub offset: u64,
    /// Access width in bytes (the element size).
    pub bytes: u32,
    /// Whether the access is a store.
    pub is_write: bool,
}

/// Consumer of an interpretation trace.
pub trait TraceSink {
    /// Called for every array access, in program order.
    fn access(&mut self, ev: AccessEvent);
    /// Called once per statement instance with its flop count.
    fn flops(&mut self, n: u64);
}

/// A [`TraceSink`] that aggregates totals; useful for tests and for
/// cross-checking static counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total accesses.
    pub accesses: u64,
    /// Total reads.
    pub reads: u64,
    /// Total writes.
    pub writes: u64,
    /// Total flops.
    pub flops: u64,
    /// Total bytes touched (sum of access widths, not unique bytes).
    pub bytes: u64,
}

impl TraceSink for TraceStats {
    fn access(&mut self, ev: AccessEvent) {
        self.accesses += 1;
        if ev.is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        self.bytes += ev.bytes as u64;
    }

    fn flops(&mut self, n: u64) {
        self.flops += n;
    }
}

/// A compiled access: linear offset as an affine function of the iterators.
#[derive(Debug, Clone)]
struct CompiledAccess {
    array: ArrayId,
    coeffs: Vec<i64>,
    constant: i64,
    bytes: u32,
    is_write: bool,
}

/// Interprets one kernel, streaming events to `sink`.
///
/// # Panics
///
/// Panics if the kernel fails validation against `program`'s array table
/// (indices out of declared arity) or has zero depth.
pub fn interpret_kernel(program: &AffineProgram, kernel: &AffineKernel, sink: &mut impl TraceSink) {
    let depth = kernel.depth();
    assert!(depth > 0, "kernel `{}` has no loops", kernel.name);

    // Compile accesses to linear offset functions over the iterators.
    let mut stmts: Vec<(u64, Vec<CompiledAccess>)> = Vec::new();
    for s in &kernel.statements {
        let mut cas = Vec::with_capacity(s.accesses.len());
        for a in &s.accesses {
            let decl = program.array(a.array);
            let strides = decl.strides();
            assert_eq!(a.indices.len(), strides.len());
            let mut coeffs = vec![0i64; depth];
            let mut constant = 0i64;
            for (idx_expr, &stride) in a.indices.iter().zip(&strides) {
                constant += idx_expr.constant_term() * stride as i64;
                for (v, c) in idx_expr.terms() {
                    coeffs[v] += c * stride as i64;
                }
            }
            cas.push(CompiledAccess {
                array: a.array,
                coeffs,
                constant,
                bytes: decl.elem.size_bytes() as u32,
                is_write: a.is_write,
            });
        }
        stmts.push((s.flops, cas));
    }

    let mut iters = vec![0i64; depth];
    walk(kernel, &stmts, &mut iters, 0, sink);
}

fn walk(
    kernel: &AffineKernel,
    stmts: &[(u64, Vec<CompiledAccess>)],
    iters: &mut [i64],
    depth: usize,
    sink: &mut impl TraceSink,
) {
    let l = &kernel.loops[depth];
    let lb = l.lb.eval_lb(iters);
    let ub = l.ub.eval_ub(iters);
    if depth + 1 == kernel.depth() {
        // Innermost level: precompute per-access base at iters[depth] = lb,
        // then advance by the iterator's stride each step.
        iters[depth] = lb;
        let mut bases: Vec<Vec<i64>> = Vec::with_capacity(stmts.len());
        for (_, cas) in stmts {
            bases.push(
                cas.iter()
                    .map(|ca| {
                        let mut o = ca.constant;
                        for (v, &c) in ca.coeffs.iter().enumerate() {
                            o += c * iters[v];
                        }
                        o
                    })
                    .collect(),
            );
        }
        for step in 0..(ub - lb).max(0) {
            for ((flops, cas), base) in stmts.iter().zip(&bases) {
                if *flops > 0 {
                    sink.flops(*flops);
                }
                for (ca, &b) in cas.iter().zip(base) {
                    let off = b + ca.coeffs[depth] * step;
                    debug_assert!(off >= 0, "negative offset in `{}`", kernel.name);
                    sink.access(AccessEvent {
                        array: ca.array,
                        offset: off as u64,
                        bytes: ca.bytes,
                        is_write: ca.is_write,
                    });
                }
            }
        }
    } else {
        for i in lb..ub {
            iters[depth] = i;
            walk(kernel, stmts, iters, depth + 1, sink);
        }
    }
}

/// Interprets every kernel of a program in order.
pub fn interpret_program(program: &AffineProgram, sink: &mut impl TraceSink) {
    for k in &program.kernels {
        interpret_kernel(program, k, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::{Access, AffineKernel, Bound, Loop, Statement};
    use crate::types::ElemType;
    use polyufc_presburger::LinExpr;

    /// A recording sink for order-sensitive assertions.
    #[derive(Default)]
    struct Recorder {
        events: Vec<AccessEvent>,
        flops: u64,
    }

    impl TraceSink for Recorder {
        fn access(&mut self, ev: AccessEvent) {
            self.events.push(ev);
        }
        fn flops(&mut self, n: u64) {
            self.flops += n;
        }
    }

    fn matmul_program(m: usize, n: usize, k: usize) -> AffineProgram {
        let mut p = AffineProgram::new("mm");
        let a = p.add_array("A", vec![m, k], ElemType::F64);
        let b = p.add_array("B", vec![k, n], ElemType::F64);
        let c = p.add_array("C", vec![m, n], ElemType::F64);
        let (vi, vj, vk) = (LinExpr::var(0), LinExpr::var(1), LinExpr::var(2));
        p.kernels.push(AffineKernel {
            name: "mm".into(),
            loops: vec![
                Loop::range(m as i64),
                Loop::range(n as i64),
                Loop::range(k as i64),
            ],
            statements: vec![Statement {
                name: "S0".into(),
                accesses: vec![
                    Access::read(a, vec![vi.clone(), vk.clone()]),
                    Access::read(b, vec![vk, vj.clone()]),
                    Access::read(c, vec![vi.clone(), vj.clone()]),
                    Access::write(c, vec![vi, vj]),
                ],
                flops: 2,
            }],
        });
        p
    }

    #[test]
    fn matmul_event_counts() {
        let p = matmul_program(3, 4, 5);
        let mut st = TraceStats::default();
        interpret_program(&p, &mut st);
        let pts = 3 * 4 * 5u64;
        assert_eq!(st.accesses, 4 * pts);
        assert_eq!(st.reads, 3 * pts);
        assert_eq!(st.writes, pts);
        assert_eq!(st.flops, 2 * pts);
        assert_eq!(st.bytes, 4 * pts * 8);
    }

    #[test]
    fn offsets_are_row_major() {
        let p = matmul_program(2, 2, 2);
        let mut r = Recorder::default();
        interpret_kernel(&p, &p.kernels[0], &mut r);
        // First statement instance (i=0, j=0, k=0): A[0,0], B[0,0], C[0,0].
        assert_eq!(r.events[0].offset, 0);
        // Second instance (k=1): A[0,1] offset 1, B[1,0] offset 2.
        assert_eq!(r.events[4].offset, 1);
        assert_eq!(r.events[5].offset, 2);
    }

    #[test]
    fn trace_matches_domain_size() {
        let p = matmul_program(7, 3, 9);
        let mut st = TraceStats::default();
        interpret_program(&p, &mut st);
        let dom = p.kernels[0].domain_size().unwrap() as u64;
        assert_eq!(st.flops, 2 * dom);
    }

    #[test]
    fn triangular_bounds_respected() {
        // for i in 0..4 { for j in 0..=i { read A[i][j] } }
        let mut p = AffineProgram::new("tri");
        let a = p.add_array("A", vec![4, 4], ElemType::F32);
        p.kernels.push(AffineKernel {
            name: "tri".into(),
            loops: vec![
                Loop::range(4),
                Loop::new(
                    Bound::constant(0),
                    Bound::expr(LinExpr::var(0) + LinExpr::constant(1)),
                ),
            ],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![Access::read(a, vec![LinExpr::var(0), LinExpr::var(1)])],
                flops: 1,
            }],
        });
        let mut st = TraceStats::default();
        interpret_program(&p, &mut st);
        assert_eq!(st.accesses, 10);
        assert_eq!(st.bytes, 40);
    }

    #[test]
    fn empty_loop_produces_nothing() {
        let mut p = AffineProgram::new("empty");
        let _ = p.add_array("A", vec![1], ElemType::F64);
        p.kernels.push(AffineKernel {
            name: "e".into(),
            loops: vec![Loop::range(0)],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![],
                flops: 1,
            }],
        });
        let mut st = TraceStats::default();
        interpret_program(&p, &mut st);
        assert_eq!(st.flops, 0);
    }
}
