//! Interpretation of affine kernels at their concrete problem sizes,
//! streaming memory-access and flop events. This is the trace source for
//! both the exact cache simulator and the machine model — the stand-in for
//! running the compiled binary on hardware.
//!
//! Traces are produced in *run-length* form: one innermost-loop instance
//! is delivered to the sink as a single [`RunGroup`] holding one
//! [`AccessRun`] per (statement, access) pair, instead of one
//! [`AccessEvent`] per executed access. Sinks that care only about
//! aggregates (or about line granularity, like the cache simulator)
//! consume runs directly; every other sink keeps working unchanged
//! through the default [`TraceSink::run`] implementation, which expands
//! the group into per-event calls in exactly the order the interpreter
//! used to emit them.

use crate::affine::{AffineKernel, AffineProgram};
use crate::types::ArrayId;

/// One memory access produced by interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Which array is accessed.
    pub array: ArrayId,
    /// Linear element offset within the array (row-major).
    pub offset: u64,
    /// Access width in bytes (the element size).
    pub bytes: u32,
    /// Whether the access is a store.
    pub is_write: bool,
}

/// A run of accesses from one (statement, access) pair across one
/// innermost-loop instance: step `t` (`0 <= t < count`) accesses element
/// offset `base + stride * t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRun {
    /// Which array is accessed.
    pub array: ArrayId,
    /// Element offset at the first step (non-negative for valid kernels).
    pub base: i64,
    /// Element-offset delta per innermost step; may be zero (loop-invariant
    /// access) or negative (reversed traversal).
    pub stride: i64,
    /// Number of steps; equals [`RunGroup::steps`] of the containing group.
    pub count: u64,
    /// Access width in bytes (the element size).
    pub bytes: u32,
    /// Whether the access is a store.
    pub is_write: bool,
}

/// The slice of a [`RunGroup`]'s runs belonging to one statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmtSpan {
    /// Flops per statement instance.
    pub flops: u64,
    /// First run of the statement in [`RunGroup::runs`].
    pub start: u32,
    /// Number of runs (accesses) of the statement.
    pub len: u32,
}

/// One full innermost-loop instance in run-length form.
///
/// Execution order semantics: for each step `t` in `0..steps`, each
/// statement executes in program order — its flops first, then its
/// accesses in program order. `runs` holds the statements' runs
/// back-to-back, so the per-step access order is exactly the order of
/// `runs`.
#[derive(Debug, Clone, Copy)]
pub struct RunGroup<'a> {
    /// Trip count of this innermost-loop instance (always > 0; empty
    /// instances are not emitted).
    pub steps: u64,
    /// All runs of the instance, statement-major, program order.
    pub runs: &'a [AccessRun],
    /// Per-statement spans into `runs`, in program order.
    pub stmts: &'a [StmtSpan],
}

/// Consumer of an interpretation trace.
pub trait TraceSink {
    /// Called for every array access, in program order.
    fn access(&mut self, ev: AccessEvent);
    /// Called once per statement instance with its flop count.
    fn flops(&mut self, n: u64);
    /// Called once per (non-empty) innermost-loop instance with all of its
    /// runs. The default expands the group into [`TraceSink::flops`] and
    /// [`TraceSink::access`] calls in exactly the interleaved per-event
    /// order — step-major, then statement, then access — so sinks that do
    /// not override it observe an unchanged trace.
    fn run(&mut self, group: RunGroup<'_>) {
        for step in 0..group.steps as i64 {
            for s in group.stmts {
                if s.flops > 0 {
                    self.flops(s.flops);
                }
                for r in &group.runs[s.start as usize..(s.start + s.len) as usize] {
                    let off = r.base + r.stride * step;
                    debug_assert!(off >= 0, "negative offset in run expansion");
                    self.access(AccessEvent {
                        array: r.array,
                        offset: off as u64,
                        bytes: r.bytes,
                        is_write: r.is_write,
                    });
                }
            }
        }
    }
}

/// A [`TraceSink`] that aggregates totals; useful for tests and for
/// cross-checking static counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total accesses.
    pub accesses: u64,
    /// Total reads.
    pub reads: u64,
    /// Total writes.
    pub writes: u64,
    /// Total flops.
    pub flops: u64,
    /// Total bytes touched (sum of access widths, not unique bytes).
    pub bytes: u64,
}

impl TraceSink for TraceStats {
    fn access(&mut self, ev: AccessEvent) {
        self.accesses += 1;
        if ev.is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        self.bytes += ev.bytes as u64;
    }

    fn flops(&mut self, n: u64) {
        self.flops += n;
    }

    fn run(&mut self, group: RunGroup<'_>) {
        // O(#runs) instead of O(steps × #runs): every counter is linear in
        // the step count.
        for s in group.stmts {
            self.flops += s.flops * group.steps;
        }
        for r in group.runs {
            self.accesses += group.steps;
            if r.is_write {
                self.writes += group.steps;
            } else {
                self.reads += group.steps;
            }
            self.bytes += r.bytes as u64 * group.steps;
        }
    }
}

/// A compiled access: linear offset as an affine function of the iterators.
#[derive(Debug, Clone)]
struct CompiledAccess {
    array: ArrayId,
    coeffs: Vec<i64>,
    constant: i64,
    bytes: u32,
    is_write: bool,
}

/// Reusable buffers for building run groups without per-instance
/// allocation.
#[derive(Default)]
struct RunBufs {
    runs: Vec<AccessRun>,
    spans: Vec<StmtSpan>,
}

/// Interprets one kernel, streaming events to `sink`.
///
/// # Panics
///
/// Panics if the kernel fails validation against `program`'s array table
/// (indices out of declared arity) or has zero depth.
pub fn interpret_kernel(program: &AffineProgram, kernel: &AffineKernel, sink: &mut impl TraceSink) {
    let depth = kernel.depth();
    assert!(depth > 0, "kernel `{}` has no loops", kernel.name);

    // Compile accesses to linear offset functions over the iterators.
    let mut stmts: Vec<(u64, Vec<CompiledAccess>)> = Vec::new();
    for s in &kernel.statements {
        let mut cas = Vec::with_capacity(s.accesses.len());
        for a in &s.accesses {
            let decl = program.array(a.array);
            let strides = decl.strides();
            assert_eq!(a.indices.len(), strides.len());
            let mut coeffs = vec![0i64; depth];
            let mut constant = 0i64;
            for (idx_expr, &stride) in a.indices.iter().zip(&strides) {
                constant += idx_expr.constant_term() * stride as i64;
                for (v, c) in idx_expr.terms() {
                    coeffs[v] += c * stride as i64;
                }
            }
            cas.push(CompiledAccess {
                array: a.array,
                coeffs,
                constant,
                bytes: decl.elem.size_bytes() as u32,
                is_write: a.is_write,
            });
        }
        stmts.push((s.flops, cas));
    }

    let mut iters = vec![0i64; depth];
    let mut bufs = RunBufs::default();
    walk(kernel, &stmts, &mut bufs, &mut iters, 0, sink);
}

fn walk(
    kernel: &AffineKernel,
    stmts: &[(u64, Vec<CompiledAccess>)],
    bufs: &mut RunBufs,
    iters: &mut [i64],
    depth: usize,
    sink: &mut impl TraceSink,
) {
    let l = &kernel.loops[depth];
    let lb = l.lb.eval_lb(iters);
    let ub = l.ub.eval_ub(iters);
    if depth + 1 == kernel.depth() {
        let steps = (ub - lb).max(0) as u64;
        if steps == 0 {
            return;
        }
        // Innermost level: one run per (statement, access), based at
        // iters[depth] = lb, advancing by the iterator's coefficient.
        iters[depth] = lb;
        bufs.runs.clear();
        bufs.spans.clear();
        for (flops, cas) in stmts {
            let start = bufs.runs.len() as u32;
            for ca in cas {
                let mut base = ca.constant;
                for (v, &c) in ca.coeffs.iter().enumerate() {
                    base += c * iters[v];
                }
                let stride = ca.coeffs[depth];
                debug_assert!(
                    base >= 0 && base + stride * (steps as i64 - 1) >= 0,
                    "negative offset in `{}`",
                    kernel.name
                );
                bufs.runs.push(AccessRun {
                    array: ca.array,
                    base,
                    stride,
                    count: steps,
                    bytes: ca.bytes,
                    is_write: ca.is_write,
                });
            }
            bufs.spans.push(StmtSpan {
                flops: *flops,
                start,
                len: bufs.runs.len() as u32 - start,
            });
        }
        sink.run(RunGroup {
            steps,
            runs: &bufs.runs,
            stmts: &bufs.spans,
        });
    } else {
        for i in lb..ub {
            iters[depth] = i;
            walk(kernel, stmts, bufs, iters, depth + 1, sink);
        }
    }
}

/// Interprets every kernel of a program in order.
pub fn interpret_program(program: &AffineProgram, sink: &mut impl TraceSink) {
    for k in &program.kernels {
        interpret_kernel(program, k, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::{Access, AffineKernel, Bound, Loop, Statement};
    use crate::types::ElemType;
    use polyufc_presburger::LinExpr;

    /// A recording sink for order-sensitive assertions. Uses the default
    /// `run` expansion, so it observes the exact per-event order.
    #[derive(Default)]
    struct Recorder {
        events: Vec<AccessEvent>,
        flops: u64,
    }

    impl TraceSink for Recorder {
        fn access(&mut self, ev: AccessEvent) {
            self.events.push(ev);
        }
        fn flops(&mut self, n: u64) {
            self.flops += n;
        }
    }

    /// A sink that records raw run groups (no expansion).
    #[derive(Default)]
    struct RunRecorder {
        groups: Vec<(u64, Vec<AccessRun>, Vec<StmtSpan>)>,
    }

    impl TraceSink for RunRecorder {
        fn access(&mut self, _ev: AccessEvent) {
            panic!("interpreter must emit runs, not events");
        }
        fn flops(&mut self, _n: u64) {
            panic!("interpreter must emit runs, not events");
        }
        fn run(&mut self, group: RunGroup<'_>) {
            self.groups
                .push((group.steps, group.runs.to_vec(), group.stmts.to_vec()));
        }
    }

    fn matmul_program(m: usize, n: usize, k: usize) -> AffineProgram {
        let mut p = AffineProgram::new("mm");
        let a = p.add_array("A", vec![m, k], ElemType::F64);
        let b = p.add_array("B", vec![k, n], ElemType::F64);
        let c = p.add_array("C", vec![m, n], ElemType::F64);
        let (vi, vj, vk) = (LinExpr::var(0), LinExpr::var(1), LinExpr::var(2));
        p.kernels.push(AffineKernel {
            name: "mm".into(),
            loops: vec![
                Loop::range(m as i64),
                Loop::range(n as i64),
                Loop::range(k as i64),
            ],
            statements: vec![Statement {
                name: "S0".into(),
                accesses: vec![
                    Access::read(a, vec![vi.clone(), vk.clone()]),
                    Access::read(b, vec![vk, vj.clone()]),
                    Access::read(c, vec![vi.clone(), vj.clone()]),
                    Access::write(c, vec![vi, vj]),
                ],
                flops: 2,
            }],
        });
        p
    }

    #[test]
    fn matmul_event_counts() {
        let p = matmul_program(3, 4, 5);
        let mut st = TraceStats::default();
        interpret_program(&p, &mut st);
        let pts = 3 * 4 * 5u64;
        assert_eq!(st.accesses, 4 * pts);
        assert_eq!(st.reads, 3 * pts);
        assert_eq!(st.writes, pts);
        assert_eq!(st.flops, 2 * pts);
        assert_eq!(st.bytes, 4 * pts * 8);
    }

    #[test]
    fn offsets_are_row_major() {
        let p = matmul_program(2, 2, 2);
        let mut r = Recorder::default();
        interpret_kernel(&p, &p.kernels[0], &mut r);
        // First statement instance (i=0, j=0, k=0): A[0,0], B[0,0], C[0,0].
        assert_eq!(r.events[0].offset, 0);
        // Second instance (k=1): A[0,1] offset 1, B[1,0] offset 2.
        assert_eq!(r.events[4].offset, 1);
        assert_eq!(r.events[5].offset, 2);
    }

    #[test]
    fn trace_matches_domain_size() {
        let p = matmul_program(7, 3, 9);
        let mut st = TraceStats::default();
        interpret_program(&p, &mut st);
        let dom = p.kernels[0].domain_size().unwrap() as u64;
        assert_eq!(st.flops, 2 * dom);
    }

    #[test]
    fn runs_are_emitted_per_innermost_instance() {
        let p = matmul_program(3, 4, 5);
        let mut rr = RunRecorder::default();
        interpret_kernel(&p, &p.kernels[0], &mut rr);
        // One group per (i, j) pair, each spanning the k loop.
        assert_eq!(rr.groups.len(), 3 * 4);
        let (steps, runs, spans) = &rr.groups[0];
        assert_eq!(*steps, 5);
        assert_eq!(runs.len(), 4);
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0],
            StmtSpan {
                flops: 2,
                start: 0,
                len: 4
            }
        );
        // A[i,k]: k-stride 1; B[k,j]: k-stride n_cols(B) = 4; C[i,j]: 0.
        assert_eq!(runs[0].stride, 1);
        assert_eq!(runs[1].stride, 4);
        assert_eq!(runs[2].stride, 0);
        assert_eq!(runs[3].stride, 0);
        assert!(runs[3].is_write);
        assert!(runs.iter().all(|r| r.count == 5 && r.bytes == 8));
    }

    #[test]
    fn default_run_expansion_matches_event_order() {
        // Manually expand a RunGroup through the default impl and compare
        // against the interpreter's per-event order for the same kernel.
        let p = matmul_program(2, 3, 4);
        let mut r = Recorder::default();
        interpret_kernel(&p, &p.kernels[0], &mut r);
        // Reconstruct the expected order by brute force.
        let mut expected = Vec::new();
        for i in 0..2u64 {
            for j in 0..3u64 {
                for k in 0..4u64 {
                    expected.push((0usize, i * 4 + k, false));
                    expected.push((1usize, k * 3 + j, false));
                    expected.push((2usize, i * 3 + j, false));
                    expected.push((2usize, i * 3 + j, true));
                }
            }
        }
        assert_eq!(r.events.len(), expected.len());
        for (ev, (arr, off, w)) in r.events.iter().zip(&expected) {
            assert_eq!(ev.array.0, *arr);
            assert_eq!(ev.offset, *off);
            assert_eq!(ev.is_write, *w);
        }
        assert_eq!(r.flops, 2 * 2 * 3 * 4);
    }

    #[test]
    fn aggregate_run_override_matches_expansion() {
        // TraceStats overrides `run` with O(1)-per-run arithmetic; the
        // expanded path must agree exactly, including negative strides.
        let mut p = AffineProgram::new("rev");
        let a = p.add_array("A", vec![16, 16], ElemType::F32);
        // A[i, 15 - j] — negative innermost stride.
        p.kernels.push(AffineKernel {
            name: "rev".into(),
            loops: vec![Loop::range(16), Loop::range(16)],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![Access::read(
                    a,
                    vec![LinExpr::var(0), LinExpr::constant(15) - LinExpr::var(1)],
                )],
                flops: 3,
            }],
        });
        let mut fast = TraceStats::default();
        interpret_program(&p, &mut fast);
        let mut slow = Recorder::default();
        interpret_program(&p, &mut slow);
        assert_eq!(fast.accesses, slow.events.len() as u64);
        assert_eq!(fast.flops, slow.flops);
        assert_eq!(
            fast.bytes,
            slow.events.iter().map(|e| e.bytes as u64).sum::<u64>()
        );
    }

    #[test]
    fn triangular_bounds_respected() {
        // for i in 0..4 { for j in 0..=i { read A[i][j] } }
        let mut p = AffineProgram::new("tri");
        let a = p.add_array("A", vec![4, 4], ElemType::F32);
        p.kernels.push(AffineKernel {
            name: "tri".into(),
            loops: vec![
                Loop::range(4),
                Loop::new(
                    Bound::constant(0),
                    Bound::expr(LinExpr::var(0) + LinExpr::constant(1)),
                ),
            ],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![Access::read(a, vec![LinExpr::var(0), LinExpr::var(1)])],
                flops: 1,
            }],
        });
        let mut st = TraceStats::default();
        interpret_program(&p, &mut st);
        assert_eq!(st.accesses, 10);
        assert_eq!(st.bytes, 40);
    }

    #[test]
    fn empty_loop_produces_nothing() {
        let mut p = AffineProgram::new("empty");
        let _ = p.add_array("A", vec![1], ElemType::F64);
        p.kernels.push(AffineKernel {
            name: "e".into(),
            loops: vec![Loop::range(0)],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![],
                flops: 1,
            }],
        });
        let mut st = TraceStats::default();
        interpret_program(&p, &mut st);
        assert_eq!(st.flops, 0);
        let mut rr = RunRecorder::default();
        interpret_program(&p, &mut rr);
        assert!(rr.groups.is_empty(), "empty instances are not emitted");
    }
}
