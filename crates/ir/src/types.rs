//! Shared element and identifier types.

use std::fmt;

/// Scalar element type of an array or tensor.
///
/// PolyUFC uses a unitary flop model (paper footnote 13): all arithmetic
/// ops count as one flop regardless of type; the element type only affects
/// byte traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ElemType {
    /// 32-bit float.
    F32,
    /// 64-bit float (the PolyBench default).
    #[default]
    F64,
}

impl ElemType {
    /// Size of one element in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            ElemType::F32 => 4,
            ElemType::F64 => 8,
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemType::F32 => write!(f, "f32"),
            ElemType::F64 => write!(f, "f64"),
        }
    }
}

/// Identifier of an array within an [`crate::AffineProgram`]'s symbol
/// table (index into the declaration list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_sizes() {
        assert_eq!(ElemType::F32.size_bytes(), 4);
        assert_eq!(ElemType::F64.size_bytes(), 8);
        assert_eq!(ElemType::default(), ElemType::F64);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ElemType::F32.to_string(), "f32");
        assert_eq!(ArrayId(3).to_string(), "@3");
    }
}
